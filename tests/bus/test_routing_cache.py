"""Routing-table invalidation tests for the bus fast path.

``SoftwareBus.route`` serves deliveries from a precomputed snapshot
(``bus.py::_RouteEntry``); these tests pin down the invalidation
contract: after every topology mutation — ``add_binding``,
``remove_binding``, ``add_module``, ``remove_module``,
``rename_instance``, and a full Figure-5 replacement — messages route
to the *new* topology and never to removed instances.
"""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.errors import BindingError, UnknownModuleError
from repro.state.machine import MACHINES

IDLE = "def main():\n    pass\n"


def sender_spec(name="sender"):
    return ModuleSpec(
        name=name,
        inline_source=IDLE,
        interfaces=[InterfaceDecl("out", Role.DEFINE, pattern="l")],
    )


def receiver_spec(name="receiver"):
    return ModuleSpec(
        name=name,
        inline_source=IDLE,
        interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
    )


def send(bus, value=1, instance="sender"):
    bus.route(
        instance,
        "out",
        Message(values=[value], fmt="l", source_instance=instance,
                source_interface="out"),
    )


def received(bus, name):
    return [m.values[0] for m in bus.get_module(name).queue("inp").drain()]


@pytest.fixture
def bus():
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local")
    bus.add_module(sender_spec(), machine="local")
    yield bus
    bus.shutdown()


class TestInvalidation:
    def test_add_binding_after_first_route(self, bus):
        # Routing before any binding exists builds (and caches) an empty
        # table; adding a binding afterwards must invalidate it.
        bus.add_module(receiver_spec(), instance="r1", machine="local")
        send(bus, 1)
        assert received(bus, "r1") == []
        bus.add_binding(BindingSpec("sender", "out", "r1", "inp"))
        send(bus, 2)
        assert received(bus, "r1") == [2]

    def test_remove_binding_stops_delivery(self, bus):
        bus.add_module(receiver_spec(), instance="r1", machine="local")
        binding = BindingSpec("sender", "out", "r1", "inp")
        bus.add_binding(binding)
        send(bus, 1)
        bus.remove_binding(binding)
        send(bus, 2)
        assert received(bus, "r1") == [1]

    def test_rename_receiver_keeps_routing(self, bus):
        bus.add_module(receiver_spec(), instance="r1", machine="local")
        bus.add_binding(BindingSpec("sender", "out", "r1", "inp"))
        send(bus, 1)
        bus.rename_instance("r1", "r1-renamed")
        send(bus, 2)
        assert received(bus, "r1-renamed") == [1, 2]

    def test_rename_sender_moves_endpoint(self, bus):
        bus.add_module(receiver_spec(), instance="r1", machine="local")
        bus.add_binding(BindingSpec("sender", "out", "r1", "inp"))
        send(bus, 1)
        bus.rename_instance("sender", "origin")
        send(bus, 2, instance="origin")
        assert received(bus, "r1") == [1, 2]
        with pytest.raises(UnknownModuleError):
            send(bus, 3, instance="sender")

    def test_removed_instance_never_receives(self, bus):
        bus.add_module(receiver_spec(), instance="old", machine="local")
        binding = BindingSpec("sender", "out", "old", "inp")
        bus.add_binding(binding)
        send(bus, 1)
        old_queue = bus.get_module("old").queue("inp")
        bus.remove_binding(binding)
        bus.remove_module("old")
        bus.add_module(receiver_spec(), instance="new", machine="local")
        bus.add_binding(BindingSpec("sender", "out", "new", "inp"))
        send(bus, 2)
        assert received(bus, "new") == [2]
        assert [m.values[0] for m in old_queue.drain()] == [1]

    def test_route_unknown_instance_raises_after_table_built(self, bus):
        bus.add_module(receiver_spec(), instance="r1", machine="local")
        bus.add_binding(BindingSpec("sender", "out", "r1", "inp"))
        send(bus, 1)  # table is now built and cached
        with pytest.raises(UnknownModuleError):
            send(bus, 2, instance="ghost")

    def test_route_to_follows_rebind(self, bus):
        for name in ("r1", "r2"):
            bus.add_module(receiver_spec(), instance=name, machine="local")
            bus.add_binding(BindingSpec("sender", "out", name, "inp"))
        message = Message(values=[9], fmt="l", source_instance="sender",
                          source_interface="out")
        bus.route_to("sender", "out", "r1", message)
        assert received(bus, "r1") == [9]
        assert received(bus, "r2") == []
        bus.remove_binding(BindingSpec("sender", "out", "r1", "inp"))
        with pytest.raises(BindingError, match="no such binding"):
            bus.route_to("sender", "out", "r1", message)
        bus.route_to("sender", "out", "r2", message)
        assert received(bus, "r2") == [9]


class TestCrossHostFanout:
    def test_encode_once_preserves_values_and_identity(self):
        bus = SoftwareBus(sleep_scale=0.0)
        bus.add_host("big", MACHINES["sparc-like"])
        bus.add_host("little", MACHINES["vax-like"])
        try:
            bus.add_module(sender_spec(), machine="big")
            bus.add_module(receiver_spec(), instance="near", machine="big")
            for name in ("far1", "far2"):
                bus.add_module(receiver_spec(), instance=name, machine="little")
            for name in ("near", "far1", "far2"):
                bus.add_binding(BindingSpec("sender", "out", name, "inp"))
            message = Message(values=[1234], fmt="l", source_instance="sender",
                              source_interface="out")
            bus.route("sender", "out", message)
            # Same-profile delivery is the identity (no re-encode)...
            near = bus.get_module("near").queue("inp").drain()
            assert near[0] is message
            # ...and the one wire form decodes correctly for every
            # distinct remote profile, sequence number included.
            for name in ("far1", "far2"):
                (got,) = bus.get_module(name).queue("inp").drain()
                assert got.values == [1234]
                assert got.seq == message.seq
                assert got is not message
        finally:
            bus.shutdown()


class TestReplacementScript:
    def test_figure5_replacement_reroutes(self):
        """An objstate_move-driven replacement routes to the clone only.

        Runs the full Figure-5 move (signal, divulge, rebind, rename) on
        the live monitor app and asserts the displayed stream keeps
        flowing afterwards — i.e. every routing entry that mentioned the
        old compute instance was rebuilt for the clone.
        """
        from tests.reconfig.helpers import launch_monitor, wait_displayed
        from repro.reconfig.scripts import move_module

        bus = launch_monitor(requests=40, interval=0.01)
        try:
            wait_displayed(bus, 3)
            report = move_module(bus, "compute", machine="beta", timeout=15)
            assert report.kind == "move"
            before = len(wait_displayed(bus, 4))
            wait_displayed(bus, before + 3)
            assert bus.get_module("compute").host.name == "beta"
        finally:
            bus.shutdown()
