"""Property-based tests for the MIL parser (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.mil import parse_mil, parse_module_spec
from repro.bus.spec import ModuleSpec
from repro.state.format import MIL_PATTERN_NAMES

names = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
pattern_names = st.lists(
    st.sampled_from(sorted(MIL_PATTERN_NAMES)), min_size=0, max_size=3
)
roles = st.sampled_from(list(Role))


@st.composite
def interface_decls(draw):
    role = draw(roles)
    pattern = "".join(MIL_PATTERN_NAMES[n] for n in draw(pattern_names))
    returns = ""
    if role in (Role.CLIENT, Role.SERVER):
        returns = "".join(MIL_PATTERN_NAMES[n] for n in draw(pattern_names))
    return InterfaceDecl(
        name=draw(names), role=role, pattern=pattern, returns=returns
    )


@st.composite
def module_specs(draw):
    interfaces = draw(st.lists(interface_decls(), max_size=4))
    seen = set()
    unique = []
    for decl in interfaces:
        if decl.name not in seen:
            seen.add(decl.name)
            unique.append(decl)
    points = draw(st.lists(names, max_size=2, unique=True))
    return ModuleSpec(
        name=draw(names),
        source=draw(st.sampled_from(["", "mod.py", "dir/mod.py"])),
        interfaces=unique,
        reconfig_points=[p.upper() for p in points],
    )


@given(module_specs())
@settings(max_examples=150, deadline=None)
def test_describe_parse_roundtrip(spec):
    reparsed = parse_module_spec(spec.describe())
    assert reparsed.name == spec.name
    assert reparsed.source == spec.source
    assert reparsed.reconfig_points == spec.reconfig_points
    assert reparsed.interface_names() == spec.interface_names()
    for decl in spec.interfaces:
        again = reparsed.interface(decl.name)
        assert again.role == decl.role
        assert again.pattern == decl.pattern
        assert again.returns == decl.returns


@given(st.lists(module_specs(), min_size=1, max_size=3))
@settings(max_examples=50, deadline=None)
def test_multi_module_file_roundtrip(specs):
    by_name = {}
    for spec in specs:
        by_name[spec.name] = spec  # last wins, as in a dict
    text = "\n".join(spec.describe() for spec in by_name.values())
    config = parse_mil(text)
    assert set(config.modules) == set(by_name)
