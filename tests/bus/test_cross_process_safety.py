"""Cross-process safety of the objects that travel between processes.

Messages, module specs, and bindings were born in a single-process bus
where anything could ride along — a thread handle in ``attributes``, a
socket in a message value — and nothing noticed until the worker pool
made crossing a process boundary routine.  These tests pin the audited
contract: everything that travels round-trips through the canonical
abstract encoding, and anything that cannot travel fails loudly *naming
the offender*, not as an opaque decoder error in another process.
"""

import pickle
import threading

import pytest

from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import BindingSpec, ModuleSpec, spec_from_abstract
from repro.errors import EncodingError, SpecError
from repro.state.encoding import decode_any, encode_any
from repro.state.machine import MACHINES, profile_from_abstract


def _spec(**attributes):
    return ModuleSpec(
        name="compute",
        inline_source="def main():\n    mh.init()\n",
        interfaces=[
            InterfaceDecl(name="inp", role=Role.USE, pattern="l"),
            InterfaceDecl(name="out", role=Role.DEFINE, pattern="(sl)"),
        ],
        reconfig_points=["P"],
        attributes=attributes,
    )


class TestSpecTravel:
    def test_abstract_round_trip(self):
        spec = _spec(machine="alpha", placement="worker:1")
        raw = spec.to_abstract(prepared_source="PREPARED")
        back = spec_from_abstract(decode_any(encode_any(raw)))
        assert back.name == spec.name
        assert back.inline_source == "PREPARED"
        assert [d.name for d in back.interfaces] == ["inp", "out"]
        assert [d.role for d in back.interfaces] == [Role.USE, Role.DEFINE]
        assert back.attributes == {"machine": "alpha", "placement": "worker:1"}
        # Points never travel: preparation happened bus-side.
        assert back.reconfig_points == []

    def test_pickle_round_trip(self):
        spec = _spec(machine="alpha")
        back = pickle.loads(pickle.dumps(spec))
        assert back.name == spec.name
        assert [d.pattern for d in back.interfaces] == ["l", "(sl)"]

    def test_non_string_attribute_fails_loudly(self):
        # A thread handle smuggled into attributes must fail at the
        # boundary with the module's name, not deep inside encode_any.
        spec = _spec(handle=threading.Event())
        with pytest.raises(SpecError, match="compute.*handle"):
            spec.to_abstract(prepared_source="SRC")

    def test_non_string_attribute_value_fails_loudly(self):
        spec = _spec(retries=3)
        with pytest.raises(SpecError, match="string"):
            spec.to_abstract(prepared_source="SRC")


class TestBindingTravel:
    def test_pickle_round_trip(self):
        binding = BindingSpec("sensor", "out", "monitor", "inp")
        back = pickle.loads(pickle.dumps(binding))
        assert back == binding
        assert back.endpoints() == binding.endpoints()


class TestMessageTravel:
    def test_wire_round_trip_across_profiles(self):
        sender = MACHINES["modern-64"]
        receiver = MACHINES["sparc-like"]
        message = Message(
            values=[7, "abc", 2.5],
            fmt="lsF",
            source_instance="sensor",
            source_interface="out",
            seq=42,
        ).validated()
        back = Message.from_wire(message.to_wire(sender), receiver)
        assert back.values == [7, "abc", 2.5]
        assert back.source_instance == "sensor"
        assert back.source_interface == "out"
        assert back.seq == 42

    def test_pickle_round_trip(self):
        message = Message(
            values=[1], fmt="l", source_instance="a", source_interface="out"
        )
        back = pickle.loads(pickle.dumps(message))
        assert back.values == [1]
        assert back.source_instance == "a"

    def test_unencodable_value_names_the_endpoint(self):
        # Format-less messages (dynamic 'a' codes) can carry anything in
        # process; crossing a boundary must point at the guilty writer.
        message = Message(
            values=[threading.Lock()],
            fmt="",
            source_instance="sensor",
            source_interface="out",
        )
        with pytest.raises(EncodingError, match="sensor.out"):
            message.to_wire(MACHINES["modern-64"])


class TestProfileTravel:
    def test_abstract_round_trip(self):
        profile = MACHINES["sparc-like"]
        back = profile_from_abstract(decode_any(encode_any(profile.to_abstract())))
        assert back == profile
