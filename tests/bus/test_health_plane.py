"""Live health plane: heartbeats over real links, kill-detection, gating.

The fast end of the detector is unit-tested with a fake clock in
tests/runtime/test_health.py; this suite runs the real thing — worker
processes beating over their pipes, a killed worker condemned by
silence, and ``replace()`` refusing to target it — so it carries the
``multiproc`` marker and real timeouts.
"""

import time

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.errors import ReconfigError
from repro.reconfig.coordinator import ReconfigurationCoordinator
from repro.runtime import telemetry
from tests.bus.test_transport_contract import _Nudger

pytestmark = pytest.mark.multiproc

WATCHDOG_S = 120.0

COUNTER_SOURCE = '''
def main():
    total = 0
    mh.statics["total"] = 0
    mh.init()
    while mh.running:
        mh.reconfig_point("Q")
        n = mh.read1("inp")
        total = total + n
        mh.statics["total"] = total
'''

FEEDER_SOURCE = '''
def main():
    mh.sleep(0.01)
'''


@pytest.fixture(autouse=True)
def _watchdog(watchdog):
    yield


@pytest.fixture
def worker_bus():
    bus = SoftwareBus(sleep_scale=0.0, workers=2)
    yield bus
    bus.shutdown()


def _launch_counter(bus, placement="worker:0"):
    bus.add_module(
        ModuleSpec(
            name="counter",
            inline_source=COUNTER_SOURCE,
            interfaces=[InterfaceDecl(name="inp", role=Role.USE, pattern="l")],
            reconfig_points=["Q"],
        ),
        instance="counter",
        placement=placement,
    )
    bus.add_module(
        ModuleSpec(
            name="feeder",
            inline_source=FEEDER_SOURCE,
            interfaces=[InterfaceDecl(name="out", role=Role.DEFINE, pattern="l")],
        ),
        instance="feeder",
    )
    bus.add_binding(BindingSpec("feeder", "out", "counter", "inp"))
    bus.start_module("counter")
    _feed(bus, 1, 2, 3)
    deadline = time.monotonic() + 20
    while bus.statics_of("counter").get("total") != 6:
        assert time.monotonic() < deadline, "counter never reached total=6"
        time.sleep(0.02)


def _feed(bus, *values):
    for value in values:
        bus.route(
            "feeder",
            "out",
            Message(
                values=[value],
                fmt="l",
                source_instance="feeder",
                source_interface="out",
            ).validated(),
        )


def _worker_slot(bus, index=0):
    transport = bus._transports["worker"]
    slot = transport._slots[index]
    assert slot is not None, f"worker slot {index} never spawned"
    return slot


class TestLiveHeartbeats:
    def test_worker_beats_to_healthy(self, worker_bus):
        monitor = worker_bus.enable_health(interval=0.05)
        _launch_counter(worker_bus)
        status = monitor.wait_for_status("worker-0", ("healthy",), timeout=10.0)
        assert status == "healthy"
        snap = monitor.snapshot()
        assert snap["hosts"]["worker-0"]["beats"] >= 1
        # The beat payload carries per-module detail, joined by name.
        counter = snap["modules"].get("counter")
        assert counter is not None
        assert counter["host"] == "worker-0"
        assert counter["state"] == "running"
        assert "queued" in counter and "queue_hwm" in counter

    def test_health_rides_telemetry_snapshot(self, worker_bus):
        rec = telemetry.enable(capacity=4096)
        try:
            monitor = worker_bus.enable_health(interval=0.05)
            _launch_counter(worker_bus)
            monitor.wait_for_status("worker-0", ("healthy",), timeout=10.0)
            snap = rec.snapshot()
            assert snap["health"]["hosts"]["worker-0"]["status"] == "healthy"
        finally:
            telemetry.disable()

    def test_late_spawned_slot_beats_too(self, worker_bus):
        monitor = worker_bus.enable_health(interval=0.05)
        _launch_counter(worker_bus, placement="worker:1")  # slot 1, not 0
        assert (
            monitor.wait_for_status("worker-1", ("healthy",), timeout=10.0)
            == "healthy"
        )


class TestKilledWorker:
    def test_detected_dead_and_preflight_refuses(self, worker_bus):
        monitor = worker_bus.enable_health(interval=0.05, dead_after=2.0)
        _launch_counter(worker_bus)
        monitor.wait_for_status("worker-0", ("healthy",), timeout=10.0)

        _worker_slot(worker_bus).process.kill()
        detect_started = time.monotonic()
        status = monitor.wait_for_status(
            "worker-0", ("dead",), timeout=10.0
        )
        detect_s = time.monotonic() - detect_started
        assert status == "dead", f"killed worker still {status}"
        # Configured bound: dead_after=2s plus scheduling slack.
        assert detect_s < 8.0, f"detection took {detect_s:.1f}s"

        coordinator = ReconfigurationCoordinator(worker_bus)
        with pytest.raises(ReconfigError, match="pre-flight health gate"):
            coordinator.replace("counter", timeout=30)

    def test_force_overrides_condemnation(self, worker_bus):
        # Long interval: no beat arrives mid-test to un-condemn the host.
        monitor = worker_bus.enable_health(interval=30.0)
        _launch_counter(worker_bus)
        monitor.mark_dead("worker-0", reason="operator says no")
        coordinator = ReconfigurationCoordinator(worker_bus)
        with pytest.raises(ReconfigError, match="pre-flight health gate"):
            coordinator.replace("counter", timeout=30)
        # The worker is actually alive, so forcing past the verdict works.
        with _Nudger(worker_bus):
            report = coordinator.replace("counter", timeout=30, force=True)
        assert report.health_verdict == "dead"
        assert "commit" in report.completed


class TestSourceLost:
    def test_snapshot_survives_dead_link(self, worker_bus):
        rec = telemetry.enable(capacity=4096)
        try:
            _launch_counter(worker_bus)
            # First snapshot caches the worker's totals while it lives.
            first = rec.snapshot()
            assert any(
                key.startswith("bus.delivered") for key in first["counters"]
            )
            slot = _worker_slot(worker_bus)
            slot.process.kill()
            slot.process.join(timeout=10)
            deadline = time.monotonic() + 10
            while True:
                # Must not raise into snapshot(); the dead link's last
                # known totals keep counters monotonic.
                snap = rec.snapshot()
                events = [
                    r
                    for r in rec.drain_records()
                    if r.get("type") == "event"
                    and r.get("kind") == "telemetry.source_lost"
                ]
                if events:
                    assert events[0]["attrs"]["host"] == "worker-0"
                    break
                assert time.monotonic() < deadline, (
                    "telemetry.source_lost never emitted"
                )
                time.sleep(0.1)
            assert any(
                key.startswith("bus.delivered") for key in snap["counters"]
            )
        finally:
            telemetry.disable()
