"""Tests for messages and queues (repro.bus.message, repro.bus.queues)."""

import threading
import time

import pytest

from repro.bus.message import Message
from repro.bus.queues import MessageQueue
from repro.errors import MachineCompatibilityError, TransportError
from repro.runtime.events import InterruptibleEvent


class TestMessage:
    def test_wire_roundtrip(self):
        message = Message(values=[1, 2.5, "x"], fmt="lFs",
                          source_instance="a", source_interface="out")
        wire = message.to_wire(None)
        back = Message.from_wire(wire, None)
        assert back.values == [1, 2.5, "x"]
        assert back.source_instance == "a"
        assert back.source_interface == "out"
        assert back.seq == message.seq

    def test_untyped_message(self):
        message = Message(values=[{"k": [1]}])
        back = Message.from_wire(message.to_wire(None), None)
        assert back.values == [{"k": [1]}]

    def test_validated(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            Message(values=["x"], fmt="l").validated()

    def test_seq_increments(self):
        assert Message(values=[]).seq < Message(values=[]).seq

    def test_transferred_same_machine_is_identity(self, sparc):
        message = Message(values=[1])
        assert message.transferred(sparc, sparc) is message
        assert message.transferred(None, sparc) is message

    def test_transferred_cross_machine_translates(self, sparc, vax):
        message = Message(values=[12345], fmt="l")
        moved = message.transferred(sparc, vax)
        assert moved.values == [12345]
        assert moved is not message

    def test_transferred_rejects_unrepresentable(self, sparc, vax):
        message = Message(values=[2**40], fmt="l")
        with pytest.raises(MachineCompatibilityError):
            message.transferred(sparc, vax)

    def test_malformed_wire(self):
        with pytest.raises(Exception):
            Message.from_wire(b"\x01\x02", None)


def msg(value):
    return Message(values=[value])


class TestMessageQueue:
    def test_fifo(self):
        queue = MessageQueue("q")
        for i in range(3):
            queue.put(msg(i))
        assert [queue.get(timeout=1).values[0] for _ in range(3)] == [0, 1, 2]

    def test_len_and_peek(self):
        queue = MessageQueue("q")
        assert len(queue) == 0
        queue.put(msg(1))
        assert queue.peek_count() == 1

    def test_get_timeout(self):
        queue = MessageQueue("q")
        with pytest.raises(TransportError, match="timed out"):
            queue.get(timeout=0.05)

    def test_get_interrupted_by_stop(self):
        # An interruptible stop event (what every module's mh uses) wakes
        # the blocked reader immediately — no timeout needed at all.
        queue = MessageQueue("q")
        stop = InterruptibleEvent()
        timer = threading.Timer(0.05, stop.set)
        timer.start()
        start = time.monotonic()
        with pytest.raises(TransportError, match="stop"):
            queue.get(timeout=None, stop_event=stop)
        timer.cancel()
        assert time.monotonic() - start < 2.0

    def test_plain_event_stop_checked_at_deadline(self):
        # A plain Event cannot interrupt the wait, but stop still wins
        # over the timeout report once the reader wakes.
        queue = MessageQueue("q")
        stop = threading.Event()
        stop.set()
        with pytest.raises(TransportError, match="stop"):
            queue.get(timeout=0.01, stop_event=stop)

    def test_close_wakes_blocked_reader(self):
        queue = MessageQueue("q")
        outcome = []

        def consumer():
            try:
                queue.get(timeout=None)
            except TransportError as exc:
                outcome.append(str(exc))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome and "closed" in outcome[0]

    def test_timeout_honoured_under_notify_storm(self):
        # Regression: the historical implementation charged a full 50 ms
        # poll slice per wakeup (`waited += slice_`), so spurious wakeups
        # made timeouts fire far too early (and quiet queues up to 50 ms
        # late).  With monotonic deadlines the timeout must land within
        # ~10% regardless of how often the condition is poked.
        queue = MessageQueue("q")
        timeout = 0.25
        storm_stop = threading.Event()

        def storm():
            # Spurious wakeups: notify without ever enqueuing a message.
            while not storm_stop.is_set():
                with queue._not_empty:
                    queue._not_empty.notify_all()
                time.sleep(0.002)

        thread = threading.Thread(target=storm)
        thread.start()
        try:
            start = time.monotonic()
            with pytest.raises(TransportError, match="timed out"):
                queue.get(timeout=timeout)
            elapsed = time.monotonic() - start
        finally:
            storm_stop.set()
            thread.join(timeout=5)
        assert elapsed >= timeout * 0.9, f"timeout fired early: {elapsed:.3f}s"
        assert elapsed <= timeout * 1.5 + 0.1, f"timeout fired late: {elapsed:.3f}s"

    def test_blocking_get_wakes_on_put(self):
        queue = MessageQueue("q")
        result = []

        def consumer():
            result.append(queue.get(timeout=5).values[0])

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put(msg("wake"))
        thread.join(timeout=5)
        assert result == ["wake"]

    def test_snapshot_nondestructive(self):
        queue = MessageQueue("q")
        queue.put(msg(1))
        snapshot = queue.snapshot()
        assert len(snapshot) == 1
        assert len(queue) == 1

    def test_drain_destructive(self):
        queue = MessageQueue("q")
        queue.put(msg(1))
        queue.put(msg(2))
        drained = queue.drain()
        assert [m.values[0] for m in drained] == [1, 2]
        assert len(queue) == 0

    def test_prepend_puts_older_first(self):
        # The cq semantics: copied (older) messages are consumed before
        # freshly delivered ones.
        queue = MessageQueue("q")
        queue.put(msg("new1"))
        queue.prepend([msg("old1"), msg("old2")])
        order = [queue.get(timeout=1).values[0] for _ in range(3)]
        assert order == ["old1", "old2", "new1"]

    def test_extend_appends(self):
        queue = MessageQueue("q")
        queue.put(msg(1))
        queue.extend([msg(2)])
        assert [queue.get(timeout=1).values[0] for _ in range(2)] == [1, 2]

    def test_closed_queue_rejects_put(self):
        queue = MessageQueue("q")
        queue.close()
        with pytest.raises(TransportError, match="closed"):
            queue.put(msg(1))
