"""Tests for the MIL configuration language parser (repro.bus.mil)."""

import pytest

from repro.apps.monitor import MONITOR_MIL
from repro.bus.interfaces import Role
from repro.bus.mil import parse_mil, parse_module_spec, tokenize
from repro.errors import MILSyntaxError, SpecError


class TestTokenizer:
    def test_strings_and_words(self):
        tokens = tokenize('module x { source = "a b.py" }')
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "word", "punct", "word", "punct", "string", "punct", "eof"]

    def test_separators_skipped(self):
        tokens = tokenize("a :: b")
        assert [t.value for t in tokens if t.kind != "eof"] == ["a", "b"]

    def test_comments_skipped(self):
        tokens = tokenize("a # comment here\nb")
        assert [t.value for t in tokens if t.kind != "eof"] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.lineno for t in tokens if t.kind != "eof"] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(MILSyntaxError):
            tokenize("module @ {}")


class TestFigure2:
    """The paper's own configuration parses to the expected structure."""

    def test_monitor_parses(self):
        config = parse_mil(MONITOR_MIL)
        assert set(config.modules) == {"display", "compute", "sensor"}
        assert config.application is not None
        assert config.application.name == "monitor"

    def test_compute_interfaces(self):
        config = parse_mil(MONITOR_MIL)
        compute = config.modules["compute"]
        display_if = compute.interface("display")
        assert display_if.role is Role.SERVER
        assert display_if.pattern == "i"
        assert display_if.returns == "f"
        sensor_if = compute.interface("sensor")
        assert sensor_if.role is Role.USE
        assert sensor_if.pattern == "i"

    def test_reconfig_point_declared(self):
        config = parse_mil(MONITOR_MIL)
        assert config.modules["compute"].reconfig_points == ["R"]
        assert config.modules["compute"].is_reconfigurable
        assert not config.modules["sensor"].is_reconfigurable

    def test_application_block_may_be_module_keyword(self):
        # Figure 2 writes the application as "module monitor { instance ... }"
        config = parse_mil(MONITOR_MIL)
        assert [i.instance for i in config.application.instances] == [
            "display",
            "compute",
            "sensor",
        ]

    def test_bindings(self):
        config = parse_mil(MONITOR_MIL)
        bindings = config.application.bindings
        assert len(bindings) == 2
        assert bindings[0].from_instance == "display"
        assert bindings[0].from_interface == "temper"
        assert bindings[0].to_instance == "compute"
        assert bindings[0].to_interface == "display"

    def test_stray_quote_in_pattern_tolerated(self):
        # Figure 2 contains pattern = {'integer}
        config = parse_mil(MONITOR_MIL)
        assert config.modules["compute"].interface("display").pattern == "i"


class TestModuleSpecs:
    def test_attributes(self):
        spec = parse_module_spec(
            'module m { source = "m.py" machine = "alpha" owner = "ops" }'
        )
        assert spec.source == "m.py"
        assert spec.attributes == {"machine": "alpha", "owner": "ops"}

    def test_accepts_without_equals(self):
        spec = parse_module_spec(
            "module m { client interface x pattern = {integer} accepts {-float} }"
        )
        assert spec.interface("x").returns == "f"

    def test_multiple_points(self):
        spec = parse_module_spec("module m { reconfiguration point = {R1 R2} }")
        assert spec.reconfig_points == ["R1", "R2"]

    def test_interface_needs_role(self):
        with pytest.raises(MILSyntaxError, match="role"):
            parse_module_spec("module m { interface x }")

    def test_duplicate_module_rejected(self):
        with pytest.raises(MILSyntaxError, match="twice"):
            parse_mil("module m { }\nmodule m { }")

    def test_unterminated_block(self):
        with pytest.raises(MILSyntaxError, match="unterminated"):
            parse_mil("module m { source = \"x\"")

    def test_parse_module_spec_rejects_many(self):
        with pytest.raises(MILSyntaxError, match="exactly one"):
            parse_module_spec("module a { }\nmodule b { }")


class TestApplicationSpecs:
    def test_instance_with_module_and_machine(self):
        config = parse_mil(
            "module worker { }\n"
            "application app {\n"
            "  instance w1 : worker machine = \"alpha\"\n"
            "  instance w2 : worker machine = \"beta\"\n"
            "}\n"
        )
        instances = config.application.instances
        assert [(i.instance, i.module, i.machine) for i in instances] == [
            ("w1", "worker", "alpha"),
            ("w2", "worker", "beta"),
        ]

    def test_unknown_module_rejected(self):
        with pytest.raises(SpecError, match="unknown module"):
            parse_mil("application app { instance ghost }")

    def test_bad_endpoint_rejected(self):
        with pytest.raises((MILSyntaxError, SpecError)):
            parse_mil(
                "module a { define interface out }\n"
                'application app { instance a bind "a" "a out" }'
            )

    def test_binding_to_unknown_interface_rejected(self):
        with pytest.raises(SpecError, match="no interface"):
            parse_mil(
                "module a { define interface out pattern = {integer} }\n"
                "module b { use interface inp pattern = {integer} }\n"
                "application app {\n"
                "  instance a\n  instance b\n"
                '  bind "a ghost" "b inp"\n'
                "}\n"
            )

    def test_incompatible_binding_rejected(self):
        with pytest.raises(SpecError, match="incompatible"):
            parse_mil(
                "module a { define interface out pattern = {integer} }\n"
                "module b { define interface out2 pattern = {integer} }\n"
                "application app {\n"
                "  instance a\n  instance b\n"
                '  bind "a out" "b out2"\n'
                "}\n"
            )

    def test_two_application_blocks_rejected(self):
        with pytest.raises(MILSyntaxError, match="only one"):
            parse_mil(
                "application a { }\napplication b { }"
            )


class TestDescribeRoundtrip:
    def test_module_describe_reparses(self):
        config = parse_mil(MONITOR_MIL)
        for spec in config.modules.values():
            reparsed = parse_module_spec(spec.describe())
            assert reparsed.name == spec.name
            assert reparsed.interface_names() == spec.interface_names()
            assert reparsed.reconfig_points == spec.reconfig_points
