"""Additional lifecycle tests for ModuleInstance (repro.bus.module)."""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.module import ModuleState
from repro.bus.spec import ModuleSpec
from repro.errors import (
    ModuleLifecycleError,
    ReconfigTimeoutError,
    UnknownInterfaceError,
)

from tests.conftest import wait_until

POINTED = """\
def main():
    while mh.running:
        mh.reconfig_point('P')
        mh.sleep(0.005)
"""


@pytest.fixture
def bus():
    bus = SoftwareBus(sleep_scale=0.01)
    bus.add_host("local")
    yield bus
    bus.shutdown()


def pointed_spec(name="pointed"):
    return ModuleSpec(
        name=name,
        inline_source=POINTED,
        interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
        reconfig_points=["P"],
    )


class TestLoad:
    def test_load_transforms_reconfigurable_spec(self, bus):
        module = bus.add_module(pointed_spec(), machine="local")
        assert module.transform is not None
        assert "mh.begin_reconfig_capture" in module.executable_source

    def test_load_plain_module_untransformed(self, bus):
        spec = ModuleSpec(name="plain", inline_source="def main():\n    pass\n")
        module = bus.add_module(spec, machine="local")
        assert module.transform is None

    def test_load_from_file(self, bus, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("def main():\n    mh.statics['ran'] = True\n")
        spec = ModuleSpec(name="filemod", source=str(path))
        bus.add_module(spec, machine="local", start=True)
        wait_until(lambda: bus.get_module("filemod").mh.statics.get("ran"))

    def test_no_source_rejected(self, bus):
        spec = ModuleSpec(name="empty")
        with pytest.raises(ModuleLifecycleError, match="neither inline"):
            bus.add_module(spec, machine="local")

    def test_double_start_rejected(self, bus):
        bus.add_module(pointed_spec(), machine="local", start=True)
        with pytest.raises(ModuleLifecycleError):
            bus.start_module("pointed")


class TestDivulgeFlow:
    def test_signal_then_wait_divulged(self, bus):
        module = bus.add_module(pointed_spec(), machine="local", start=True)
        bus.signal_reconfig("pointed")
        packet = module.wait_divulged(timeout=10)
        assert packet.startswith(b"MHST")
        assert module.state is ModuleState.DIVULGED

    def test_wait_divulged_timeout(self, bus):
        spec = ModuleSpec(
            name="pointless",
            inline_source="def main():\n    while mh.running:\n        mh.sleep(0.01)\n",
        )
        module = bus.add_module(spec, machine="local", start=True)
        module.mh.request_reconfig()  # no point exists: never honoured
        with pytest.raises(ReconfigTimeoutError):
            module.wait_divulged(timeout=0.3)

    def test_objstate_move_rejects_running_target(self, bus):
        bus.add_module(pointed_spec(), machine="local", start=True)
        bus.add_module(pointed_spec("pointed2"), instance="clone2", machine="local",
                       start=True)
        from repro.errors import BusError

        with pytest.raises(BusError, match="already started"):
            bus.objstate_move("pointed", "clone2", timeout=2)


class TestQueuesAndDescribe:
    def test_unknown_interface_queue(self, bus):
        module = bus.add_module(pointed_spec(), machine="local")
        with pytest.raises(Exception):
            module.queue("ghost")

    def test_outgoing_interface_has_no_queue(self, bus):
        spec = ModuleSpec(
            name="writer",
            inline_source="def main():\n    pass\n",
            interfaces=[InterfaceDecl("out", Role.DEFINE, pattern="l")],
        )
        module = bus.add_module(spec, machine="local")
        assert not module.has_queue("out")
        with pytest.raises(UnknownInterfaceError, match="no receive queue"):
            module.queue("out")

    def test_describe(self, bus):
        module = bus.add_module(pointed_spec(), machine="local")
        text = module.describe()
        assert "pointed" in text and "local" in text and "loaded" in text
