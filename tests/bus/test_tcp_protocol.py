"""Unit tests for the TCP wire protocol helpers (repro.bus.tcp)."""

import socket
import threading

import pytest

from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.spec import ModuleSpec
from repro.bus.tcp import (
    _MAX_FRAME,
    profile_from_abstract,
    profile_to_abstract,
    recv_frame,
    send_frame,
    spec_from_abstract,
    spec_to_abstract,
)
from repro.errors import TransportError
from repro.state.machine import MACHINES


@pytest.fixture
def sock_pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip(self, sock_pair):
        left, right = sock_pair
        send_frame(left, ["req", 1, "ping"])
        assert recv_frame(right) == ["req", 1, "ping"]

    def test_binary_payload(self, sock_pair):
        left, right = sock_pair
        packet = bytes(range(256)) * 10
        send_frame(left, ["evt", 0, "deliver", "m", "inp", packet])
        frame = recv_frame(right)
        assert frame[5] == packet

    def test_multiple_frames_in_order(self, sock_pair):
        left, right = sock_pair
        for i in range(5):
            send_frame(left, ["req", i, "n"])
        assert [recv_frame(right)[1] for _ in range(5)] == list(range(5))

    def test_closed_connection(self, sock_pair):
        left, right = sock_pair
        left.close()
        with pytest.raises(TransportError, match="closed"):
            recv_frame(right)

    def test_partial_frame(self, sock_pair):
        left, right = sock_pair
        left.sendall(b"\x00\x00\x00\x10abc")  # announces 16, sends 3
        left.close()
        with pytest.raises(TransportError):
            recv_frame(right)

    def test_oversized_announcement_rejected(self, sock_pair):
        left, right = sock_pair
        left.sendall((_MAX_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(TransportError, match="oversized"):
            recv_frame(right)

    def test_concurrent_reader(self, sock_pair):
        left, right = sock_pair
        received = []

        def reader():
            received.append(recv_frame(right))

        thread = threading.Thread(target=reader)
        thread.start()
        send_frame(left, ["rep", 9, True])
        thread.join(5)
        assert received == [["rep", 9, True]]


class TestSpecSerialization:
    def make_spec(self):
        return ModuleSpec(
            name="compute",
            inline_source="def main():\n    pass\n",
            interfaces=[
                InterfaceDecl("display", Role.SERVER, pattern="i", returns="f"),
                InterfaceDecl("sensor", Role.USE, pattern="i"),
            ],
            reconfig_points=["R"],
            attributes={"machine": "alpha"},
        )

    def test_roundtrip(self):
        spec = self.make_spec()
        raw = spec_to_abstract(spec, prepared_source="PREPARED")
        back = spec_from_abstract(raw)
        assert back.name == "compute"
        assert back.inline_source == "PREPARED"
        assert back.interface("display").role is Role.SERVER
        assert back.interface("display").returns == "f"
        assert back.interface("sensor").role is Role.USE
        assert back.attributes == {"machine": "alpha"}
        # Daemons receive already-prepared source: never re-transform.
        assert back.reconfig_points == []

    def test_survives_canonical_encoding(self):
        from repro.state.encoding import decode_any, encode_any

        raw = spec_to_abstract(self.make_spec(), "SRC")
        assert spec_from_abstract(decode_any(encode_any(raw))).name == "compute"


class TestProfileSerialization:
    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_roundtrip(self, name):
        profile = MACHINES[name]
        back = profile_from_abstract(profile_to_abstract(profile))
        assert back == profile
