"""Tests for the software bus (repro.bus.bus, repro.bus.module)."""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.mil import parse_mil
from repro.bus.module import ModuleState
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.bus.interfaces import InterfaceDecl, Role
from repro.errors import (
    BindingError,
    BusError,
    ModuleCrashedError,
    UnknownInterfaceError,
    UnknownModuleError,
)

from tests.conftest import wait_until

PRODUCER = """\
def main():
    count = int(mh.config.get('count', '5'))
    i = 0
    while mh.running and i < count:
        mh.write('out', 'l', i)
        i = i + 1
        mh.sleep(0.001)
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(0.05)
"""

CONSUMER = """\
def main():
    seen = []
    mh.statics['seen'] = seen
    while mh.running:
        value = mh.read1('inp')
        seen.append(value)
"""

CRASHER = """\
def main():
    raise ValueError('boom')
"""


def producer_spec(name="producer", count=5):
    return ModuleSpec(
        name=name,
        inline_source=PRODUCER,
        interfaces=[InterfaceDecl("out", Role.DEFINE, pattern="l")],
        attributes={"count": str(count)},
    )


def consumer_spec(name="consumer"):
    return ModuleSpec(
        name=name,
        inline_source=CONSUMER,
        interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
    )


@pytest.fixture
def bus():
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local")
    yield bus
    bus.shutdown()


class TestModuleLifecycle:
    def test_add_and_start(self, bus):
        module = bus.add_module(producer_spec(), machine="local")
        assert module.state is ModuleState.LOADED
        bus.start_module("producer")
        wait_until(lambda: bus.get_module("producer").mh.statics.get("done"))

    def test_duplicate_instance(self, bus):
        bus.add_module(producer_spec(), machine="local")
        with pytest.raises(BusError, match="already exists"):
            bus.add_module(producer_spec(), machine="local")

    def test_unknown_instance(self, bus):
        with pytest.raises(UnknownModuleError):
            bus.get_module("ghost")

    def test_missing_main_rejected(self, bus):
        spec = ModuleSpec(name="bad", inline_source="x = 1\n")
        bus.add_module(spec, machine="local")
        from repro.errors import ModuleLifecycleError

        with pytest.raises(ModuleLifecycleError, match="no main"):
            bus.start_module("bad")

    def test_crash_reported(self, bus):
        spec = ModuleSpec(name="crasher", inline_source=CRASHER)
        bus.add_module(spec, machine="local", start=True)
        wait_until(lambda: bus.get_module("crasher").state is ModuleState.CRASHED)
        with pytest.raises(ModuleCrashedError, match="boom"):
            bus.check_health()

    def test_stop_is_clean(self, bus):
        bus.add_module(producer_spec(count=10**9), machine="local", start=True)
        module = bus.get_module("producer")
        module.stop()
        assert module.state is ModuleState.STOPPED

    def test_remove_requires_unbound(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        bus.add_binding(BindingSpec("producer", "out", "consumer", "inp"))
        with pytest.raises(BindingError, match="still attached"):
            bus.remove_module("producer")

    def test_remove_after_unbind(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        binding = BindingSpec("producer", "out", "consumer", "inp")
        bus.add_binding(binding)
        bus.remove_binding(binding)
        bus.remove_module("producer")
        assert not bus.has_module("producer")


class TestRouting:
    def test_stream_delivery(self, bus):
        bus.add_module(producer_spec(count=4), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        bus.add_binding(BindingSpec("producer", "out", "consumer", "inp"))
        bus.start_module("producer")
        bus.start_module("consumer")
        wait_until(
            lambda: bus.get_module("consumer").mh.statics.get("seen") == [0, 1, 2, 3]
        )

    def test_binding_direction_agnostic(self, bus):
        # The binding may be written in either endpoint order.
        bus.add_module(producer_spec(count=2), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        bus.add_binding(BindingSpec("consumer", "inp", "producer", "out"))
        bus.start_module("producer")
        bus.start_module("consumer")
        wait_until(lambda: bus.get_module("consumer").mh.statics.get("seen") == [0, 1])

    def test_fanout_to_two_consumers(self, bus):
        bus.add_module(producer_spec(count=3), machine="local")
        bus.add_module(consumer_spec("consumer"), instance="c1", machine="local")
        bus.add_module(consumer_spec("consumer"), instance="c2", machine="local")
        bus.add_binding(BindingSpec("producer", "out", "c1", "inp"))
        bus.add_binding(BindingSpec("producer", "out", "c2", "inp"))
        for name in ("producer", "c1", "c2"):
            bus.start_module(name)
        for name in ("c1", "c2"):
            wait_until(
                lambda n=name: bus.get_module(n).mh.statics.get("seen") == [0, 1, 2]
            )

    def test_cross_machine_values_translated(self, sparc, vax):
        bus = SoftwareBus(sleep_scale=0.0)
        bus.add_host("big", sparc)
        bus.add_host("little", vax)
        try:
            bus.add_module(producer_spec(count=3), machine="big")
            bus.add_module(consumer_spec(), machine="little")
            bus.add_binding(BindingSpec("producer", "out", "consumer", "inp"))
            bus.start_module("producer")
            bus.start_module("consumer")
            wait_until(
                lambda: bus.get_module("consumer").mh.statics.get("seen") == [0, 1, 2]
            )
        finally:
            bus.shutdown()

    def test_incompatible_binding_rejected(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(producer_spec("p2"), instance="p2", machine="local")
        with pytest.raises(BindingError, match="incompatible"):
            bus.add_binding(BindingSpec("producer", "out", "p2", "out"))

    def test_duplicate_binding_rejected(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        binding = BindingSpec("producer", "out", "consumer", "inp")
        bus.add_binding(binding)
        with pytest.raises(BindingError, match="already"):
            bus.add_binding(binding)

    def test_remove_unknown_binding(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        with pytest.raises(BindingError, match="no such"):
            bus.remove_binding(BindingSpec("producer", "out", "consumer", "inp"))

    def test_write_on_incoming_interface_rejected(self, bus):
        bus.add_module(consumer_spec(), machine="local")
        module = bus.get_module("consumer")
        with pytest.raises(UnknownInterfaceError, match="cannot send"):
            module.mh.write("inp", "l", 1)


class TestIntrospection:
    def setup_app(self, bus):
        bus.add_module(producer_spec(), machine="local")
        bus.add_module(consumer_spec(), machine="local")
        bus.add_binding(BindingSpec("producer", "out", "consumer", "inp"))

    def test_destinations_and_sources(self, bus):
        self.setup_app(bus)
        assert bus.destinations_of("producer", "out") == [("consumer", "inp")]
        assert bus.sources_of("consumer", "inp") == [("producer", "out")]
        assert bus.destinations_of("consumer", "inp") == []

    def test_snapshot_configuration(self, bus):
        self.setup_app(bus)
        app = bus.snapshot_configuration()
        assert [i.instance for i in app.instances] == ["consumer", "producer"]
        assert len(app.bindings) == 1

    def test_rename_rewrites_bindings(self, bus):
        self.setup_app(bus)
        bus.rename_instance("producer", "source")
        assert bus.destinations_of("source", "out") == [("consumer", "inp")]
        assert not bus.has_module("producer")

    def test_queue_transfer(self, bus):
        self.setup_app(bus)
        bus.add_module(consumer_spec("consumer"), instance="c2", machine="local")
        consumer = bus.get_module("consumer")
        from repro.bus.message import Message

        consumer.deliver("inp", Message(values=[7]))
        copied = bus.copy_queue("consumer", "inp", "c2")
        assert copied == 1
        assert bus.get_module("c2").queued_counts()["inp"] == 1
        removed = bus.remove_queue("consumer", "inp")
        assert removed == 1
        assert consumer.queued_counts()["inp"] == 0

    def test_trace_records_events(self, bus):
        self.setup_app(bus)
        assert any("add module producer" in line for line in bus.trace)
        assert any("bind" in line for line in bus.trace)


class TestLaunchFromMIL:
    def test_launch(self):
        config = parse_mil(
            "module p { define interface out pattern = {long} }\n"
            "module c { use interface inp pattern = {long} }\n"
            "application app {\n"
            "  instance p\n  instance c\n"
            '  bind "p out" "c inp"\n'
            "}\n"
        )
        config.modules["p"].inline_source = PRODUCER
        config.modules["p"].attributes["count"] = "2"
        config.modules["c"].inline_source = CONSUMER
        bus = SoftwareBus(sleep_scale=0.0)
        try:
            bus.launch(config)
            wait_until(lambda: bus.get_module("c").mh.statics.get("seen") == [0, 1])
            assert bus.application_name == "app"
        finally:
            bus.shutdown()

    def test_launch_without_application(self):
        config = parse_mil("module p { }")
        bus = SoftwareBus()
        with pytest.raises(BusError, match="no application"):
            bus.launch(config)
