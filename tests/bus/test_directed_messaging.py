"""Tests for directed request/reply (read_msg / write_to / route_to)."""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.errors import BindingError

from tests.conftest import wait_until

SERVER = """\
def main():
    served = []
    mh.statics['served'] = served
    while mh.running:
        request, sender = mh.read_msg('requests')
        served.append((sender, request[0]))
        mh.write_to('requests', sender, 'l', request[0] * 10)
"""

CLIENT = """\
def main():
    n = int(mh.config['n'])
    got = []
    mh.statics['got'] = got
    while mh.running and len(got) < 3:
        mh.write('srv', 'l', n)
        got.append(mh.read1('srv'))
    while mh.running:
        mh.sleep(0.05)
"""


def server_spec():
    return ModuleSpec(
        name="server",
        inline_source=SERVER,
        interfaces=[
            InterfaceDecl("requests", Role.SERVER, pattern="l", returns="l")
        ],
    )


def client_spec():
    return ModuleSpec(
        name="client",
        inline_source=CLIENT,
        interfaces=[InterfaceDecl("srv", Role.CLIENT, pattern="l", returns="l")],
    )


@pytest.fixture
def bus():
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local")
    yield bus
    bus.shutdown()


class TestMultiClientServer:
    def test_replies_go_to_the_requester_only(self, bus):
        bus.add_module(server_spec(), machine="local")
        bus.add_module(client_spec(), instance="c1", machine="local",
                       attributes={"n": "1"})
        bus.add_module(client_spec(), instance="c2", machine="local",
                       attributes={"n": "2"})
        bus.add_binding(BindingSpec("c1", "srv", "server", "requests"))
        bus.add_binding(BindingSpec("c2", "srv", "server", "requests"))
        for name in ("server", "c1", "c2"):
            bus.start_module(name)

        def both_done():
            bus.check_health()
            return (
                bus.get_module("c1").mh.statics.get("got") == [10, 10, 10]
                and bus.get_module("c2").mh.statics.get("got") == [20, 20, 20]
            )

        wait_until(both_done)
        served = bus.get_module("server").mh.statics["served"]
        assert sorted({entry[0] for entry in served}) == ["c1", "c2"]

    def test_directed_send_to_unbound_peer_raises(self, bus):
        bus.add_module(server_spec(), machine="local")
        bus.add_module(client_spec(), instance="c1", machine="local",
                       attributes={"n": "1"})
        bus.add_binding(BindingSpec("c1", "srv", "server", "requests"))
        server = bus.get_module("server")
        with pytest.raises(BindingError, match="no such binding"):
            server.mh.write_to("requests", "ghost", "l", 1)

    def test_read_msg_reports_sender(self, bus):
        from repro.bus.message import Message

        bus.add_module(server_spec(), machine="local")
        module = bus.get_module("server")
        module.deliver(
            "requests",
            Message(values=[7], fmt="l", source_instance="someone"),
        )
        values, sender = module.mh.read_msg("requests", timeout=1)
        assert values == [7]
        assert sender == "someone"


class TestInstanceAttributes:
    def test_attributes_merge_over_spec(self, bus):
        module = bus.add_module(
            client_spec(), instance="c1", machine="local", attributes={"n": "9"}
        )
        assert module.mh.config["n"] == "9"
        assert module.spec.attributes["n"] == "9"
