"""Tests for the host registry (repro.bus.machine)."""

import pytest

from repro.bus.machine import Host, HostRegistry
from repro.errors import BusError
from repro.state.machine import MACHINES, Endianness


class TestHostRegistry:
    def test_add_with_profile_rebrands(self, sparc):
        registry = HostRegistry()
        host = registry.add("alpha", sparc)
        assert host.profile.name == "alpha"
        assert host.profile.endianness is sparc.endianness
        assert host.profile.int_bits == sparc.int_bits

    def test_add_default_profile(self):
        registry = HostRegistry()
        host = registry.add("plain")
        assert host.profile.endianness is Endianness.LITTLE

    def test_duplicate_rejected(self):
        registry = HostRegistry()
        registry.add("alpha")
        with pytest.raises(BusError, match="already registered"):
            registry.add("alpha")

    def test_get_unknown(self):
        with pytest.raises(BusError, match="unknown host"):
            HostRegistry().get("ghost")

    def test_ensure_autoregisters(self):
        registry = HostRegistry()
        host = registry.ensure("auto")
        assert registry.get("auto") is host
        assert registry.ensure("auto") is host

    def test_add_catalogued(self):
        registry = HostRegistry()
        host = registry.add_catalogued("bigbox", "sparc-like")
        assert host.profile.endianness is Endianness.BIG

    def test_add_catalogued_unknown(self):
        registry = HostRegistry()
        with pytest.raises(BusError, match="catalogue"):
            registry.add_catalogued("x", "cray-like")

    def test_names_and_contains(self):
        registry = HostRegistry()
        registry.add("b")
        registry.add("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry
        assert "z" not in registry
        assert len(registry) == 2

    def test_describe(self):
        host = Host("alpha", MACHINES["vax-like"])
        assert "alpha" in host.describe()
