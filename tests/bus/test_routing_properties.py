"""Property-style routing tests: random topologies, exact delivery.

For random producer/consumer topologies, every message is delivered to
exactly the bound consumers, in per-producer order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.spec import BindingSpec, ModuleSpec

from tests.conftest import wait_until

PRODUCER = """\
def main():
    first = int(mh.config['first'])
    count = int(mh.config['count'])
    i = 0
    while mh.running and i < count:
        mh.write('out', 'l', first + i)
        i = i + 1
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(0.05)
"""

CONSUMER = """\
def main():
    seen = []
    mh.statics['seen'] = seen
    while mh.running:
        seen.append(mh.read1('inp'))
"""


@given(
    st.integers(min_value=1, max_value=3),  # producers
    st.integers(min_value=1, max_value=3),  # consumers
    st.integers(min_value=1, max_value=8),  # messages per producer
    st.data(),
)
@settings(max_examples=12, deadline=None)
def test_random_topology_exact_delivery(producers, consumers, count, data):
    # Random bipartite wiring, at least one edge.
    edges = set()
    for p in range(producers):
        for c in range(consumers):
            if data.draw(st.booleans(), label=f"edge p{p}->c{c}"):
                edges.add((p, c))
    if not edges:
        edges.add((0, 0))

    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local")
    try:
        for p in range(producers):
            spec = ModuleSpec(
                name="producer",
                inline_source=PRODUCER,
                interfaces=[InterfaceDecl("out", Role.DEFINE, pattern="l")],
            )
            bus.add_module(
                spec,
                instance=f"p{p}",
                machine="local",
                attributes={"first": str(p * 1000), "count": str(count)},
            )
        for c in range(consumers):
            spec = ModuleSpec(
                name="consumer",
                inline_source=CONSUMER,
                interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
            )
            bus.add_module(spec, instance=f"c{c}", machine="local")
        for p, c in sorted(edges):
            bus.add_binding(BindingSpec(f"p{p}", "out", f"c{c}", "inp"))
        for c in range(consumers):
            bus.start_module(f"c{c}")
        for p in range(producers):
            bus.start_module(f"p{p}")

        expected_counts = {
            c: count * sum(1 for p_, c_ in edges if c_ == c)
            for c in range(consumers)
        }

        def all_delivered():
            bus.check_health()
            return all(
                len(bus.get_module(f"c{c}").mh.statics.get("seen", []))
                >= expected_counts[c]
                for c in range(consumers)
            )

        wait_until(all_delivered, timeout=20)

        for c in range(consumers):
            seen = bus.get_module(f"c{c}").mh.statics["seen"]
            assert len(seen) == expected_counts[c]  # exactly once, no dupes
            # Per-producer order preserved within the interleaving.
            for p in range(producers):
                if (p, c) in edges:
                    stream = [v for v in seen if v // 1000 == p]
                    assert stream == [p * 1000 + i for i in range(count)]
                else:
                    assert all(v // 1000 != p for v in seen)
    finally:
        bus.shutdown()
