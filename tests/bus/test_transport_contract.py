"""Transport conformance: every placement honours the same bus contract.

A module must behave identically whether it runs as a thread in the bus
process (``inproc``), in a pipe-fed worker process (``worker``), or in a
TCP machine daemon (``tcp``) — that location-independence is POLYLITH's
central claim, and this suite is what enforces it.  Each test runs once
per placement:

- per-binding delivery order is the send order;
- the Figure-5 queue transfers (``cq``/``rmq``) lose and duplicate
  nothing across a process boundary;
- a stop request interrupts a read blocked on an empty queue promptly;
- ``replace()`` round-trips state through the transport, and a rebind
  that keeps failing rolls back to the old module *in its process*.
"""

import threading
import time
from queue import SimpleQueue

import pytest

from repro.bus.batch import BatchPolicy, pack_batch, unpack_batch
from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.machine import Host
from repro.bus.message import Message
from repro.bus.module import ModuleState, prepared_source_for
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.bus.transport import Link, ModuleHost, TcpTransport
from repro.errors import ReconfigurationAborted, TransportError
from repro.reconfig.coordinator import ReconfigurationCoordinator
from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan, fault_plan
from repro.runtime.mh import SleepPolicy
from repro.state.machine import MACHINES
from repro.tools import stats

pytestmark = pytest.mark.multiproc

#: Worst-case wall clock for one test before the watchdog kills it
#: (covers process spawn + handshake on a loaded single-core runner).
WATCHDOG_S = 120.0

COLLECTOR_SOURCE = '''
def main():
    got = []
    mh.statics["got"] = []
    mh.init()
    while mh.running:
        n = mh.read1("inp")
        got.append(n)
        mh.statics["got"] = got
'''

COUNTER_SOURCE = '''
def main():
    total = 0
    mh.statics["total"] = 0
    mh.init()
    while mh.running:
        mh.reconfig_point("Q")
        n = mh.read1("inp")
        total = total + n
        mh.statics["total"] = total
'''

FEEDER_SOURCE = '''
def main():
    mh.sleep(0.01)
'''


@pytest.fixture(autouse=True)
def _watchdog(watchdog):
    """Hard per-test timeout: a wedged worker/daemon must not hang CI.

    Every test in this module spawns workers or daemons, so the shared
    ``watchdog`` fixture (tests/conftest.py) is applied unconditionally.
    """
    yield


@pytest.fixture(params=["inproc", "worker", "tcp"])
def placed_bus(request):
    """A bus plus the placement string that selects the transport under test."""
    if request.param == "worker":
        bus = SoftwareBus(sleep_scale=0.0, workers=2)
        placement = "worker:0"
    elif request.param == "tcp":
        bus = SoftwareBus(sleep_scale=0.0)
        bus.attach_transport(TcpTransport(machines=1, sleep_scale=0.0), owned=True)
        placement = "tcp:0"
    else:
        bus = SoftwareBus(sleep_scale=0.0)
        placement = None
    yield bus, placement
    bus.shutdown()


def _collector_spec(name="collector"):
    return ModuleSpec(
        name=name,
        inline_source=COLLECTOR_SOURCE,
        interfaces=[InterfaceDecl(name="inp", role=Role.USE, pattern="l")],
    )


def _counter_spec():
    return ModuleSpec(
        name="counter",
        inline_source=COUNTER_SOURCE,
        interfaces=[InterfaceDecl(name="inp", role=Role.USE, pattern="l")],
        reconfig_points=["Q"],
    )


def _feeder_spec():
    return ModuleSpec(
        name="feeder",
        inline_source=FEEDER_SOURCE,
        interfaces=[InterfaceDecl(name="out", role=Role.DEFINE, pattern="l")],
    )


def _feed(bus, *values):
    for value in values:
        bus.route(
            "feeder",
            "out",
            Message(
                values=[value],
                fmt="l",
                source_instance="feeder",
                source_interface="out",
            ).validated(),
        )


def _wait(predicate, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise AssertionError(f"condition not reached within {timeout}s")


class _Nudger:
    """Feeds zero-valued messages so a module blocked on ``read`` keeps
    looping back to its reconfiguration point during a replace."""

    def __init__(self, bus):
        self.bus = bus
        self.stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self.stop.is_set():
            try:
                _feed(self.bus, 0)
            except Exception:  # noqa: BLE001 - bus may be mid-topology-change
                pass
            time.sleep(0.05)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        self.thread.join()


class TestDeliveryContract:
    def test_per_binding_order_is_send_order(self, placed_bus):
        bus, placement = placed_bus
        bus.add_module(_collector_spec(), instance="collector", placement=placement)
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "collector", "inp"))
        bus.start_module("collector")

        sent = list(range(200))
        _feed(bus, *sent)
        got = _wait(
            lambda: (lambda g: g if len(g) == len(sent) else None)(
                bus.statics_of("collector").get("got", [])
            )
        )
        assert list(got) == sent

    def test_queue_transfer_no_loss_no_dup(self, placed_bus):
        bus, placement = placed_bus
        # Neither collector is started: messages pile up in the queues,
        # which is exactly the window the Figure-5 transfers operate in.
        bus.add_module(_collector_spec(), instance="collector", placement=placement)
        bus.add_module(
            _collector_spec("collector2"), instance="collector2", placement=placement
        )
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "collector", "inp"))

        sent = list(range(50))
        _feed(bus, *sent)
        _wait(
            lambda: bus.get_module("collector").queued_counts().get("inp") == len(sent)
        )

        copied = bus.copy_queue("collector", "inp", "collector2")
        assert copied == len(sent)
        assert bus.get_module("collector2").queued_counts().get("inp") == len(sent)

        removed = bus.remove_queue("collector", "inp")
        assert removed == len(sent)
        assert bus.get_module("collector").queued_counts().get("inp") == 0

        # The copy preserved both content and order: the second collector
        # processes every message exactly once.
        bus.start_module("collector2")
        got = _wait(
            lambda: (lambda g: g if len(g) == len(sent) else None)(
                bus.statics_of("collector2").get("got", [])
            )
        )
        assert list(got) == sent

    def test_stop_interrupts_blocked_read(self, placed_bus):
        bus, placement = placed_bus
        bus.add_module(_collector_spec(), instance="collector", placement=placement)
        bus.start_module("collector")
        module = bus.get_module("collector")
        _wait(lambda: module.state is ModuleState.RUNNING)

        started = time.monotonic()
        module.stop()
        elapsed = time.monotonic() - started
        assert module.state in (ModuleState.STOPPED, ModuleState.DIVULGED)
        assert elapsed < 2.0, f"stop took {elapsed:.2f}s against a blocked read"


class TestReplaceContract:
    def _launch_counter(self, bus, placement):
        bus.add_module(_counter_spec(), instance="counter", placement=placement)
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "counter", "inp"))
        bus.start_module("counter")
        _feed(bus, 1, 2, 3)
        _wait(lambda: bus.statics_of("counter").get("total") == 6)

    def test_replace_round_trips_state(self, placed_bus):
        bus, placement = placed_bus
        self._launch_counter(bus, placement)
        coordinator = ReconfigurationCoordinator(bus)
        with _Nudger(bus):
            coordinator.replace("counter", timeout=30)
        replaced = bus.get_module("counter")
        assert replaced.state is ModuleState.RUNNING
        if placement is not None:
            assert replaced.placement == placement or replaced.placement.startswith(
                placement.split(":")[0]
            )
        # The running total crossed the transport inside the state packet.
        _feed(bus, 10)
        _wait(lambda: bus.statics_of("counter").get("total") == 16)

    def test_failed_rebind_rolls_back_to_old_process(self, placed_bus):
        bus, placement = placed_bus
        self._launch_counter(bus, placement)
        coordinator = ReconfigurationCoordinator(bus)
        # Ten crashes exceed every retry budget: the transaction must
        # abort and revive the old module wherever it lives.
        plan = FaultPlan("rebind-hard").schedule(
            "coordinator.rebind", "crash", times=10
        )
        with _Nudger(bus):
            with fault_plan(plan):
                with pytest.raises(ReconfigurationAborted) as excinfo:
                    coordinator.replace("counter", timeout=30)
            assert excinfo.value.rolled_back
            assert not bus.has_module("counter.new")
            survivor = bus.get_module("counter")
            assert survivor.state is ModuleState.RUNNING

            # Still serving, still in its original placement...
            _feed(bus, 7)
            _wait(lambda: bus.statics_of("counter").get("total") == 13)

            # ...and a clean replace afterwards proves nothing leaked.
            coordinator.replace("counter", timeout=30)
        _feed(bus, 2)
        _wait(lambda: bus.statics_of("counter").get("total") == 15)


class TestTraceStitching:
    """A replace yields ONE merged span tree, whatever the transport.

    The remote halves of a replacement — ``mh.capture``/``mh.encode`` in
    the old process, ``mh.decode``/``mh.restore`` in the clone's, plus
    the host-local deliveries — record in *other* recorders and ship
    home over the link's ``telemetry_snapshot`` channel.  The contract:
    after ``replace()`` returns, the bus recorder holds one complete
    causal tree per ``rc-NNNN`` (single ``reconfig.replace`` root, zero
    orphan spans), remote spans carry their host name, and every edge is
    Lamport-consistent — child ``l0`` strictly after parent ``l0``,
    because wall clocks across processes are not comparable.
    """

    @pytest.fixture(autouse=True)
    def _recorder(self):
        self.rec = telemetry.enable(capacity=8192)
        yield
        telemetry.disable()

    def _launch_counter(self, bus, placement):
        bus.add_module(_counter_spec(), instance="counter", placement=placement)
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "counter", "inp"))
        bus.start_module("counter")
        _feed(bus, 1, 2, 3)
        _wait(lambda: bus.statics_of("counter").get("total") == 6)

    def _recon_spans(self, tmp_path, recon):
        path = tmp_path / "trace.jsonl"
        self.rec.export_jsonl(str(path))
        spans, _, _ = stats.split_records(stats.load_records(str(path)), recon=recon)
        return spans

    def _assert_single_tree(self, spans, recon, placement):
        assert spans, f"no spans recorded for {recon}"
        roots = [s for s in spans if s.get("parent") is None]
        assert [s["name"] for s in roots] == ["reconfig.replace"], roots
        sids = {s["sid"] for s in spans}
        orphans = [
            (s["name"], s.get("parent"), s.get("host"))
            for s in spans
            if s.get("parent") is not None and s["parent"] not in sids
        ]
        assert not orphans, f"orphan spans in {recon}: {orphans}"
        by_sid = {s["sid"]: s for s in spans}
        for span in spans:
            parent = span.get("parent")
            if parent is not None:
                assert span["l0"] > by_sid[parent]["l0"], (
                    f"Lamport violation: {span['name']} (l0={span['l0']}) "
                    f"under {by_sid[parent]['name']} (l0={by_sid[parent]['l0']})"
                )
        if placement is not None:
            remote = {s.get("host") for s in spans if s.get("host")}
            assert remote, "remote placement produced no host-tagged spans"
            remote_names = {s["name"] for s in spans if s.get("host")}
            assert "mh.capture" in remote_names or "mh.restore" in remote_names

    def test_commit_yields_one_lamport_ordered_tree(self, placed_bus, tmp_path):
        bus, placement = placed_bus
        self._launch_counter(bus, placement)
        coordinator = ReconfigurationCoordinator(bus)
        with _Nudger(bus):
            report = coordinator.replace("counter", timeout=30)
        spans = self._recon_spans(tmp_path, report.recon_id)
        self._assert_single_tree(spans, report.recon_id, placement)
        # The rendered tree is what operators see: one root, host
        # annotations on the remote hops.
        tree = stats.render_tree(spans)
        assert tree.startswith(f"reconfig.replace [{report.recon_id}]")
        if placement is not None:
            assert "@" in tree

    def test_rollback_still_flushes_remote_spans(self, placed_bus, tmp_path):
        bus, placement = placed_bus
        self._launch_counter(bus, placement)
        coordinator = ReconfigurationCoordinator(bus)
        plan = FaultPlan("rebind-hard").schedule(
            "coordinator.rebind", "crash", times=10
        )
        with _Nudger(bus):
            with fault_plan(plan):
                with pytest.raises(ReconfigurationAborted):
                    coordinator.replace("counter", timeout=30)
        # The abort path must pull the remote spans home too: the old
        # module's capture/encode happened before the rebind crashed.
        # Reconfiguration ids are globally monotonic, so learn this
        # run's id from the recorder rather than assuming rc-0001.
        all_spans = self._recon_spans(tmp_path, None)
        recons = sorted({s["recon"] for s in all_spans if s.get("recon")})
        assert len(recons) == 1, f"expected one replace, saw {recons}"
        spans = [s for s in all_spans if s.get("recon") == recons[0]]
        self._assert_single_tree(spans, recons[0], placement)


def _msg(value):
    return Message(
        values=[value],
        fmt="l",
        source_instance="feeder",
        source_interface="out",
    ).validated()


def _links_of(bus):
    links = []
    for transport in bus._transports.values():
        get = getattr(transport, "links", None)
        if get is not None:
            links.extend(get())
    return links


class _GateChannel:
    """Frame channel whose ``send`` blocks until the gate opens.

    Models a slow receiver: the link's flusher wedges inside ``send``
    while producers keep appending — exactly the window the pending-byte
    high-watermark must bound.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.sent = []
        self._rx = SimpleQueue()

    def send(self, frame):
        self.gate.wait(WATCHDOG_S)
        self.sent.append(frame)

    def recv(self):
        self._rx.get()
        raise TransportError("closed")

    def close(self):
        self._rx.put(None)


class _FailChannel:
    """Frame channel whose sends always fail (dead peer)."""

    def __init__(self):
        self._rx = SimpleQueue()

    def send(self, frame):
        raise TransportError("peer gone")

    def recv(self):
        self._rx.get()
        raise TransportError("closed")

    def close(self):
        self._rx.put(None)


class TestBatchedDelivery:
    """Coalesced delivery must be invisible except in frame counts.

    Trace stitching under batching needs no test of its own:
    ``TestTraceStitching`` above already runs with batching enabled by
    default on every transport.
    """

    def _shrink_batches(self, bus, max_entries=7):
        """Force many tiny batches so boundaries land mid-stream."""
        for link in _links_of(bus):
            coalescer = link._coalescer
            if coalescer is not None:
                coalescer.policy = BatchPolicy(
                    max_entries=max_entries,
                    max_bytes=coalescer.policy.max_bytes,
                    pending_hwm=coalescer.policy.pending_hwm,
                    linger_s=0.0,
                )

    def test_fifo_preserved_across_batch_boundaries(self, placed_bus):
        bus, placement = placed_bus
        bus.add_module(_collector_spec(), instance="collector", placement=placement)
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "collector", "inp"))
        self._shrink_batches(bus)
        bus.start_module("collector")

        sent = list(range(400))
        _feed(bus, *sent)
        got = _wait(
            lambda: (lambda g: g if len(g) == len(sent) else None)(
                bus.statics_of("collector").get("got", [])
            )
        )
        assert list(got) == sent

    def test_queue_transfer_interleaves_with_in_flight_batch(self, placed_bus):
        bus, placement = placed_bus
        # Collector not started: deliveries pile up, so a prepend issued
        # right behind a burst exercises the request barrier against an
        # in-flight batch — the transferred (older) messages must land
        # ahead of the burst, never inside or behind it.
        bus.add_module(_collector_spec(), instance="collector", placement=placement)
        bus.add_module(_feeder_spec(), instance="feeder")
        bus.add_binding(BindingSpec("feeder", "out", "collector", "inp"))
        self._shrink_batches(bus)

        first = list(range(100))
        _feed(bus, *first)
        older = [-3, -2, -1]
        bus.get_module("collector").queue("inp").prepend(
            [_msg(v) for v in older]
        )
        later = list(range(100, 120))
        _feed(bus, *later)

        bus.start_module("collector")
        expected = older + first + later
        got = _wait(
            lambda: (lambda g: g if len(g) == len(expected) else None)(
                bus.statics_of("collector").get("got", [])
            )
        )
        assert list(got) == expected

    def test_backpressure_blocks_then_drains(self):
        profile = MACHINES["modern-64"]
        channel = _GateChannel()
        policy = BatchPolicy(
            max_entries=8, max_bytes=1 << 20, pending_hwm=256, linger_s=0.0
        )
        link = Link("gate", profile, channel, batch=policy)
        try:
            wires = [_msg(i).to_wire(profile) for i in range(40)]
            done = threading.Event()

            def produce():
                for wire in wires:
                    link.send_deliver("m", "inp", wire)
                done.set()

            threading.Thread(target=produce, daemon=True).start()
            # The flusher is wedged in send(); pending bytes hit the
            # high-watermark and the producer must block, not buffer.
            assert not done.wait(0.5), "producer ran past the high-watermark"
            assert link._coalescer.pending_entries() < len(wires)

            channel.gate.set()  # receiver drains
            assert done.wait(10), "producer never unblocked after drain"

            def shipped():
                got = []
                for frame in list(channel.sent):
                    assert frame[2] == "deliver_batch"
                    batch_wires, entries = unpack_batch(frame[3])
                    got.extend(batch_wires[w] for _a, _b, _c, w in entries)
                return got if len(got) == len(wires) else None

            got = _wait(shipped, timeout=10)
            assert got == wires, "drain reordered or dropped messages"
        finally:
            link.close()

    def test_send_event_failures_are_counted(self):
        rec = telemetry.enable(capacity=1024)
        try:
            link = Link(
                "failing", MACHINES["modern-64"], _FailChannel(), batch=None
            )
            for _ in range(3):
                link.send_event(["deliver", "m", "inp", b"x"])
            assert rec.counter("link.events_dropped", key="failing") == 3
            flares = [
                e for e in rec.events() if e.get("kind") == "link.send_failed"
            ]
            assert len(flares) == 1, "one flare per failure streak, not per frame"
            assert flares[0]["attrs"]["host"] == "failing"
            link.close()
        finally:
            telemetry.disable()

    def _host_core(self):
        profile = MACHINES["modern-64"]
        host = Host(name="unit-host", profile=profile)
        core = ModuleHost(
            "unit-host", host, SleepPolicy(scale=0.0), lambda command: None
        )
        return core, profile

    def _add(self, core, instance):
        spec = _collector_spec()
        core.handle(
            "add",
            [instance, spec.to_abstract(prepared_source_for(spec)), "original", None],
        )

    def test_deliver_batch_dispatch_and_shared_wires(self):
        core, profile = self._host_core()
        try:
            self._add(core, "a")
            self._add(core, "b")
            wire = _msg(7).to_wire(profile)
            blob = pack_batch(
                [(wire, [("a", "inp", ""), ("b", "inp", ""), ("ghost", "inp", "")])]
            )
            core.handle("deliver_batch", [blob])
            for name in ("a", "b"):
                queued = core.modules[name].queue("inp").snapshot()
                assert [m.values for m in queued] == [[7]]
                assert name in core._last_delivery
            assert "ghost" not in core._last_delivery  # missing module skipped
        finally:
            core.stop_all()

    def test_last_delivery_tracks_module_lifecycle(self):
        core, profile = self._host_core()
        try:
            self._add(core, "collector")
            core.handle("deliver", ["collector", "inp", _msg(1).to_wire(profile)])
            assert "collector" in core._last_delivery
            core.handle("rename", ["collector", "collector2"])
            assert "collector" not in core._last_delivery
            assert "collector2" in core._last_delivery
            core.handle("remove", ["collector2"])
            assert core._last_delivery == {}, "removal must drop the stamp"
        finally:
            core.stop_all()
