"""Tests for interface declarations and specs (repro.bus.interfaces/spec)."""

import pytest

from repro.bus.interfaces import Direction, InterfaceDecl, Role
from repro.bus.spec import ApplicationSpec, BindingSpec, InstanceSpec, ModuleSpec
from repro.errors import SpecError


def decl(role, name="x", pattern="i", returns=""):
    return InterfaceDecl(name=name, role=role, pattern=pattern, returns=returns)


class TestRolesAndDirections:
    def test_define_is_outgoing(self):
        assert Role.DEFINE.direction is Direction.OUTGOING
        assert Direction.OUTGOING.can_send
        assert not Direction.OUTGOING.can_receive

    def test_use_is_incoming(self):
        assert Role.USE.direction is Direction.INCOMING
        assert Direction.INCOMING.can_receive
        assert not Direction.INCOMING.can_send

    def test_client_server_bidirectional(self):
        for role in (Role.CLIENT, Role.SERVER):
            assert role.direction is Direction.BIDIRECTIONAL
        assert Direction.BIDIRECTIONAL.can_send
        assert Direction.BIDIRECTIONAL.can_receive


class TestSendReceiveFormats:
    def test_define_sends_pattern(self):
        assert decl(Role.DEFINE).send_fmt() == "i"

    def test_use_receives_pattern(self):
        assert decl(Role.USE).receive_fmt() == "i"

    def test_define_cannot_receive(self):
        with pytest.raises(SpecError):
            decl(Role.DEFINE).receive_fmt()

    def test_use_cannot_send(self):
        with pytest.raises(SpecError):
            decl(Role.USE).send_fmt()

    def test_client_sends_pattern_receives_returns(self):
        client = decl(Role.CLIENT, pattern="i", returns="f")
        assert client.send_fmt() == "i"
        assert client.receive_fmt() == "f"

    def test_server_mirror(self):
        server = decl(Role.SERVER, pattern="i", returns="f")
        assert server.receive_fmt() == "i"
        assert server.send_fmt() == "f"


class TestCompatibility:
    def test_define_use_compatible(self):
        assert decl(Role.DEFINE).compatible_with(decl(Role.USE))

    def test_define_define_incompatible(self):
        assert not decl(Role.DEFINE).compatible_with(decl(Role.DEFINE))

    def test_use_use_incompatible(self):
        assert not decl(Role.USE).compatible_with(decl(Role.USE))

    def test_pattern_mismatch(self):
        assert not decl(Role.DEFINE, pattern="i").compatible_with(
            decl(Role.USE, pattern="s")
        )

    def test_empty_pattern_is_wildcard(self):
        assert decl(Role.DEFINE, pattern="").compatible_with(
            decl(Role.USE, pattern="s")
        )

    def test_client_server_both_legs_checked(self):
        client = decl(Role.CLIENT, pattern="i", returns="f")
        assert client.compatible_with(decl(Role.SERVER, pattern="i", returns="f"))
        assert not client.compatible_with(decl(Role.SERVER, pattern="s", returns="f"))
        assert not client.compatible_with(decl(Role.SERVER, pattern="i", returns="s"))

    def test_client_client_incompatible(self):
        assert not decl(Role.CLIENT).compatible_with(decl(Role.CLIENT))

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            InterfaceDecl(name="", role=Role.USE)


class TestModuleSpec:
    def make(self):
        return ModuleSpec(
            name="m",
            interfaces=[decl(Role.USE, "inp"), decl(Role.DEFINE, "out")],
            reconfig_points=["R"],
            attributes={"machine": "alpha"},
        )

    def test_interface_lookup(self):
        spec = self.make()
        assert spec.interface("inp").role is Role.USE
        with pytest.raises(SpecError, match="no interface"):
            spec.interface("ghost")

    def test_interface_names(self):
        assert self.make().interface_names() == ["inp", "out"]

    def test_with_attributes_copies(self):
        spec = self.make()
        clone = spec.with_attributes(machine="beta", status="clone")
        assert clone.attributes["machine"] == "beta"
        assert clone.attributes["status"] == "clone"
        assert spec.attributes["machine"] == "alpha"  # original untouched
        assert clone.interfaces == spec.interfaces
        assert clone.interfaces is not spec.interfaces

    def test_describe_contains_everything(self):
        text = self.make().describe()
        assert "module m" in text
        assert "use interface inp" in text
        assert "reconfiguration point" in text


class TestApplicationSpec:
    def test_instance_lookup(self):
        app = ApplicationSpec(name="a", instances=[InstanceSpec("x", "m")])
        assert app.instance("x").module == "m"
        with pytest.raises(SpecError):
            app.instance("ghost")

    def test_bindings_of(self):
        binding = BindingSpec("a", "out", "b", "inp")
        app = ApplicationSpec(name="app", bindings=[binding])
        assert app.bindings_of("a") == [binding]
        assert app.bindings_of("b") == [binding]
        assert app.bindings_of("c") == []

    def test_binding_endpoints(self):
        binding = BindingSpec("a", "out", "b", "inp")
        assert binding.endpoints() == (("a", "out"), ("b", "inp"))
        assert binding.involves("a") and binding.involves("b")
        assert not binding.involves("c")

    def test_describe(self):
        binding = BindingSpec("a", "out", "b", "inp")
        assert binding.describe() == 'bind "a out" "b inp"'
