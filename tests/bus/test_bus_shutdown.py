"""Shutdown and teardown semantics of the software bus."""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.spec import ModuleSpec
from repro.errors import FormatError, UnknownModuleError
from repro.state.format import format_to_pattern

SPINNER = """\
def main():
    while mh.running:
        mh.sleep(0.01)
"""


class TestShutdown:
    def test_shutdown_stops_everything(self):
        bus = SoftwareBus(sleep_scale=0.01)
        bus.add_host("local")
        bus.add_module(ModuleSpec(name="a", inline_source=SPINNER),
                       machine="local", start=True)
        bus.add_module(ModuleSpec(name="b", inline_source=SPINNER),
                       machine="local", start=True)
        bus.shutdown()
        assert bus.instances() == []
        with pytest.raises(UnknownModuleError):
            bus.get_module("a")

    def test_shutdown_idempotent(self):
        bus = SoftwareBus()
        bus.shutdown()
        bus.shutdown()

    def test_trace_survives_shutdown(self):
        bus = SoftwareBus(sleep_scale=0.01)
        bus.add_host("local")
        bus.add_module(ModuleSpec(name="a", inline_source=SPINNER),
                       machine="local", start=True)
        bus.shutdown()
        assert any("add module a" in line for line in bus.trace)


class TestFormatToPattern:
    def test_roundtrip(self):
        assert format_to_pattern("is") == "integer string"
        assert format_to_pattern("") == ""

    def test_compound_rejected(self):
        with pytest.raises(FormatError, match="not expressible"):
            format_to_pattern("[i]")
