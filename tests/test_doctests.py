"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.runtime.refs
import repro.state.format

MODULES = [
    repro.state.format,
    repro.runtime.refs,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
