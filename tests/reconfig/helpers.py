"""Shared monitor-app fixture machinery for reconfiguration tests."""

from __future__ import annotations

from repro.apps.monitor import build_monitor_configuration
from repro.bus.bus import SoftwareBus
from repro.state.machine import MACHINES

from tests.conftest import wait_until


def launch_monitor(
    requests: int = 30,
    group_size: int = 4,
    interval: float = 0.02,
    discard: bool = False,
    hosts=(("alpha", "sparc-like"), ("beta", "vax-like")),
) -> SoftwareBus:
    """Start the paced monitor app; caller must bus.shutdown()."""
    config = build_monitor_configuration(
        requests=requests,
        group_size=group_size,
        interval=interval,
        discard=discard,
    )
    config.modules["sensor"].attributes["interval"] = str(interval / 20)
    bus = SoftwareBus(sleep_scale=1.0)
    for name, architecture in hosts:
        bus.add_host(name, MACHINES[architecture])
    bus.launch(config, default_host=hosts[0][0])
    return bus


def displayed(bus: SoftwareBus):
    return bus.get_module("display").mh.statics.get("displayed", [])


def wait_displayed(bus: SoftwareBus, count: int, timeout: float = 30.0):
    def check():
        bus.check_health()
        return len(displayed(bus)) >= count

    wait_until(check, timeout=timeout)
    return displayed(bus)


def expected_averages(requests: int, group_size: int = 4, start: int = 1):
    """Averages of consecutive disjoint windows (no-discard compute)."""
    values = []
    cursor = start
    for _ in range(requests):
        window = range(cursor, cursor + group_size)
        values.append(sum(window) / group_size)
        cursor += group_size
    return values
