"""Shared monitor-app fixture machinery for reconfiguration tests."""

from __future__ import annotations

import threading

from repro.apps.kvstore import CLIENT_SOURCE, KVSTORE_MIL, SHARD_SOURCE
from repro.apps.monitor import build_monitor_configuration
from repro.bus.bus import SoftwareBus
from repro.bus.message import Message
from repro.bus.mil import parse_mil
from repro.state.machine import MACHINES

from tests.conftest import wait_until


def launch_monitor(
    requests: int = 30,
    group_size: int = 4,
    interval: float = 0.02,
    discard: bool = False,
    hosts=(("alpha", "sparc-like"), ("beta", "vax-like")),
) -> SoftwareBus:
    """Start the paced monitor app; caller must bus.shutdown()."""
    config = build_monitor_configuration(
        requests=requests,
        group_size=group_size,
        interval=interval,
        discard=discard,
    )
    config.modules["sensor"].attributes["interval"] = str(interval / 20)
    bus = SoftwareBus(sleep_scale=1.0)
    for name, architecture in hosts:
        bus.add_host(name, MACHINES[architecture])
    bus.launch(config, default_host=hosts[0][0])
    return bus


def displayed(bus: SoftwareBus):
    return bus.get_module("display").mh.statics.get("displayed", [])


def wait_displayed(bus: SoftwareBus, count: int, timeout: float = 30.0):
    def check():
        bus.check_health()
        return len(displayed(bus)) >= count

    wait_until(check, timeout=timeout)
    return displayed(bus)


def launch_manual_monitor(
    requests: int = 2,
    group_size: int = 2,
    hosts=(("alpha", "sparc-like"), ("beta", "vax-like")),
) -> SoftwareBus:
    """The monitor app with an externally-driven sensor.

    The sensor's ``limit=0`` means it emits nothing on its own; tests
    inject temperatures with :func:`feed_sensor`, so reaching the
    reconfiguration point is an explicit *event* the test controls —
    never a wall-clock outcome.  Sleeps are scaled near zero (but not
    to zero: idle loops must park, not spin).
    """
    config = build_monitor_configuration(
        requests=requests,
        group_size=group_size,
        sensor_limit=0,
        interval=1.0,
        discard=False,
    )
    bus = SoftwareBus(sleep_scale=0.005)
    for name, architecture in hosts:
        bus.add_host(name, MACHINES[architecture])
    bus.launch(config, default_host=hosts[0][0])
    return bus


def feed_sensor(bus: SoftwareBus, *values: int) -> None:
    """Inject sensor temperatures as if the sensor had produced them."""
    for value in values:
        bus.route(
            "sensor",
            "out",
            Message(
                values=[value],
                fmt="i",
                source_instance="sensor",
                source_interface="out",
            ).validated(),
        )


def wait_signalled(bus: SoftwareBus, instance: str, baseline: int = 0) -> None:
    """Block until ``instance`` has received a reconfiguration signal."""
    mh = bus.get_module(instance).mh
    wait_until(lambda: mh.stats["signals"] > baseline, timeout=15)


def launch_manual_kv(
    hosts=(("alpha", "sparc-like"), ("beta", "vax-like")),
) -> SoftwareBus:
    """The kvstore app with an externally-driven client.

    The client's script is empty (it sends nothing by itself); tests
    inject requests with :func:`kv_send` and read the shard's replies
    straight off the client's queue with :func:`kv_reply` — so every
    round-trip through the shard is an explicit event.
    """
    config = parse_mil(KVSTORE_MIL)
    config.modules["shard"].inline_source = SHARD_SOURCE
    config.modules["client"].inline_source = CLIENT_SOURCE
    config.modules["client"].attributes.update(script="", interval="1.0")
    bus = SoftwareBus(sleep_scale=0.005)
    for name, architecture in hosts:
        bus.add_host(name, MACHINES[architecture])
    bus.launch(config, default_host=hosts[0][0])
    return bus


def kv_send(bus: SoftwareBus, op: str, key: str, value: str = "") -> None:
    bus.route(
        "client",
        "requests",
        Message(
            values=[op, key, value],
            fmt="sss",
            source_instance="client",
            source_interface="requests",
        ).validated(),
    )


def kv_reply(bus: SoftwareBus, timeout: float = 10.0):
    message = bus.get_module("client").queue("replies").get(timeout, None)
    return (message.values[0][0], message.values[0][1])


def kv_round_trip(bus: SoftwareBus, op: str, key: str, value: str = ""):
    kv_send(bus, op, key, value)
    return kv_reply(bus)


def expected_averages(requests: int, group_size: int = 4, start: int = 1):
    """Averages of consecutive disjoint windows (no-discard compute)."""
    values = []
    cursor = start
    for _ in range(requests):
        window = range(cursor, cursor + group_size)
        values.append(sum(window) / group_size)
        cursor += group_size
    return values
