"""The flight recorder through a real ``replace()``.

A successful Figure-1 monitor move must render as one span tree rooted
at ``reconfig.replace`` covering every coordinator stage plus the MH
capture/encode/decode/restore work done on module threads; a persistent
injected fault must leave the rollback, the retries, and the abort's
identity (reconfiguration id + attempt count) in the log.  Fan-out bus
counters and the disabled-mode structural guarantee are checked on the
bench-style bus.
"""

from __future__ import annotations

import threading

import pytest

from repro.bus.message import Message
from repro.bus.queues import MessageQueue
from repro.errors import InjectedFault, ReconfigurationAborted
from repro.reconfig.scripts import move_module
from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan, fault_plan

from benchmarks.bench_a4_bus_throughput import build as build_fanout_bus
from tests.reconfig.helpers import (
    feed_sensor,
    kv_reply,
    kv_send,
    launch_manual_kv,
    launch_manual_monitor,
    wait_signalled,
)

#: Every stage the coordinator runs on the commit path, in order.
COMMIT_STAGES = (
    "clone_build",
    "signal",
    "wait_point",
    "rebind",
    "start_clone",
    "health_check",
    "commit",
)

#: Module-thread work that must attach to the replace tree via the
#: ambient root (it has no local parent on its own thread).
MH_SPANS = ("mh.capture", "mh.encode", "mh.decode", "mh.restore")


@pytest.fixture
def recorder():
    rec = telemetry.enable(capacity=8192)
    yield rec
    telemetry.disable()


def move_in_background(bus, instance, feed, **kwargs):
    """Run ``move_module`` on a thread, driving the app with ``feed``."""
    outcome = {}

    def run():
        try:
            outcome["report"] = move_module(bus, instance, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - asserted by caller
            outcome["error"] = exc

    worker = threading.Thread(target=run, name="telemetry-move")
    worker.start()
    try:
        feed()
    finally:
        worker.join(timeout=30)
    assert not worker.is_alive(), "replace thread wedged"
    return outcome


class TestSuccessfulReplaceTree:
    def test_monitor_move_renders_one_complete_span_tree(self, recorder):
        bus = launch_manual_monitor(requests=2, group_size=2)
        try:

            def feed():
                wait_signalled(bus, "compute")
                feed_sensor(bus, 1)

            outcome = move_in_background(
                bus, "compute", feed, machine="beta", timeout=15
            )
        finally:
            bus.shutdown()

        report = outcome["report"]
        assert report.recon_id.startswith("rc-")
        assert set(report.stage_attempts) == set(COMMIT_STAGES)
        assert all(n == 1 for n in report.stage_attempts.values())

        (root,) = recorder.spans(name="reconfig.replace")
        assert root["recon"] == report.recon_id
        assert root["parent"] is None
        assert root["attrs"]["instance"] == "compute"
        assert root["attrs"]["new_machine"] == "beta"

        # every coordinator stage is a direct child of the replace root
        for stage in COMMIT_STAGES:
            (span,) = recorder.spans(recon=report.recon_id, name=f"stage.{stage}")
            assert span["parent"] == root["sid"], stage
        assert not recorder.spans(recon=report.recon_id, name="stage.rollback")

        # module-thread MH work attaches to the same tree via the
        # ambient root, from threads other than the coordinator's
        mh_spans = {}
        for name in MH_SPANS:
            (span,) = recorder.spans(recon=report.recon_id, name=name)
            assert span["thread"] != root["thread"], name
            mh_spans[name] = span
        assert mh_spans["mh.capture"]["parent"] == root["sid"]
        assert mh_spans["mh.decode"]["parent"] == root["sid"]
        assert mh_spans["mh.restore"]["parent"] == root["sid"]
        # encode happens while the capture span is still open on the old
        # module's thread, so it nests under capture, not the root
        assert mh_spans["mh.encode"]["parent"] == mh_spans["mh.capture"]["sid"]

        # the clone build traces its module load under the stage span
        (load,) = recorder.spans(recon=report.recon_id, name="module.load")
        (clone_build,) = recorder.spans(
            recon=report.recon_id, name="stage.clone_build"
        )
        assert load["parent"] == clone_build["sid"]

        # the state packet is measured at both ends
        (encode,) = recorder.spans(recon=report.recon_id, name="mh.encode")
        assert encode["attrs"]["bytes"] == report.packet_bytes
        assert recorder.counter("mh.packets_encoded", key="compute") == 1
        assert recorder.counter("mh.packets_decoded", key="compute") == 1
        assert recorder.counter("reconfig.commits") == 1
        assert recorder.counter("reconfig.rollbacks") == 0
        assert recorder.counter_total("bus.routed") > 0
        assert recorder.counter("bus.routing_rebuild") >= 2  # launch + rebind

    def test_exported_tree_is_renderable_by_stats(self, recorder, tmp_path):
        """The dump round-trips through the stats CLI's renderer."""
        from repro.tools import stats

        bus = launch_manual_monitor(requests=2, group_size=2)
        try:

            def feed():
                wait_signalled(bus, "compute")
                feed_sensor(bus, 1)

            outcome = move_in_background(
                bus, "compute", feed, machine="beta", timeout=15
            )
        finally:
            bus.shutdown()
        recon = outcome["report"].recon_id

        path = tmp_path / "trace.jsonl"
        recorder.export_jsonl(str(path))
        records = stats.load_records(str(path))
        spans, _events, counters = stats.split_records(records, recon=recon)
        tree = stats.render_tree(spans)
        lines = tree.splitlines()
        assert lines[0].startswith(f"reconfig.replace [{recon}]")
        for stage in COMMIT_STAGES:
            assert f"  stage.{stage}" in tree
        assert "mh.encode" in tree and "mh.restore" in tree
        assert "repro_reconfig_commits_total 1" in stats.prometheus_text(counters)


class TestAbortedReplaceTree:
    def test_persistent_rebind_fault_logs_retries_and_rollback(self, recorder):
        bus = launch_manual_kv()
        plan = FaultPlan("telemetry-rebind").schedule(
            "coordinator.rebind", "crash", times=99
        )
        try:
            with fault_plan(plan):

                def feed():
                    wait_signalled(bus, "shard")
                    kv_send(bus, "put", "k1", "v1")
                    assert kv_reply(bus) == ("k1", "v1")

                outcome = move_in_background(
                    bus, "shard", feed, machine="beta", timeout=10
                )
        finally:
            bus.shutdown()

        error = outcome["error"]
        assert isinstance(error, ReconfigurationAborted)
        recon = error.recon_id
        assert recon.startswith("rc-")
        assert error.report.recon_id == recon
        assert error.report.stage_attempts["rebind"] == 3
        # satellite contract: the abort's args carry (message, id, attempts)
        assert error.args == (str(error), recon, 3)
        assert f"[{recon}, attempt 3]" in str(error)

        # three rebind attempts, each marked failed, under one root
        (root,) = recorder.spans(name="reconfig.replace")
        assert root["recon"] == recon
        assert root["attrs"]["error"] == "ReconfigurationAborted"
        rebinds = recorder.spans(recon=recon, name="stage.rebind")
        assert [s["attrs"]["attempt"] for s in rebinds] == [1, 2, 3]
        assert all(s["attrs"]["error"] == "InjectedFault" for s in rebinds)
        assert all(s["parent"] == root["sid"] for s in rebinds)
        (rollback,) = recorder.spans(recon=recon, name="stage.rollback")
        assert rollback["parent"] == root["sid"]
        assert not recorder.spans(recon=recon, name="stage.commit")

        # one count per transient failure (mirrors report.retries)
        assert recorder.counter("reconfig.retries", key="rebind") == 3
        assert recorder.counter("reconfig.rollbacks") == 1
        assert recorder.counter("reconfig.aborts") == 1
        assert recorder.counter("faults.fired", key="coordinator.rebind") == 3

        fired = [
            e
            for e in recorder.events(recon=recon)
            if e["type"] == "event" and e["kind"] == "fault.fired"
        ]
        assert len(fired) == 3
        aborts = [
            e
            for e in recorder.events(recon=recon)
            if e["type"] == "event" and e["kind"] == "reconfig.abort"
        ]
        assert len(aborts) == 1
        assert aborts[0]["attrs"]["stage"] == "rebind"

    def test_abort_carries_recon_id_with_telemetry_disabled(self):
        """Ids are minted independently of the recorder: aborts stay
        attributable even when nothing is recording."""
        assert telemetry.recorder is None
        bus = launch_manual_kv()
        plan = FaultPlan("no-recorder-rebind").schedule(
            "coordinator.rebind", "crash", times=99
        )
        try:
            with fault_plan(plan):

                def feed():
                    wait_signalled(bus, "shard")
                    kv_send(bus, "put", "k1", "v1")
                    assert kv_reply(bus) == ("k1", "v1")

                outcome = move_in_background(
                    bus, "shard", feed, machine="beta", timeout=10
                )
        finally:
            bus.shutdown()
        error = outcome["error"]
        assert isinstance(error, ReconfigurationAborted)
        assert isinstance(error.cause, InjectedFault)
        assert error.recon_id.startswith("rc-")
        assert error.attempts == 3


class TestSampledSpans:
    """Satellite: 1-in-N sampling must never touch replace trees.

    Production buses run the recorder with ``sample=N`` so per-message
    spans cost almost nothing; the sampler is allowed to drop *only*
    top-level spans opened outside any reconfiguration — anything with a
    recon id, a parent, an open ancestor on its thread, or an ambient
    root in flight is recorded unconditionally.
    """

    @pytest.fixture
    def sampled(self):
        rec = telemetry.enable(capacity=8192, sample=8)
        yield rec
        telemetry.disable()

    def test_replace_tree_is_complete_at_sample_8(self, sampled, tmp_path):
        from repro.tools import stats

        bus = launch_manual_monitor(requests=2, group_size=2)
        try:

            def feed():
                wait_signalled(bus, "compute")
                feed_sensor(bus, 1)

            outcome = move_in_background(
                bus, "compute", feed, machine="beta", timeout=15
            )
        finally:
            bus.shutdown()

        report = outcome["report"]
        (root,) = sampled.spans(name="reconfig.replace")
        assert root["recon"] == report.recon_id
        # Every coordinator stage and every module-thread MH span made
        # it into the log despite the 1-in-8 sampler.
        for stage in COMMIT_STAGES:
            (span,) = sampled.spans(recon=report.recon_id, name=f"stage.{stage}")
            assert span["parent"] == root["sid"], stage
        for name in MH_SPANS:
            assert sampled.spans(recon=report.recon_id, name=name), name

        # The chaos-artifact export renders the same tree shape as the
        # unsampled mode — replay tooling does not care about sampling.
        path = tmp_path / "trace.jsonl"
        sampled.export_jsonl(str(path))
        records = stats.load_records(str(path))
        spans, _events, _counters = stats.split_records(
            records, recon=report.recon_id
        )
        tree = stats.render_tree(spans)
        assert tree.splitlines()[0].startswith(
            f"reconfig.replace [{report.recon_id}]"
        )
        for stage in COMMIT_STAGES:
            assert f"  stage.{stage}" in tree

    def test_rollback_tree_is_complete_at_sample_8(self, sampled):
        bus = launch_manual_kv()
        plan = FaultPlan("sampled-rebind").schedule(
            "coordinator.rebind", "crash", times=99
        )
        try:
            with fault_plan(plan):

                def feed():
                    wait_signalled(bus, "shard")
                    kv_send(bus, "put", "k1", "v1")
                    assert kv_reply(bus) == ("k1", "v1")

                outcome = move_in_background(
                    bus, "shard", feed, machine="beta", timeout=10
                )
        finally:
            bus.shutdown()

        error = outcome["error"]
        assert isinstance(error, ReconfigurationAborted)
        recon = error.recon_id
        (root,) = sampled.spans(name="reconfig.replace")
        assert root["recon"] == recon
        rebinds = sampled.spans(recon=recon, name="stage.rebind")
        assert [s["attrs"]["attempt"] for s in rebinds] == [1, 2, 3]
        (rollback,) = sampled.spans(recon=recon, name="stage.rollback")
        assert rollback["parent"] == root["sid"]
        assert sampled.counter("reconfig.rollbacks") == 1

    def test_noise_spans_are_sampled_and_counted(self, sampled):
        """Top-level app spans outside any reconfiguration are the only
        thing the sampler drops — 1-in-8 recorded, the rest tallied in
        ``telemetry.sampled_out`` so the drop rate stays observable."""
        for _ in range(64):
            with telemetry.span("app.msg"):
                pass
        assert len(sampled.spans(name="app.msg")) == 64 // 8
        assert sampled.counter("telemetry.sampled_out", key="app.msg") == 64 - 64 // 8

    def test_recon_tagged_spans_are_never_sampled(self, sampled):
        """Anything carrying a reconfiguration id is recorded in full,
        no matter how many there are — sampling only ever applies to
        anonymous top-level traffic."""
        for _ in range(32):
            with telemetry.span("app.recon_op", recon="rc-test"):
                pass
        assert len(sampled.spans(name="app.recon_op")) == 32
        assert sampled.counter("telemetry.sampled_out", key="app.recon_op") == 0

    def test_sampling_decides_whole_trees(self, sampled):
        """Children ride their parent's fate: under a recorded parent
        every child is recorded, under a dropped parent every child is
        dropped (without consuming a sampling tick), so no recorded
        child ever dangles from a parent it cannot name."""
        for _ in range(32):
            with telemetry.span("app.outer"):
                with telemetry.span("app.inner"):
                    pass
        outers = sampled.spans(name="app.outer")
        inners = sampled.spans(name="app.inner")
        # only outers tick the sampler: exactly 1-in-8 trees survive
        assert len(outers) == 32 // 8
        assert len(inners) == 32 // 8
        for outer in outers:
            children = [s for s in inners if s["parent"] == outer["sid"]]
            assert len(children) == 1
        # dropped inners were dropped *with* their tree, not sampled
        assert sampled.counter("telemetry.sampled_out", key="app.outer") == 28
        assert sampled.counter("telemetry.sampled_out", key="app.inner") == 0


class TestBusCounters:
    def test_fanout_counts_one_route_per_send_one_delivery_per_receiver(
        self, recorder
    ):
        bus, names = build_fanout_bus(receivers=8)
        try:
            message = Message(
                values=[7], fmt="l", source_instance="sender", source_interface="out"
            )
            for _ in range(10):
                bus.route("sender", "out", message)
            endpoint = "sender.out"
            # bus.routed is derived lazily from queue cells — the count
            # is exact per route() call regardless of fan-out width.
            assert recorder.counter("bus.routed", key=endpoint) == 10
            # bus.delivered is keyed by *receiving queue* now (the
            # queues count their own puts in-lock): one key per
            # receiver, 10 each, 80 total.
            delivered = {
                k: v
                for (n, k), v in recorder.counters().items()
                if n == "bus.delivered"
            }
            assert delivered == {f"{name}.inp": 10 for name in names}
            assert recorder.counter_total("bus.delivered") == 80
            assert recorder.counter_total("bus.dropped") == 0
            # queue high-water marks were sampled on the enabled path
            hwm = {k: v for (n, k), v in recorder.gauges().items() if n == "queue.hwm"}
            assert len(hwm) == len(names)
            assert all(value >= 9 for value in hwm.values())
        finally:
            bus.shutdown()

    def test_disabled_routing_table_holds_raw_queue_puts(self):
        """With no recorder, rebuilt route entries deliver through the
        raw bound ``MessageQueue.put`` — zero telemetry instructions."""
        assert telemetry.recorder is None
        bus, _ = build_fanout_bus(receivers=2)
        try:
            table = bus._rebuild_routing()
            entry = table["sender"]["out"]
            assert entry.local_puts
            for put in entry.local_puts:
                assert getattr(put, "__func__", None) is MessageQueue.put
        finally:
            bus.shutdown()


class TestFaultPlanSeeds:
    """Satellite: every dumped FaultPlan artifact records a seed."""

    def test_explicit_schedule_inherits_ambient_seed(self, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_CHAOS_SEED", "1993")
        plan = FaultPlan("explicit").schedule("coordinator.rebind", "crash")
        assert plan.seed == 1993
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert json.loads(path.read_text())["seed"] == 1993

    def test_explicit_seed_wins_over_ambient(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "1993")
        assert FaultPlan("pinned", seed=7).seed == 7
        assert FaultPlan.seeded(5).seed == 5

    def test_no_ambient_seed_stays_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_SEED", raising=False)
        assert FaultPlan("bare").seed is None
        monkeypatch.setenv("REPRO_CHAOS_SEED", "not-a-number")
        assert FaultPlan("bad-env").seed is None
