"""Tests for reconfiguration scripts on a live application (Figure 5)."""

import pytest

from repro.bus.module import ModuleState
from repro.errors import ReconfigError, ReconfigTimeoutError
from repro.reconfig.coordinator import ReconfigurationCoordinator
from repro.reconfig.primitives import (
    bind_cap,
    edit_bind,
    obj_cap,
    rebind,
    struct_ifdest,
    struct_ifsources,
    struct_objnames,
)
from repro.reconfig.scripts import (
    figure5_replacement_script,
    move_module,
    replace_module,
    replicate_module,
)

from tests.reconfig.helpers import (
    displayed,
    expected_averages,
    launch_monitor,
    wait_displayed,
)


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestPrimitivesOnLiveApp:
    def test_obj_cap_reflects_current_config(self, monitor):
        old = obj_cap(monitor, "compute")
        assert old.machine == "alpha"
        assert old.spec.attributes["machine"] == "alpha"
        assert old.spec.is_reconfigurable

    def test_struct_queries(self, monitor):
        old = obj_cap(monitor, "compute")
        assert set(struct_objnames(monitor, old)) == {"display", "sensor"}
        assert struct_ifdest(monitor, old, "display") == [("display", "temper")]
        assert struct_ifsources(monitor, old, "sensor") == [("sensor", "out")]

    def test_edit_and_rebind(self, monitor):
        batch = bind_cap()
        edit_bind(batch, "del", ("sensor", "out"), ("compute", "sensor"))
        edit_bind(batch, "add", ("sensor", "out"), ("compute", "sensor"))
        rebind(monitor, batch)
        assert monitor.sources_of("compute", "sensor") == [("sensor", "out")]


class TestMoveModule:
    def test_move_mid_stream_preserves_every_value(self, monitor):
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        assert report.kind == "move"
        assert report.new_machine == "beta"
        assert report.packet_bytes > 0
        assert report.stack_depth >= 1
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)
        assert monitor.get_module("compute").host.name == "beta"

    def test_move_back_and_forth(self, monitor):
        wait_displayed(monitor, 2)
        move_module(monitor, "compute", machine="beta", timeout=15)
        wait_displayed(monitor, 6)
        move_module(monitor, "compute", machine="alpha", timeout=15)
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)
        assert monitor.get_module("compute").host.name == "alpha"

    def test_report_timings_ordered(self, monitor):
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        assert report.t_signal <= report.t_divulged <= report.t_rebound
        assert report.t_rebound <= report.t_started <= report.t_done
        assert report.delay_to_point >= 0
        assert report.total_time >= report.delay_to_point


class TestReplaceModule:
    def test_replace_in_place(self, monitor):
        wait_displayed(monitor, 2)
        report = replace_module(monitor, "compute", timeout=15)
        assert report.new_machine == report.old_machine == "alpha"
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)

    def test_non_reconfigurable_module_rejected(self, monitor):
        with pytest.raises(ReconfigError, match="no reconfiguration points"):
            replace_module(monitor, "sensor", timeout=2)

    def test_timeout_rolls_back(self):
        # A compute that never receives requests never reaches R.
        bus = launch_monitor(requests=0)
        try:
            wait_displayed(bus, 0)
            before = bus.snapshot_configuration().describe()
            with pytest.raises(ReconfigTimeoutError):
                replace_module(bus, "compute", machine="beta", timeout=0.3)
            after = bus.snapshot_configuration().describe()
            assert before == after
            assert not bus.get_module("compute").mh.reconfig
            assert bus.get_module("compute").state is ModuleState.RUNNING
            assert not bus.has_module("compute.new")
        finally:
            bus.shutdown()


class TestFigure5Script:
    def test_line_by_line_script(self, monitor):
        wait_displayed(monitor, 2)
        new_name = figure5_replacement_script(monitor, "compute", machine="beta")
        assert new_name == "compute.new"
        assert monitor.get_module(new_name).host.name == "beta"
        assert not monitor.has_module("compute")

        def check():
            monitor.check_health()
            return len(displayed(monitor)) >= 20

        from tests.conftest import wait_until

        wait_until(check, timeout=30)
        assert displayed(monitor)[:20] == expected_averages(20)


class TestReplicate:
    def test_replicate_produces_two_running_clones(self, monitor):
        wait_displayed(monitor, 2)
        report, replica = replicate_module(
            monitor, "compute", "compute2", machine="beta", timeout=15
        )
        assert report.kind == "replicate"
        assert monitor.has_module("compute") and monitor.has_module("compute2")
        assert monitor.get_module("compute2").host.name == "beta"
        # The replica carries the same bindings shape.
        assert monitor.sources_of("compute2", "sensor") == [("sensor", "out")]
        assert monitor.destinations_of("compute2", "display") == [
            ("display", "temper")
        ]
        from tests.conftest import wait_until

        wait_until(
            lambda: monitor.get_module("compute2").state is ModuleState.RUNNING
        )


class TestCoordinatorHistory:
    def test_history_accumulates(self, monitor):
        wait_displayed(monitor, 2)
        coordinator = ReconfigurationCoordinator(monitor)
        coordinator.replace("compute", machine="beta", timeout=15)
        wait_displayed(monitor, 6)
        coordinator.replace("compute", machine="alpha", timeout=15)
        assert len(coordinator.history) == 2
        assert [r.new_machine for r in coordinator.history] == ["beta", "alpha"]

    def test_queued_messages_copied(self, monitor):
        wait_displayed(monitor, 2)
        report = ReconfigurationCoordinator(monitor).replace(
            "compute", machine="beta", timeout=15
        )
        # The sensor floods faster than compute consumes: some sensor
        # messages were pending and must have been carried over.
        assert report.queued_copied.get("sensor", 0) >= 0
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)
