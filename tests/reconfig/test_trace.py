"""The bus reconfiguration trace: an auditable record of every change."""

import pytest

from repro.reconfig.scripts import move_module

from tests.reconfig.helpers import launch_monitor, wait_displayed


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestTrace:
    def test_launch_recorded(self, monitor):
        assert any("add module compute" in line for line in monitor.trace)
        assert any('bind "display temper"' in line for line in monitor.trace)
        assert any("start module sensor" in line for line in monitor.trace)

    def test_move_leaves_full_audit_trail(self, monitor):
        wait_displayed(monitor, 2)
        move_module(monitor, "compute", machine="beta", timeout=15)
        trace = "\n".join(monitor.trace)
        assert "signal reconfig compute" in trace
        assert "objstate_move compute -> compute.new" in trace
        assert "cq compute.sensor -> compute.new" in trace
        assert "rmq compute.sensor" in trace
        assert "start module compute.new" in trace
        assert "remove module compute" in trace
        assert "rename compute.new -> compute" in trace
        assert "move of 'compute': alpha -> beta" in trace

    def test_trace_is_ordered(self, monitor):
        wait_displayed(monitor, 2)
        move_module(monitor, "compute", machine="beta", timeout=15)
        trace = monitor.trace
        signal_at = next(i for i, l in enumerate(trace) if "signal reconfig" in l)
        start_at = next(
            i for i, l in enumerate(trace) if "start module compute.new" in l
        )
        remove_at = next(
            i for i, l in enumerate(trace) if "remove module compute" in l
        )
        assert signal_at < start_at < remove_at
