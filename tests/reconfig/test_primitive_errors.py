"""Error paths of the reconfiguration primitives."""

import pytest

from repro.errors import ReconfigError
from repro.reconfig.bindcmds import BindBatch
from repro.reconfig.primitives import bind_cap, chg_obj, edit_bind


class TestEditBindErrors:
    def test_unknown_op(self):
        batch = bind_cap()
        with pytest.raises(ReconfigError, match="unknown bind edit"):
            edit_bind(batch, "frobnicate", ("a", "x"), ("b", "y"))

    def test_ops_dispatch(self):
        batch = bind_cap()
        edit_bind(batch, "add", ("a", "x"), ("b", "y"))
        edit_bind(batch, "del", ("a", "x"), ("b", "y"))
        edit_bind(batch, "cq", ("a", "x"), ("b", "x"))
        edit_bind(batch, "rmq", ("a", "x"))
        assert [c.op for c in batch.commands] == ["add", "del", "cq", "rmq"]


class TestChgObjErrors:
    def test_unknown_op(self):
        with pytest.raises(ReconfigError, match="unknown chg_obj"):
            chg_obj(None, None, "replace")


class TestBatchInvariants:
    def test_empty_batch_applies_once(self):
        batch = BindBatch()
        batch.apply(None)
        assert batch.applied
        with pytest.raises(ReconfigError):
            batch.apply(None)
