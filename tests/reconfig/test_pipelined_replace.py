"""The pipelined replacement path: work overlapped with the wait window.

The coordinator's critical path used to be strictly sequential: build
clone, prepare rebind batch, signal, wait for the reconfiguration point,
move state.  The pipelined path signals *first* (for a same-version
clone, whose spec the original already proved loadable) and spends the
wait-for-point window building the clone and the batch; the divulged
packet is pushed into the clone from the old module's own thread via
the divulge callback (bus.objstate_stream).
"""

import pytest

from repro.bus.module import ModuleState, _prepare_module_cached
from repro.errors import BusError, ReconfigTimeoutError, TransformError
from repro.reconfig.scripts import move_module, upgrade_module
from repro.state.frames import peek_state_header

from tests.reconfig.helpers import (
    expected_averages,
    launch_monitor,
    wait_displayed,
)


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


def trace_index(bus, needle):
    return next(i for i, line in enumerate(bus.trace) if needle in line)


class TestPipelinedMove:
    def test_signal_precedes_clone_creation(self, monitor):
        # The pipelining itself, as seen in the audit trace: for a move
        # (same spec) the signal goes out before the clone is built.
        wait_displayed(monitor, 2)
        move_module(monitor, "compute", machine="beta", timeout=15)
        signal_at = trace_index(monitor, "signal reconfig compute")
        clone_at = trace_index(monitor, "add module compute.new")
        moved_at = trace_index(monitor, "objstate_move compute -> compute.new")
        assert signal_at < clone_at < moved_at

    def test_moved_app_still_correct(self, monitor):
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        assert report.new_machine == "beta"
        assert report.stack_depth > 0
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)

    def test_depth_comes_from_peekable_header(self, monitor):
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        packet = monitor.get_module("compute").mh.incoming_packet
        assert report.stack_depth == peek_state_header(packet).depth

    def test_clone_reuses_transform_result(self, monitor):
        # The wait window covers clone construction because the AST
        # pipeline for an already-proven spec is a cache hit.
        wait_displayed(monitor, 2)
        info_before = _prepare_module_cached.cache_info()
        move_module(monitor, "compute", machine="beta", timeout=15)
        info_after = _prepare_module_cached.cache_info()
        assert info_after.hits > info_before.hits
        assert info_after.misses == info_before.misses

    def test_upgrade_still_loads_clone_before_signal(self, monitor):
        # A *new* version can be rejected by the transformer, so its
        # clone must be built (and validated) before any signal goes out.
        wait_displayed(monitor, 2)
        source = monitor.get_module("compute").spec.inline_source
        upgrade_module(monitor, "compute", source, timeout=15)
        clone_at = trace_index(monitor, "add module compute.new")
        signal_at = trace_index(monitor, "signal reconfig compute")
        assert clone_at < signal_at

    def test_rejected_upgrade_never_signals(self, monitor):
        wait_displayed(monitor, 1)
        with pytest.raises(TransformError):
            upgrade_module(monitor, "compute", "def main():\n    pass\n", timeout=15)
        assert not any("signal reconfig" in line for line in monitor.trace)
        assert not monitor.get_module("compute").mh.reconfig


class TestTimeoutRollback:
    def test_stream_timeout_withdraws_signal_and_callback(self):
        bus = launch_monitor(requests=0)  # compute never reaches R
        try:
            wait_displayed(bus, 0)
            with pytest.raises(ReconfigTimeoutError):
                move_module(bus, "compute", machine="beta", timeout=0.3)
            mh = bus.get_module("compute").mh
            assert not mh.reconfig
            assert mh._divulge_callback is None
            assert not bus.has_module("compute.new")
            assert bus.get_module("compute").state is ModuleState.RUNNING
        finally:
            bus.shutdown()


class TestStateMoveStream:
    def test_wait_without_target_raises(self, monitor):
        wait_displayed(monitor, 1)
        stream = monitor.objstate_stream("compute")
        try:
            with pytest.raises(BusError, match="has no target"):
                stream.wait(timeout=5)
        finally:
            stream.cancel()

    def test_attach_after_divulge_still_installs_packet(self, monitor):
        # The old module may divulge before the clone exists; the packet
        # must land in the clone at attach time instead.
        wait_displayed(monitor, 2)
        old = monitor.get_module("compute")
        stream = monitor.objstate_stream("compute")
        assert stream._delivered.wait(15)  # divulged, no target yet
        spec = old.spec.with_attributes(machine="beta", status="clone")
        monitor.add_module(
            spec, instance="compute.late", machine="beta", status="clone"
        )
        stream.attach_target("compute.late")
        packet = stream.wait(timeout=5)
        assert monitor.get_module("compute.late").mh.incoming_packet == packet
        assert peek_state_header(packet).module == "compute"

    def test_attach_to_started_module_rejected(self, monitor):
        wait_displayed(monitor, 1)
        stream = monitor.objstate_stream("compute")
        try:
            with pytest.raises(BusError, match="already started"):
                stream.attach_target("display")
        finally:
            stream.cancel()
