"""The pipelined replacement path: work overlapped with the wait window.

The coordinator's critical path used to be strictly sequential: build
clone, prepare rebind batch, signal, wait for the reconfiguration point,
move state.  The pipelined path signals *first* (for a same-version
clone, whose spec the original already proved loadable) and spends the
wait-for-point window building the clone and the batch; the divulged
packet is pushed into the clone from the old module's own thread via
the divulge callback (bus.objstate_stream).

Synchronization here is event-based, not paced: the sensor emits nothing
on its own (manual monitor harness), so the old module reaches its
reconfiguration point exactly when a test feeds a reading — the wait
window opens and closes on explicit events, never on sleep tuning.
"""

import threading

import pytest

from repro.bus.module import ModuleState, _prepare_module_cached
from repro.errors import (
    BusError,
    ReconfigTimeoutError,
    ReconfigurationTimeout,
    TransformError,
)
from repro.reconfig.scripts import move_module, upgrade_module
from repro.state.frames import peek_state_header

from tests.conftest import wait_until
from tests.reconfig.helpers import (
    displayed,
    expected_averages,
    feed_sensor,
    launch_manual_monitor,
    wait_signalled,
)


@pytest.fixture
def monitor():
    bus = launch_manual_monitor(requests=30, group_size=4)
    yield bus
    bus.shutdown()


def trace_index(bus, needle):
    return next(i for i, line in enumerate(bus.trace) if needle in line)


def wait_displays(bus, count, timeout=15):
    def check():
        bus.check_health()
        return len(displayed(bus)) >= count

    wait_until(check, timeout=timeout)
    return displayed(bus)


def move_in_background(bus, instance="compute", machine="beta", timeout=15):
    """Run the replace on its own thread; join() then inspect outcome."""
    outcome = {}

    def run():
        try:
            outcome["report"] = move_module(bus, instance, machine=machine, timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - surfaced by caller
            outcome["error"] = exc

    worker = threading.Thread(target=run, name="pipelined-move")
    worker.start()
    return worker, outcome


def complete_move(bus, next_value):
    """Drive one move to commit: wait for the signal, feed the single
    reading that lets the old module reach its point, join."""
    worker, outcome = move_in_background(bus)
    wait_signalled(bus, "compute")
    feed_sensor(bus, next_value)
    worker.join(timeout=30)
    assert not worker.is_alive()
    assert "error" not in outcome, f"move failed: {outcome.get('error')!r}"
    return outcome["report"]


class TestPipelinedMove:
    def test_signal_precedes_clone_creation(self, monitor):
        # The pipelining itself, as seen in the audit trace: for a move
        # (same spec) the signal goes out before the clone is built.
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        complete_move(monitor, 9)
        signal_at = trace_index(monitor, "signal reconfig compute")
        clone_at = trace_index(monitor, "add module compute.new")
        moved_at = trace_index(monitor, "objstate_move compute -> compute.new")
        assert signal_at < clone_at < moved_at

    def test_clone_is_built_while_wait_window_is_open(self, monitor):
        # Deterministic pipelining check, no trace archaeology: with no
        # reading fed, the old module cannot reach its point — yet the
        # clone appears.  The window and the build genuinely overlap.
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        old = monitor.get_module("compute")
        worker, outcome = move_in_background(monitor)
        wait_signalled(monitor, "compute")
        wait_until(lambda: monitor.has_module("compute.new"), timeout=15)
        assert not old.mh.divulged.is_set()  # still waiting on the point
        feed_sensor(monitor, 9)  # now let it reach the point
        worker.join(timeout=30)
        assert "error" not in outcome, f"move failed: {outcome.get('error')!r}"

    def test_moved_app_still_correct(self, monitor):
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        report = complete_move(monitor, 9)
        assert report.new_machine == "beta"
        assert report.stack_depth > 0
        feed_sensor(monitor, *range(10, 121))
        values = wait_displays(monitor, 30)
        assert values == expected_averages(30)

    def test_depth_comes_from_peekable_header(self, monitor):
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        report = complete_move(monitor, 9)
        packet = monitor.get_module("compute").mh.incoming_packet
        assert report.stack_depth == peek_state_header(packet).depth

    def test_clone_reuses_transform_result(self, monitor):
        # The wait window covers clone construction because the AST
        # pipeline for an already-proven spec is a cache hit.
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        info_before = _prepare_module_cached.cache_info()
        complete_move(monitor, 9)
        info_after = _prepare_module_cached.cache_info()
        assert info_after.hits > info_before.hits
        assert info_after.misses == info_before.misses

    def test_upgrade_still_loads_clone_before_signal(self, monitor):
        # A *new* version can be rejected by the transformer, so its
        # clone must be built (and validated) before any signal goes out.
        feed_sensor(monitor, *range(1, 9))
        wait_displays(monitor, 2)
        source = monitor.get_module("compute").spec.inline_source
        outcome = {}

        def run():
            try:
                outcome["report"] = upgrade_module(monitor, "compute", source, timeout=15)
            except BaseException as exc:  # noqa: BLE001
                outcome["error"] = exc

        worker = threading.Thread(target=run)
        worker.start()
        wait_signalled(monitor, "compute")
        feed_sensor(monitor, 9)
        worker.join(timeout=30)
        assert "error" not in outcome, f"upgrade failed: {outcome.get('error')!r}"
        clone_at = trace_index(monitor, "add module compute.new")
        signal_at = trace_index(monitor, "signal reconfig compute")
        assert clone_at < signal_at

    def test_rejected_upgrade_never_signals(self, monitor):
        with pytest.raises(TransformError):
            upgrade_module(monitor, "compute", "def main():\n    pass\n", timeout=15)
        assert not any("signal reconfig" in line for line in monitor.trace)
        assert not monitor.get_module("compute").mh.reconfig


class TestTimeoutRollback:
    def test_stream_timeout_withdraws_signal_and_callback(self, monitor):
        # With no reading fed, the old module structurally *cannot*
        # reach its point — the deadline is the only way out, and it
        # must leave the application exactly as it found it.
        with pytest.raises(ReconfigurationTimeout) as excinfo:
            move_module(monitor, "compute", machine="beta", timeout=0.3)
        assert isinstance(excinfo.value, ReconfigTimeoutError)  # back-compat
        assert excinfo.value.stage == "wait_point"
        assert excinfo.value.rolled_back
        mh = monitor.get_module("compute").mh
        assert not mh.reconfig
        assert mh._divulge_callback is None
        assert not monitor.has_module("compute.new")
        assert monitor.get_module("compute").state is ModuleState.RUNNING
        # The proof the rollback worked: the application still computes.
        feed_sensor(monitor, *range(1, 5))
        assert wait_displays(monitor, 1) == [2.5]


class TestStateMoveStream:
    def test_wait_without_target_raises(self, monitor):
        stream = monitor.objstate_stream("compute")
        try:
            with pytest.raises(BusError, match="has no target"):
                stream.wait(timeout=5)
        finally:
            stream.cancel()

    def test_attach_after_divulge_still_installs_packet(self, monitor):
        # The old module may divulge before the clone exists; the packet
        # must land in the clone at attach time instead.
        old = monitor.get_module("compute")
        stream = monitor.objstate_stream("compute")
        feed_sensor(monitor, 1)  # one reading -> point reached -> divulge
        assert stream._delivered.wait(15)  # divulged, no target yet
        spec = old.spec.with_attributes(machine="beta", status="clone")
        monitor.add_module(
            spec, instance="compute.late", machine="beta", status="clone"
        )
        stream.attach_target("compute.late")
        packet = stream.wait(timeout=5)
        assert monitor.get_module("compute.late").mh.incoming_packet == packet
        assert peek_state_header(packet).module == "compute"

    def test_attach_to_started_module_rejected(self, monitor):
        stream = monitor.objstate_stream("compute")
        try:
            with pytest.raises(BusError, match="already started"):
                stream.attach_target("display")
        finally:
            stream.cancel()
