"""Tests for batched bind commands (repro.reconfig.bindcmds)."""

import pytest

from repro.errors import ReconfigError
from repro.reconfig.bindcmds import BindBatch, BindCommand


class TestBindCommand:
    def test_valid_ops(self):
        BindCommand("add", ("a", "x"), ("b", "y"))
        BindCommand("del", ("a", "x"), ("b", "y"))
        BindCommand("cq", ("a", "x"), ("b", "x"))
        BindCommand("rmq", ("a", "x"))

    def test_unknown_op(self):
        with pytest.raises(ReconfigError, match="unknown bind command"):
            BindCommand("frob", ("a", "x"), ("b", "y"))

    def test_two_endpoints_required(self):
        with pytest.raises(ReconfigError, match="two endpoints"):
            BindCommand("add", ("a", "x"))

    def test_describe(self):
        assert BindCommand("rmq", ("a", "x")).describe() == "rmq a.x"
        assert "a.x <-> b.y" in BindCommand("add", ("a", "x"), ("b", "y")).describe()


class TestBindBatch:
    def test_fluent_building(self):
        batch = (
            BindBatch()
            .delete(("old", "out"), ("peer", "inp"))
            .add(("new", "out"), ("peer", "inp"))
            .copy_queue(("old", "inp"), ("new", "inp"))
            .remove_queue(("old", "inp"))
        )
        assert [c.op for c in batch.commands] == ["del", "add", "cq", "rmq"]

    def test_cq_interface_names_must_match(self):
        with pytest.raises(ReconfigError, match="same-named"):
            BindBatch().copy_queue(("old", "a"), ("new", "b"))

    def test_describe_lists_commands(self):
        batch = BindBatch().add(("a", "x"), ("b", "y")).remove_queue(("a", "x"))
        text = batch.describe()
        assert "add a.x" in text and "rmq a.x" in text

    def test_double_apply_rejected(self, monkeypatch):
        batch = BindBatch()
        batch.apply(bus=None)  # empty batch: no bus calls made
        with pytest.raises(ReconfigError, match="already applied"):
            batch.apply(bus=None)
