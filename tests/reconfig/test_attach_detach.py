"""Tests for application growth/shrinkage (attach_module / detach_module)."""

import pytest

from repro.bus.spec import BindingSpec
from repro.reconfig.scripts import attach_module, detach_module

from tests.conftest import wait_until
from tests.reconfig.helpers import launch_monitor, wait_displayed


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestAttach:
    def test_attach_second_display(self, monitor):
        wait_displayed(monitor, 2)
        spec = monitor.module_specs["display"].with_attributes(
            requests="5", group_size="4", interval="0.01"
        )
        attach_module(
            monitor,
            spec,
            instance="display2",
            machine="beta",
            bindings=[BindingSpec("display2", "temper", "compute", "display")],
        )
        assert monitor.has_module("display2")

        def display2_done():
            monitor.check_health()
            return len(
                monitor.get_module("display2").mh.statics.get("displayed", [])
            ) >= 5

        wait_until(display2_done, timeout=30)

    def test_attach_records_topology(self, monitor):
        spec = monitor.module_specs["sensor"].with_attributes(interval="0.01")
        attach_module(monitor, spec, instance="sensor2", machine="beta",
                      bindings=[BindingSpec("sensor2", "out", "compute", "sensor")])
        app = monitor.snapshot_configuration()
        assert "sensor2" in app.instance_names()
        assert any(b.involves("sensor2") for b in app.bindings)


class TestDetach:
    def test_detach_removes_module_and_bindings(self, monitor):
        wait_displayed(monitor, 2)
        removed = detach_module(monitor, "sensor")
        assert removed == 1
        assert not monitor.has_module("sensor")
        app = monitor.snapshot_configuration()
        assert not any(b.involves("sensor") for b in app.bindings)

    def test_detach_then_reattach(self, monitor):
        wait_displayed(monitor, 1)
        spec = monitor.get_module("sensor").spec
        detach_module(monitor, "sensor")
        attach_module(
            monitor,
            spec.with_attributes(start="1000", interval="0.001"),
            instance="sensor",
            machine="beta",
            bindings=[BindingSpec("sensor", "out", "compute", "sensor")],
        )
        assert monitor.get_module("sensor").host.name == "beta"
