"""Chaos suite: every injection site, every fault mode, one transaction.

The matrix drives the kvstore app through a shard move (alpha -> beta)
while a :class:`FaultPlan` arms exactly one site, and checks the
transactional contract from the outside:

- a transient fault at a retryable stage is retried to completion;
- a persistent fault aborts with :class:`ReconfigurationAborted` naming
  the stage, and the rollback leaves the bus topology *byte-identical*
  to the pre-replace snapshot;
- after every abort the old module still serves traffic, with the state
  it had when the fault hit (the in-flight request was served exactly
  once, never lost, never duplicated);
- TCP frame faults are absorbed by the daemon link's bounded retry.

Traffic is event-driven (the manual kvstore harness): the shard only
reaches its reconfiguration point when a test feeds it a request, so no
assertion here depends on wall-clock pacing.  A failing test dumps its
plan's schedule + firing log under ``chaos-artifacts/`` — the artifact
CI uploads, sufficient to replay the failure (see docs/fault-model.md).
"""

import json
import os
import socket
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.bus.module import ModuleState
from repro.bus.tcp import _DaemonLink
from repro.errors import (
    InjectedFault,
    ReconfigTimeoutError,
    ReconfigurationAborted,
    ReconfigurationTimeout,
)
from repro.reconfig.scripts import move_module
from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan, RetryPolicy, fault_plan
from repro.state.machine import MACHINES

from tests.reconfig.helpers import (
    kv_reply,
    kv_round_trip,
    kv_send,
    launch_manual_kv,
    wait_signalled,
)

pytestmark = pytest.mark.chaos

#: Fixed seed so a red CI run is replayable; override to explore.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1993"))
ARTIFACTS = Path(__file__).resolve().parents[2] / "chaos-artifacts"

#: Sites whose stage retries transient failures -> the stage they abort at.
RETRYABLE = {
    "coordinator.clone_build": "clone_build",
    "module.load": "clone_build",
    "coordinator.rebind": "rebind",
    "coordinator.start_clone": "start_clone",
}
#: Sites on the old module's divulge path: a crash fast-aborts the wait,
#: a drop silently loses the divulge and the wait deadline fires.
DIVULGE_SIDE = ("bus.stream_divulge", "mh.capture", "mh.encode")
#: Sites on the clone's restore path: any fault kills the clone, which
#: the pre-commit health check converts into an abort.
CLONE_SIDE = ("mh.decode", "mh.restore")
IN_PROCESS_SITES = tuple(RETRYABLE) + DIVULGE_SIDE + CLONE_SIDE


@pytest.fixture(autouse=True)
def flight_recorder():
    """Record every chaos transaction so a red run ships its event log.

    Installed before the bus launches (the ``kv`` fixture runs later),
    so per-message bus counters are compiled into the routing table too.
    """
    recorder = telemetry.enable(capacity=8192)
    yield recorder
    telemetry.disable()


def _dump_merged_traces(events_path: Path, trace_path: Path) -> None:
    """Extract the merged per-``rc-NNNN`` trace from an event-log dump.

    The replace under test flushes remote telemetry home in its
    ``finally``, so by the time a failure surfaces the event log already
    holds every hop's spans.  This pulls out just the recon-tagged
    records, Lamport-ordered within each transaction, so the CI artifact
    carries a ready-to-read causal tree (`stats.py --tree` accepts it
    directly) without wading through the full event ring.
    """
    by_recon: dict = {}
    with events_path.open() as fh:
        for line in fh:
            record = json.loads(line)
            recon = record.get("recon")
            if recon:
                by_recon.setdefault(recon, []).append(record)
    if not by_recon:
        return
    with trace_path.open("w") as fh:
        for recon in sorted(by_recon):
            records = by_recon[recon]
            records.sort(key=lambda r: r.get("l0") or r.get("lamport") or 0)
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")


@contextmanager
def artifact_on_failure(plan: FaultPlan, name: str):
    """Dump the plan's schedule + firing log (and the telemetry event
    log plus the merged per-transaction trace, when a recorder is
    installed) if the block fails."""
    try:
        yield
    except BaseException:
        ARTIFACTS.mkdir(parents=True, exist_ok=True)
        plan.dump(str(ARTIFACTS / f"{name}.json"))
        recorder = telemetry.recorder
        if recorder is not None:
            events_path = ARTIFACTS / f"{name}.events.jsonl"
            recorder.export_jsonl(str(events_path))
            _dump_merged_traces(events_path, ARTIFACTS / f"{name}.trace.jsonl")
        raise


@pytest.fixture
def kv():
    bus = launch_manual_kv()
    yield bus
    bus.shutdown()


def replace_under_plan(kv, plan, timeout=10.0):
    """Move the shard to beta under ``plan``, feeding one request.

    The request goes in *after* the signal, so the shard serves it (its
    point precedes the read) and then captures — the canonical
    in-flight-traffic replace.  Returns ``{"report": ...}`` on commit or
    ``{"error": ...}`` on abort; the k1 reply is asserted served exactly
    once either way.
    """
    outcome = {}

    def run():
        try:
            outcome["report"] = move_module(kv, "shard", machine="beta", timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - asserted by caller
            outcome["error"] = exc

    with fault_plan(plan):
        worker = threading.Thread(target=run, name="replace-under-test")
        worker.start()
        try:
            wait_signalled(kv, "shard")
            kv_send(kv, "put", "k1", "v1")
            reply = kv_reply(kv)
        finally:
            worker.join(timeout=30)
    assert not worker.is_alive(), "replace thread wedged"
    assert reply == ("k1", "v1")
    return outcome


def assert_committed(kv, outcome):
    """The replace went through: shard on beta, state moved with it."""
    assert "error" not in outcome, f"unexpected abort: {outcome.get('error')!r}"
    report = outcome["report"]
    assert not report.aborted
    assert "commit" in report.completed
    shard = kv.get_module("shard")
    assert shard.host.name == "beta"
    assert not kv.has_module("shard.new")
    assert kv_round_trip(kv, "get", "k1") == ("k1", "v1")
    assert len(kv.get_module("client").queue("replies")) == 0
    return report


def assert_rolled_back(kv, before, outcome, stage):
    """The replace aborted: old module back in charge, topology intact."""
    assert "report" not in outcome, "replace committed despite persistent fault"
    error = outcome["error"]
    assert isinstance(error, ReconfigurationAborted)
    assert error.stage == stage
    assert error.rolled_back
    assert error.report is not None and error.report.aborted
    assert error.report.stage == stage
    # Byte-identical topology: same instances, placements, and bindings
    # in the same order as before the replace was attempted.
    assert kv.snapshot_configuration().describe() == before
    assert not kv.has_module("shard.new")
    shard = kv.get_module("shard")
    assert shard.state is ModuleState.RUNNING
    assert shard.host.name == "alpha"
    # The old module serves post-abort traffic with the pre-abort state:
    # the in-flight put survived, and no reply was duplicated.
    assert kv_round_trip(kv, "get", "k1") == ("k1", "v1")
    assert kv_round_trip(kv, "put", "k2", "v2") == ("k2", "v2")
    assert len(kv.get_module("client").queue("replies")) == 0
    return error


# ---------------------------------------------------------------------------
# The in-process matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("site", IN_PROCESS_SITES)
def test_delay_at_any_site_still_commits(kv, site):
    """A slow site is not a failed site: delays never change the outcome."""
    plan = FaultPlan(f"delay-{site}").schedule(site, "delay", delay=0.02)
    with artifact_on_failure(plan, f"delay-{site}"):
        outcome = replace_under_plan(kv, plan)
        assert plan.fired(site) == 1, "the armed site never fired"
        assert_committed(kv, outcome)


@pytest.mark.parametrize("mode", ["crash", "drop"])
@pytest.mark.parametrize("site", sorted(RETRYABLE))
def test_transient_fault_is_retried_to_completion(kv, site, mode):
    """One fault at a retryable stage costs a retry, not the transaction."""
    plan = FaultPlan(f"once-{site}-{mode}").schedule(site, mode)
    with artifact_on_failure(plan, f"once-{site}-{mode}"):
        outcome = replace_under_plan(kv, plan)
        assert plan.fired(site) == 1
        report = assert_committed(kv, outcome)
        assert report.retries >= 1


@pytest.mark.parametrize("mode", ["crash", "drop"])
@pytest.mark.parametrize("site", sorted(RETRYABLE))
def test_persistent_fault_aborts_and_rolls_back(kv, site, mode):
    """A fault outliving the retry budget aborts at its own stage."""
    before = kv.snapshot_configuration().describe()
    plan = FaultPlan(f"persistent-{site}-{mode}").schedule(site, mode, times=99)
    with artifact_on_failure(plan, f"persistent-{site}-{mode}"):
        outcome = replace_under_plan(kv, plan)
        error = assert_rolled_back(kv, before, outcome, RETRYABLE[site])
        assert isinstance(error.cause, InjectedFault)
        assert error.cause.site == site
        assert error.report.retries >= 2  # the budget was actually spent
        assert plan.fired(site) >= 3


@pytest.mark.parametrize("site", DIVULGE_SIDE)
def test_divulge_crash_fast_aborts_without_waiting(kv, site):
    """A crash on the divulge path aborts immediately, not at the deadline.

    The failure is routed to the stream's failure callback, which wakes
    the coordinator's wait early — so the abort is a plain
    ReconfigurationAborted, never a timeout.
    """
    before = kv.snapshot_configuration().describe()
    plan = FaultPlan(f"divulge-crash-{site}").schedule(site, "crash")
    with artifact_on_failure(plan, f"divulge-crash-{site}"):
        outcome = replace_under_plan(kv, plan)
        error = assert_rolled_back(kv, before, outcome, "wait_point")
        assert not isinstance(error, ReconfigurationTimeout)
        assert isinstance(error.cause, InjectedFault)
        assert error.cause.site == site


@pytest.mark.parametrize("site", DIVULGE_SIDE)
def test_divulge_drop_times_out_and_rolls_back(kv, site):
    """A silently lost divulge is caught by the wait-for-point deadline.

    The packet (or its hand-off) vanishes without a trace, so the only
    defence is the explicit timeout — which must abort cleanly and
    revive the old module from the packet it still holds.
    """
    before = kv.snapshot_configuration().describe()
    plan = FaultPlan(f"divulge-drop-{site}").schedule(site, "drop")
    with artifact_on_failure(plan, f"divulge-drop-{site}"):
        outcome = replace_under_plan(kv, plan, timeout=0.8)
        error = assert_rolled_back(kv, before, outcome, "wait_point")
        assert isinstance(error, ReconfigurationTimeout)
        assert isinstance(error, ReconfigTimeoutError)  # back-compat type


@pytest.mark.parametrize("mode", ["crash", "drop"])
@pytest.mark.parametrize("site", CLONE_SIDE)
def test_clone_restore_fault_caught_by_health_check(kv, site, mode):
    """A clone that dies restoring is detected before the commit.

    Whether the packet is lost (drop at decode), a frame is lost (drop
    at restore), or the site simply raises, the clone never sets its
    restored flag — the health check aborts the transaction while the
    old module and its captured state are still recoverable.
    """
    before = kv.snapshot_configuration().describe()
    plan = FaultPlan(f"clone-{site}-{mode}").schedule(site, mode)
    with artifact_on_failure(plan, f"clone-{site}-{mode}"):
        outcome = replace_under_plan(kv, plan)
        assert plan.fired(site) == 1
        assert_rolled_back(kv, before, outcome, "health_check")


# ---------------------------------------------------------------------------
# TCP frame faults: the daemon link absorbs them with bounded retry
# ---------------------------------------------------------------------------


class _EchoDaemon:
    """A minimal peer speaking the wire protocol: 'rep pong' per request.

    Idempotent by construction — like the real daemon commands on the
    retry path — so re-executed requests are observable but harmless
    (``requests_served`` counts them).
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.requests_served = 0
        threading.Thread(target=self._serve, daemon=True, name="echo-daemon").start()

    def _serve(self) -> None:
        from repro.bus.tcp import recv_frame, send_frame
        from repro.errors import TransportError

        try:
            while True:
                frame = recv_frame(self.sock)
                if frame[0] == "req":
                    self.requests_served += 1
                    send_frame(self.sock, ["rep", frame[1], "pong"])
        except (TransportError, OSError, InjectedFault):
            return


def _make_link(sock) -> _DaemonLink:
    return _DaemonLink(
        "echo",
        MACHINES["modern-64"],
        sock,
        bus=None,
        retry=RetryPolicy(attempts=3, backoff=0.01),
    )


@pytest.fixture
def wire():
    ours, theirs = socket.socketpair()
    yield ours, theirs
    for sock in (ours, theirs):
        try:
            sock.close()
        except OSError:
            pass


@pytest.mark.parametrize("mode", ["crash", "drop"])
def test_lost_request_frame_is_retried(wire, mode):
    """A request frame lost on send is re-sent with a fresh sequence."""
    ours, theirs = wire
    daemon = _EchoDaemon(theirs)
    link = _make_link(ours)
    plan = FaultPlan(f"tcp-send-{mode}").schedule("tcp.send_frame", mode)
    with artifact_on_failure(plan, f"tcp-send-{mode}"):
        with fault_plan(plan):
            assert link.request(["ping"], timeout=0.4) == "pong"
        assert plan.fired("tcp.send_frame") == 1
        # The dropped attempt never reached the daemon; only the retry did.
        assert daemon.requests_served == 1


def test_persistent_send_fault_exhausts_budget_then_surfaces(wire):
    """The link gives up after its retry budget and raises the fault —
    but stays usable once the fault clears."""
    ours, theirs = wire
    daemon = _EchoDaemon(theirs)
    link = _make_link(ours)
    plan = FaultPlan("tcp-send-persistent").schedule("tcp.send_frame", "crash", times=99)
    with artifact_on_failure(plan, "tcp-send-persistent"):
        with fault_plan(plan):
            with pytest.raises(InjectedFault):
                link.request(["ping"], timeout=0.4)
        assert plan.fired("tcp.send_frame") == 3
        assert daemon.requests_served == 0
        assert link.request(["ping"], timeout=2.0) == "pong"


def test_dropped_reply_frame_retries_at_least_once(wire):
    """A reply lost in flight forces a retry that re-executes the command.

    This is the documented at-least-once caveat of the request path: the
    daemon served the first request, its reply was dropped, and the
    retry made it serve again — which is why daemon commands on the
    retry path are idempotent.
    """
    ours, theirs = wire
    daemon = _EchoDaemon(theirs)  # its reader is already parked, pre-plan
    plan = FaultPlan("tcp-recv-drop").schedule("tcp.recv_frame", "drop")
    with artifact_on_failure(plan, "tcp-recv-drop"):
        with fault_plan(plan):
            # The link's reader starts under the plan, so *its* first
            # recv consumes the armed drop: the first reply is discarded.
            link = _make_link(ours)
            assert link.request(["ping"], timeout=0.4) == "pong"
        assert plan.fired("tcp.recv_frame") == 1
        assert daemon.requests_served == 2


def test_recv_crash_does_not_kill_the_reader(wire):
    """An injected crash in the reader loop is absorbed; the link lives."""
    ours, theirs = wire
    daemon = _EchoDaemon(theirs)
    plan = FaultPlan("tcp-recv-crash").schedule("tcp.recv_frame", "crash")
    with artifact_on_failure(plan, "tcp-recv-crash"):
        with fault_plan(plan):
            link = _make_link(ours)
            assert link.request(["ping"], timeout=2.0) == "pong"
        assert plan.fired("tcp.recv_frame") == 1
        assert daemon.requests_served == 1
