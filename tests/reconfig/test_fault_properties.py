"""Property tests: random fault schedules never lose or duplicate messages.

Hypothesis draws small schedules — up to three armed sites, each with a
mode, a skip count, and a persistence — and runs a replace under them
against both exemplar applications:

- the kvstore: every request sent across the (possibly aborted) replace
  gets exactly one reply, and the store reflects every put;
- the Figure-1 monitor: the displayed averages are exactly the disjoint
  window averages of the fed sensor values — no reading lost, none
  double-counted — whether the move committed or rolled back.

The random pool deliberately excludes the clone-restore sites
(``mh.decode``/``mh.restore``): rollback *revives* the old module
through the same restore path, so a schedule that aborts the transaction
before the clone consumes the armed fault would instead fire it during
revival — losing the last copy of the state, which no transaction can
recover (see docs/fault-model.md).  Those sites are covered
deterministically in test_fault_injection.py.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.errors import ReconfigurationAborted
from repro.reconfig.scripts import move_module
from repro.runtime.faults import MODES, SITES, FaultPlan, fault_plan

from tests.conftest import wait_until
from tests.reconfig.helpers import (
    displayed,
    feed_sensor,
    kv_round_trip,
    launch_manual_kv,
    launch_manual_monitor,
    wait_signalled,
)
from tests.reconfig.test_fault_injection import CHAOS_SEED

pytestmark = pytest.mark.chaos

#: Clone-restore sites are revival-shared (see module docstring).
RECOVERABLE_SITES = tuple(
    s for s in SITES if not s.startswith("tcp.") and s not in ("mh.decode", "mh.restore")
)

schedules = st.lists(
    st.tuples(
        st.sampled_from(RECOVERABLE_SITES),
        st.sampled_from(MODES),
        st.integers(min_value=0, max_value=1),  # after: skip that many hits
        st.sampled_from([1, 99]),  # once (retryable) or persistent
    ),
    min_size=1,
    max_size=3,
)

PROPERTY_SETTINGS = settings(
    deadline=None,
    max_examples=8,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _plan_from(schedule) -> FaultPlan:
    plan = FaultPlan("property")
    for site, mode, after, times in schedule:
        plan.schedule(site, mode, after=after, times=times)
    return plan


def _move_in_background(bus, instance, timeout=0.8):
    """Start the move; return (thread, outcome dict)."""
    outcome = {}

    def run():
        try:
            outcome["report"] = move_module(bus, instance, machine="beta", timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - asserted by caller
            outcome["error"] = exc

    worker = threading.Thread(target=run, name="property-replace")
    worker.start()
    return worker, outcome


def _check_outcome(outcome):
    error = outcome.get("error")
    if error is not None:
        assert isinstance(error, ReconfigurationAborted)
        assert error.rolled_back
    else:
        assert not outcome["report"].aborted


@seed(CHAOS_SEED)
@PROPERTY_SETTINGS
@given(schedule=schedules)
def test_kv_requests_never_lost_or_duplicated(schedule):
    plan = _plan_from(schedule)
    bus = launch_manual_kv()
    try:
        with fault_plan(plan):
            worker, outcome = _move_in_background(bus, "shard")
            try:
                wait_signalled(bus, "shard")
                # In-flight across the replace window: served by the old
                # module before it captures, exactly once.
                in_flight = kv_round_trip(bus, "put", "a", "1")
            finally:
                worker.join(timeout=30)
        assert not worker.is_alive(), "replace thread wedged"
        assert in_flight == ("a", "1")
        _check_outcome(outcome)
        # Whatever happened, the surviving module holds every put and
        # answers every request exactly once, in order.
        assert kv_round_trip(bus, "put", "b", "2") == ("b", "2")
        assert kv_round_trip(bus, "get", "a") == ("a", "1")
        assert kv_round_trip(bus, "get", "b") == ("b", "2")
        assert len(bus.get_module("client").queue("replies")) == 0
    finally:
        bus.shutdown()


@seed(CHAOS_SEED + 2)
@PROPERTY_SETTINGS
@given(
    site=st.sampled_from(RECOVERABLE_SITES),
    mode=st.sampled_from(MODES),
)
def test_kv_workload_survives_transient_fault_mid_replace(site, mode):
    """Under-load property: one transient fault strikes mid-replace while
    the sharded KV workload runs flat out.  Whether the transaction
    retries through it or aborts and rolls back, the end-to-end
    conservation invariants must hold: every request answered exactly
    once, per-shard serve counts equal per-shard send counts, no stray
    replies."""
    import time

    from repro.loadgen import KvZipfianWorkload

    plan = FaultPlan("property-load")
    plan.schedule(site, mode, after=0, times=1)
    workload = KvZipfianWorkload(
        shards=2, sessions=3, keys=64, seed=CHAOS_SEED & 0xFFFF
    )
    workload.start()
    try:
        time.sleep(0.2)  # let the session pool reach steady state
        with fault_plan(plan):
            outcome = workload.replace_once(allow_abort=True)
        if outcome.aborted:
            assert outcome.rolled_back
        time.sleep(0.2)  # traffic must keep flowing either way
        workload.quiesce(30.0)
        stats = workload.verify()
        assert stats["no_loss"] and stats["no_duplication"]
        assert stats["sent"] == stats["received"] > 0
        assert stats["serves_by_shard"] == stats["sent_by_shard"]
    finally:
        workload.close()


@seed(CHAOS_SEED + 1)
@PROPERTY_SETTINGS
@given(schedule=schedules)
def test_monitor_averages_exact_across_any_schedule(schedule):
    plan = _plan_from(schedule)
    bus = launch_manual_monitor(requests=2, group_size=2)
    try:
        with fault_plan(plan):
            worker, outcome = _move_in_background(bus, "compute")
            try:
                wait_signalled(bus, "compute")
                # The first reading is consumed mid-recursion, so the
                # capture (if one happens) holds a partial sum.
                feed_sensor(bus, 1)
            finally:
                worker.join(timeout=30)
        assert not worker.is_alive(), "replace thread wedged"
        _check_outcome(outcome)
        feed_sensor(bus, 2, 3, 4)
        wait_until(lambda: len(displayed(bus)) >= 2, timeout=15)
        # Figure-1 continuity: each reading contributes to exactly one
        # average, and the partial sum survived the (possibly aborted)
        # move — (1+2)/2 then (3+4)/2, nothing lost, nothing doubled.
        assert displayed(bus) == [1.5, 3.5]
    finally:
        bus.shutdown()
