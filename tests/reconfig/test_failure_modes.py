"""Failure modes of replacement: what happens when the clone is bad.

The platform's failure contract: a clone that cannot restore crashes
*visibly* (CRASHED state, surfaced by check_health) rather than running
with corrupt state; a reconfiguration that cannot start stays rolled
back.
"""

import pytest

from repro.bus.module import ModuleState
from repro.errors import ModuleCrashedError, TransformError
from repro.reconfig.scripts import upgrade_module

from tests.conftest import wait_until
from tests.reconfig.helpers import launch_monitor, wait_displayed

#: A "new version" whose instrumented frame layout differs from v1's —
#: an incompatible upgrade that the restore-time format check catches.
INCOMPATIBLE_V2 = '''\
def main():
    n = None
    extra_slot = None
    idle = float(mh.config.get('idle_interval', '2'))
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        mh.sleep(idle)


def compute(num: int, n: int, rp: Ref):
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
'''

#: A "new version" that does not even declare the reconfiguration point.
POINTLESS_V2 = '''\
def main():
    while mh.running:
        mh.sleep(0.1)
'''


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestIncompatibleUpgrade:
    def test_layout_mismatch_crashes_clone_visibly(self, monitor):
        wait_displayed(monitor, 2)
        upgrade_module(monitor, "compute", INCOMPATIBLE_V2, timeout=15)
        # The clone starts, tries to restore main's frame with an extra
        # slot, and dies on the frame-format cross-check.
        wait_until(
            lambda: monitor.get_module("compute").state is ModuleState.CRASHED,
            timeout=10,
        )
        with pytest.raises(ModuleCrashedError, match="format"):
            monitor.check_health()

    def test_pointless_new_version_rejected_before_any_damage(self, monitor):
        wait_displayed(monitor, 2)
        before = monitor.snapshot_configuration().describe()
        # The spec declares point R; a source without the marker fails
        # the declared-points cross-check at clone load time.
        with pytest.raises(TransformError, match="do not match"):
            upgrade_module(monitor, "compute", POINTLESS_V2, timeout=15)
        after = monitor.snapshot_configuration().describe()
        assert before == after
        assert monitor.get_module("compute").state is ModuleState.RUNNING
