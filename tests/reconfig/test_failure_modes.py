"""Failure modes of replacement: what happens when the clone is bad.

The platform's failure contract: replacement is transactional.  A clone
that cannot restore is caught by the coordinator's health check *before*
the old module is removed — the transaction aborts with the clone's
crash as cause, the bus rolls back, and the application keeps running on
the old module; a reconfiguration that cannot start stays rolled back.
"""

import pytest

from repro.bus.module import ModuleState
from repro.errors import ModuleCrashedError, ReconfigurationAborted, TransformError
from repro.reconfig.scripts import upgrade_module

from tests.reconfig.helpers import launch_monitor, wait_displayed

#: A "new version" whose instrumented frame layout differs from v1's —
#: an incompatible upgrade that the restore-time format check catches.
INCOMPATIBLE_V2 = '''\
def main():
    n = None
    extra_slot = None
    idle = float(mh.config.get('idle_interval', '2'))
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        mh.sleep(idle)


def compute(num: int, n: int, rp: Ref):
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
'''

#: A "new version" that does not even declare the reconfiguration point.
POINTLESS_V2 = '''\
def main():
    while mh.running:
        mh.sleep(0.1)
'''


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestIncompatibleUpgrade:
    def test_layout_mismatch_aborts_before_commit(self, monitor):
        wait_displayed(monitor, 2)
        before = monitor.snapshot_configuration().describe()
        # The clone starts, tries to restore main's frame with an extra
        # slot, and dies on the frame-format cross-check — which the
        # health check catches while the old module is still on the bus.
        with pytest.raises(ReconfigurationAborted) as excinfo:
            upgrade_module(monitor, "compute", INCOMPATIBLE_V2, timeout=15)
        assert excinfo.value.stage == "health_check"
        assert excinfo.value.rolled_back
        assert isinstance(excinfo.value.cause, ModuleCrashedError)
        assert "format" in str(excinfo.value.cause)
        # Rolled back: same topology, no clone left behind, and the old
        # module revived from its own captured state keeps serving.
        assert monitor.snapshot_configuration().describe() == before
        assert not monitor.has_module("compute.new")
        assert monitor.get_module("compute").state is ModuleState.RUNNING
        monitor.check_health()
        count = len(wait_displayed(monitor, 2))
        assert len(wait_displayed(monitor, count + 2)) >= count + 2

    def test_pointless_new_version_rejected_before_any_damage(self, monitor):
        wait_displayed(monitor, 2)
        before = monitor.snapshot_configuration().describe()
        # The spec declares point R; a source without the marker fails
        # the declared-points cross-check at clone load time.
        with pytest.raises(TransformError, match="do not match"):
            upgrade_module(monitor, "compute", POINTLESS_V2, timeout=15)
        after = monitor.snapshot_configuration().describe()
        assert before == after
        assert monitor.get_module("compute").state is ModuleState.RUNNING
