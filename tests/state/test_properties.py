"""Property-based tests for the abstract state layer (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.state.encoding import decode_any, decode_values, encode_any, encode_values
from repro.state.format import format_of_value
from repro.state.frames import ActivationRecord, ProcessState, StackState
from repro.state.heap import HeapCodec
from repro.state.machine import MACHINES

# Values whose equality survives a roundtrip (floats: finite doubles only,
# NaN breaks ==; they are covered by the unit tests).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.binary(max_size=40),
)

abstract_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


@given(abstract_values)
@settings(max_examples=200, deadline=None)
def test_any_encoding_roundtrip(value):
    assert decode_any(encode_any(value)) == value


@given(abstract_values)
@settings(max_examples=100, deadline=None)
def test_inferred_format_always_matches(value):
    spec = format_of_value(value)
    data = encode_values(spec.format_char(), [value])
    assert decode_values(data) == [value]


@given(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
@settings(max_examples=100, deadline=None)
def test_cross_machine_transfer_preserves_representable_values(i, f):
    # A value crosses every machine pair on which it is representable,
    # unchanged; unrepresentable targets are covered by the unit tests.
    profiles = list(MACHINES.values())
    for source in profiles:
        if i not in source.int_range("i"):
            continue
        data = encode_values("iF", [i, f], source)
        for target in profiles:
            if i not in target.int_range("i"):
                continue
            if target.float_bits == 32 and f != 0.0:
                continue  # float32 exactness already covered separately
            decoded = decode_values(data, target)
            assert decoded[0] == i
            assert math.isclose(decoded[1], f, rel_tol=1e-6, abs_tol=1e-30)


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=40, deadline=None)
def test_process_state_roundtrip_any_depth(depth):
    # Stack capture/restore order is exact at every recursion depth.
    stack = StackState()
    stack.push_captured(
        ActivationRecord("compute", 4, "lllF", [4, 1, 0, 0.0])
    )
    for level in range(depth - 1):
        stack.push_captured(
            ActivationRecord("compute", 3, "lllF", [3, 1, level, float(level)])
        )
    stack.push_captured(ActivationRecord("main", 1, "llF", [1, depth, 0.0]))
    state = ProcessState(module="m", stack=stack, reconfig_point="R")
    restored = ProcessState.from_bytes(state.to_bytes())
    assert restored.stack.depth == depth + 1
    assert restored.stack.pop_for_restore().procedure == "main"
    last = None
    while restored.stack.depth:
        last = restored.stack.pop_for_restore()
    assert last is not None and last.location == 4


heap_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**6), max_value=10**6),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=20,
)


@given(st.dictionaries(st.text(min_size=1, max_size=6), heap_values, max_size=4))
@settings(max_examples=100, deadline=None)
def test_heap_codec_roundtrip(roots):
    assert HeapCodec().roundtrip(roots) == roots


@given(st.lists(st.integers(), min_size=1, max_size=8), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_heap_codec_preserves_alias_structure(payload, copies):
    shared = list(payload)
    roots = {f"r{i}": shared for i in range(copies)}
    roots["container"] = [shared, shared]
    restored = HeapCodec().roundtrip(roots)
    first = restored["r0"]
    for i in range(copies):
        assert restored[f"r{i}"] is first
    assert restored["container"][0] is first
    assert restored["container"][1] is first
