"""Golden-bytes tests: the compiled codec is wire-identical to the seed.

The compiled encoder/decoder plans (repro.state.encoding) are a pure
performance change; every byte they produce must match the original
tree-walking codec, which is preserved verbatim in
``repro.state.reference`` as the executable wire specification.  Two
layers of protection here:

1. Hard-coded hex vectors produced by the seed codec — these catch a
   wire change even if someone "fixes" the reference module to match a
   regression in the compiled one.
2. Live compiled-vs-reference comparison over the same corpus, plus a
   full ProcessState packet, so any divergence on composite structures
   is caught byte-for-byte.
"""

import pytest

from repro.state.encoding import decode_values, encode_values
from repro.state.frames import ProcessState, ActivationRecord, StackState, peek_state_header
from repro.state.machine import MACHINES
from repro.state.pointers import SymbolicPointer
from repro.state.reference import (
    reference_decode_values,
    reference_encode_values,
    reference_state_from_bytes,
    reference_state_to_bytes,
)

# (fmt, values, seed-encoder hex) — generated once from the pre-rewrite
# codec; never regenerate these from the current code.
GOLDEN_VECTORS = [
    ("b", [True], "6201"),
    ("b", [False], "6200"),
    ("n", [None], "6e"),
    ("i", [-1], "6901"),
    ("l", [4611686018427387904], "6c80808080808080808001"),
    ("l", [-4611686018427387904], "6cffffffffffffffff7f"),
    ("f", [1.5], "663fc00000"),
    ("F", [3.141592653589793], "46400921fb54442d18"),
    ("F", [-0.0], "468000000000000000"),
    ("s", ["héllo ☃"], "730a68c3a96c6c6f20e29883"),
    ("p", [SymbolicPointer(segment="heap:17", index=-3)], "7007686561703a313705"),
    ("[l]", [[1, 2, 3]], "5b036c026c046c06"),
    ("(slF)", [("x", 1, 2.0)], "28037301786c02464000000000000000"),
    ("{sl}", [{"b": 2, "a": 1}], "7b027301626c047301616c02"),
    (
        "a",
        [{"k": [(1, 2.5), None], "f": True}],
        "7b0273016b5b0228026c024640040000000000006e7301666201",
    ),
    (
        "il[F](si)",
        [1, 2, [1.5, 2.5], ("s", 9)],
        "69026c045b02463ff800000000000046400400000000000028027301736912",
    ),
    ("b", [None], "6e"),
    ("[i]", [None], "6e"),
    ("a", [None], "6e"),
]


def sample_state() -> ProcessState:
    frames = [
        ActivationRecord("main", 2, "llF", [2, 40, 1.25]),
        ActivationRecord("compute", 1, "lls", [1, 7, "window"]),
        ActivationRecord("helper", 3, "l[i]{sl}", [3, [1, 2], {"k": 9}]),
    ]
    return ProcessState(
        module="compute",
        stack=StackState(list(frames)),
        statics={"total": 1234, "label": "running"},
        heap={"image": {"roots": {}, "cells": []}, "files": []},
        reconfig_point="R1",
        source_machine="sparc-like",
        status="clone",
    )


class TestGoldenVectors:
    @pytest.mark.parametrize("fmt,values,expected", GOLDEN_VECTORS)
    def test_compiled_matches_seed_bytes(self, fmt, values, expected):
        assert encode_values(fmt, values).hex() == expected

    @pytest.mark.parametrize("fmt,values,expected", GOLDEN_VECTORS)
    def test_reference_matches_seed_bytes(self, fmt, values, expected):
        assert reference_encode_values(fmt, values).hex() == expected

    @pytest.mark.parametrize("fmt,values,expected", GOLDEN_VECTORS)
    def test_decoders_agree_on_seed_bytes(self, fmt, values, expected):
        data = bytes.fromhex(expected)
        assert decode_values(data) == reference_decode_values(data)


class TestLiveComparison:
    @pytest.mark.parametrize("machine", [None, MACHINES["sparc-like"], MACHINES["vax-like"]])
    @pytest.mark.parametrize("fmt,values,_expected", GOLDEN_VECTORS)
    def test_compiled_equals_reference(self, fmt, values, _expected, machine):
        # Outcomes must agree exactly: same bytes, or the same error with
        # the same message (e.g. 2**62 under vax-like's 32-bit long).
        def outcome(fn):
            try:
                return fn(fmt, values, machine)
            except Exception as exc:  # noqa: BLE001 - captured for comparison
                return (type(exc).__name__, str(exc))

        assert outcome(encode_values) == outcome(reference_encode_values)

    def test_process_state_packet_identical(self):
        machine = MACHINES["sparc-like"]
        state = sample_state()
        compiled = state.to_bytes(machine)
        reference = reference_state_to_bytes(sample_state(), machine)
        assert compiled == reference

    def test_process_state_decoders_agree(self):
        machine = MACHINES["sparc-like"]
        packet = sample_state().to_bytes(machine)
        ours = ProcessState.from_bytes(packet, MACHINES["vax-like"])
        ref = reference_state_from_bytes(packet, MACHINES["vax-like"])
        assert ours.module == ref.module
        assert ours.statics == ref.statics
        assert ours.heap == ref.heap
        assert [r.values for r in ours.stack.records()] == [
            r.values for r in ref.stack.records()
        ]

    def test_peek_header_matches_full_decode(self):
        packet = sample_state().to_bytes(MACHINES["sparc-like"])
        header = peek_state_header(packet)
        full = reference_state_from_bytes(packet, None)
        assert header.module == full.module == "compute"
        assert header.reconfig_point == full.reconfig_point == "R1"
        assert header.source_machine == full.source_machine
        assert header.depth == full.stack.depth == 3
        assert header.packet_length == len(packet)
