"""Tests for activation records and process state (repro.state.frames)."""

import pytest

from repro.errors import DecodingError, MachineCompatibilityError
from repro.state.frames import (
    STATE_MAGIC,
    ActivationRecord,
    ProcessState,
    StackState,
    frames_equal_ignoring_order_metadata,
)


def make_record(procedure="compute", location=3, fmt="lllF", values=None):
    return ActivationRecord(
        procedure=procedure,
        location=location,
        fmt=fmt,
        values=values if values is not None else [3, 4, 2, 7.5],
    )


class TestActivationRecord:
    def test_validates_on_construction(self):
        with pytest.raises(Exception):
            ActivationRecord(procedure="f", location=1, fmt="ll", values=[1])

    def test_paper_shape(self):
        # Figure 4: mh_capture("lllF", 3, num, n, *rp)
        record = make_record()
        assert record.location == 3
        assert record.values[0] == record.location


class TestStackState:
    def test_capture_order_is_top_first(self):
        stack = StackState()
        stack.push_captured(make_record(location=4))  # top frame (point R)
        stack.push_captured(make_record(location=3))  # middle
        stack.push_captured(make_record("main", 1, "llF", [1, 4, 0.0]))
        assert stack.depth == 3
        # Restore pops outermost (main) first.
        assert stack.pop_for_restore().procedure == "main"
        assert stack.pop_for_restore().location == 3
        assert stack.pop_for_restore().location == 4

    def test_pop_empty_raises(self):
        with pytest.raises(DecodingError):
            StackState().pop_for_restore()

    def test_call_chain(self):
        stack = StackState()
        stack.push_captured(make_record("compute", 4))
        stack.push_captured(make_record("compute", 3))
        stack.push_captured(make_record("main", 1, "llF", [1, 2, 0.0]))
        assert stack.call_chain() == ["main", "compute", "compute"]

    def test_equality(self):
        a = StackState([make_record()])
        b = StackState([make_record()])
        assert a == b
        assert frames_equal_ignoring_order_metadata(a, b)

    def test_peek(self):
        stack = StackState()
        assert stack.peek_for_restore() is None
        stack.push_captured(make_record())
        assert stack.peek_for_restore() is not None


class TestProcessState:
    def make_state(self):
        stack = StackState()
        for location in (4, 3, 3):
            stack.push_captured(make_record(location=location))
        stack.push_captured(make_record("main", 1, "llF", [1, 4, 0.0]))
        return ProcessState(
            module="compute",
            stack=stack,
            statics={"total": 12, "label": "x"},
            heap={"image": {"roots": {}, "segments": {}}, "files": []},
            reconfig_point="R",
            source_machine="alpha",
        )

    def test_roundtrip(self):
        state = self.make_state()
        packet = state.to_bytes()
        restored = ProcessState.from_bytes(packet)
        assert restored.module == "compute"
        assert restored.reconfig_point == "R"
        assert restored.source_machine == "alpha"
        assert restored.status == "clone"
        assert restored.statics == state.statics
        assert restored.stack.depth == 4
        assert frames_equal_ignoring_order_metadata(restored.stack, state.stack)

    def test_magic_checked(self):
        packet = self.make_state().to_bytes()
        with pytest.raises(DecodingError, match="magic"):
            ProcessState.from_bytes(b"XXXX" + packet[4:])

    def test_version_checked(self):
        packet = bytearray(self.make_state().to_bytes())
        packet[len(STATE_MAGIC)] = 99
        with pytest.raises(DecodingError, match="version"):
            ProcessState.from_bytes(bytes(packet))

    def test_length_checked(self):
        packet = self.make_state().to_bytes()
        with pytest.raises(DecodingError, match="length|truncated|short"):
            ProcessState.from_bytes(packet[:-2])

    def test_too_short(self):
        with pytest.raises(DecodingError, match="short"):
            ProcessState.from_bytes(b"MH")

    def test_trailing_garbage(self):
        packet = self.make_state().to_bytes()
        with pytest.raises(DecodingError):
            ProcessState.from_bytes(packet + b"zz")

    def test_translate_across_machines(self, sparc, vax):
        state = self.make_state()
        moved = state.translate(sparc, vax)
        assert moved.statics == state.statics
        assert moved.stack.depth == state.stack.depth

    def test_translate_rejects_unrepresentable(self, sparc, vax):
        state = self.make_state()
        state.statics["wide"] = 2**40
        # 'a'-encoded statics infer 'l'; vax longs are 32-bit.
        with pytest.raises(MachineCompatibilityError):
            state.translate(sparc, vax)

    def test_summary_mentions_chain(self):
        text = self.make_state().summary()
        assert "main -> compute" in text
        assert "depth=4" in text
