"""Tests for the canonical abstract encoding (repro.state.encoding)."""

import math

import pytest

from repro.errors import (
    DecodingError,
    EncodingError,
    FormatError,
    MachineCompatibilityError,
)
from repro.state.encoding import (
    Decoder,
    Encoder,
    decode_any,
    decode_values,
    encode_any,
    encode_values,
)
from repro.state.format import ScalarType, parse_format
from repro.state.pointers import SymbolicPointer


class TestScalarRoundtrip:
    @pytest.mark.parametrize(
        "fmt,value",
        [
            ("b", True),
            ("b", False),
            ("i", 0),
            ("i", -1),
            ("i", 2**31 - 1),
            ("l", -(2**62)),
            ("l", 123456789012345),
            ("F", 3.141592653589793),
            ("F", -0.0),
            ("F", 1e308),
            ("s", ""),
            ("s", "héllo wörld ☃"),
            ("B", b""),
            ("B", bytes(range(256))),
            ("n", None),
        ],
    )
    def test_roundtrip(self, fmt, value):
        data = encode_values(fmt, [value])
        assert decode_values(data) == [value]

    def test_float_nan(self):
        (result,) = decode_values(encode_values("F", [float("nan")]))
        assert math.isnan(result)

    def test_float_inf(self):
        assert decode_values(encode_values("F", [float("inf")])) == [float("inf")]

    def test_single_precision_narrows(self):
        (result,) = decode_values(encode_values("f", [1.1]))
        assert result != 1.1  # binary32 cannot hold 1.1 exactly
        assert abs(result - 1.1) < 1e-6

    def test_huge_int_arbitrary_precision(self):
        value = 10**50
        assert decode_values(encode_values("l", [value])) == [value]

    def test_pointer_roundtrip(self):
        pointer = SymbolicPointer("heap:17", -3)
        (result,) = decode_values(encode_values("p", [pointer]))
        assert result == pointer


class TestNullSlots:
    @pytest.mark.parametrize("fmt", ["b", "i", "l", "f", "F", "s", "B", "p", "[i]", "(ss)"])
    def test_none_under_any_declaration(self, fmt):
        # An unassigned local is captured as NULL regardless of its type.
        data = encode_values(fmt, [None])
        assert decode_values(data) == [None]


class TestContainers:
    def test_list(self):
        data = encode_values("[l]", [[1, 2, 3]])
        assert decode_values(data) == [[1, 2, 3]]

    def test_tuple(self):
        data = encode_values("(slF)", [("x", 1, 2.0)])
        assert decode_values(data) == [("x", 1, 2.0)]

    def test_dict_preserves_order(self):
        value = {"b": 2, "a": 1}
        (result,) = decode_values(encode_values("{sl}", [value]))
        assert list(result.items()) == [("b", 2), ("a", 1)]

    def test_deep_nesting(self):
        value = [[(1, {"k": [2.5]})]]
        (result,) = decode_values(encode_any(value), None)
        assert result == value

    def test_list_type_mismatch(self):
        with pytest.raises((EncodingError, Exception)):
            encode_values("[l]", [{"not": "a list"}])

    def test_tuple_arity_mismatch(self):
        with pytest.raises(Exception):
            encode_values("(ll)", [(1, 2, 3)])


class TestSelfDescribing:
    def test_any_roundtrip(self):
        value = {"stack": [(1, 2.5), (2, 3.5)], "name": "compute", "flag": True}
        assert decode_any(encode_any(value)) == value

    def test_decoder_needs_no_format(self):
        data = encode_values("llF", [1, 42, 2.5])
        decoder = Decoder(data)
        assert decoder.read_all() == [1, 42, 2.5]

    def test_trailing_bytes_rejected(self):
        data = encode_any(1) + b"\x00"
        with pytest.raises(DecodingError, match="trailing"):
            decode_any(data)


class TestMalformedStreams:
    def test_truncated(self):
        data = encode_values("s", ["hello world"])
        with pytest.raises(DecodingError, match="truncated"):
            decode_values(data[:-3])

    def test_unknown_tag(self):
        with pytest.raises(DecodingError, match="unknown tag"):
            decode_values(b"Z")

    def test_empty_ok(self):
        assert decode_values(b"") == []

    def test_truncated_header(self):
        data = encode_values("F", [1.5])
        with pytest.raises(DecodingError):
            decode_values(data[:3])


class TestMachineChecks:
    def test_source_machine_rejects_wide_int(self, vax):
        # vax-like has 32-bit longs: a 2**40 cannot be captured there.
        with pytest.raises(MachineCompatibilityError):
            encode_values("l", [2**40], vax)

    def test_target_machine_rejects_wide_int(self, sparc, vax):
        data = encode_values("l", [2**40], sparc)  # 64-bit long source: fine
        with pytest.raises(MachineCompatibilityError):
            decode_values(data, vax)

    def test_compatible_value_crosses(self, sparc, vax):
        data = encode_values("il", [-5, 2**30], sparc)
        assert decode_values(data, vax) == [-5, 2**30]

    def test_float32_machine_rejects_precise_double(self, m68k):
        with pytest.raises(MachineCompatibilityError):
            encode_values("F", [1.1], m68k)

    def test_float32_machine_accepts_representable(self, m68k):
        assert decode_values(encode_values("F", [1.5], m68k), m68k) == [1.5]

    def test_16bit_int_range(self, m68k):
        with pytest.raises(MachineCompatibilityError):
            encode_values("i", [40000], m68k)
        assert decode_values(encode_values("i", [32767], m68k), m68k) == [32767]


class TestWireStability:
    def test_canonical_bytes_are_machine_independent(self, sparc, vax):
        # The whole point: the same abstract values produce identical
        # canonical bytes regardless of which machine encodes them.
        values = [1, 42, 2.5, "x", [1, 2]]
        fmt = "llFs[l]"
        assert encode_values(fmt, values, sparc) == encode_values(fmt, values, vax)

    def test_varint_boundaries(self):
        for value in (0, 127, 128, 16383, 16384, -127, -128, 2**35):
            assert decode_values(encode_values("l", [value])) == [value]

    def test_encoder_len(self):
        encoder = Encoder()
        assert len(encoder) == 0
        encoder.write(ScalarType("l"), 1)
        assert len(encoder) > 0


class TestEncoderValidation:
    def test_str_for_int_rejected(self):
        with pytest.raises(Exception):
            encode_values("l", ["nope"])

    def test_bool_for_int_rejected(self):
        with pytest.raises(Exception):
            encode_values("l", [True])

    def test_bytes_for_str_rejected(self):
        with pytest.raises(Exception):
            encode_values("s", [b"nope"])

    def test_fake_pointer_rejected(self):
        with pytest.raises(Exception):
            encode_values("p", ["not a pointer"])

    # Regression: the original encoder ran f/F values through float(), so
    # on the direct Encoder.write path a numeric *string* (or a bool, or
    # anything else with __float__) was silently coerced into a
    # legitimate-looking float on the wire.  The encoder now requires an
    # actual int or float at every level.
    @pytest.mark.parametrize("fmt", ["f", "F"])
    @pytest.mark.parametrize("bad", ["1.5", True])
    def test_float_coercion_rejected_on_write(self, fmt, bad):
        encoder = Encoder()
        with pytest.raises(EncodingError, match="requires int or float"):
            encoder.write(ScalarType(fmt), bad)

    @pytest.mark.parametrize("fmt", ["f", "F"])
    def test_numeric_string_for_float_rejected(self, fmt):
        # Via encode_values the arity check reports it first, exactly as
        # the seed did — the point is that nothing coerces.
        with pytest.raises((EncodingError, FormatError)):
            encode_values(fmt, ["1.5"])

    @pytest.mark.parametrize("fmt", ["f", "F"])
    def test_int_for_float_still_accepted(self, fmt):
        (result,) = decode_values(encode_values(fmt, [3]))
        assert result == 3.0 and isinstance(result, float)
