"""Tests for the compiled codec plans: caching behaviour and equivalence.

The fast path rests on two properties:

1. Plans are *shared*: the same format string (or structurally equal
   TypeSpec) always yields the same compiled closures, so a deep capture
   pays the compilation cost once, not once per frame.
2. Plans are *faithful*: for every format character and any acceptable
   value, the compiled encoder emits exactly the bytes the reference
   tree-walk emits (property-tested below with hypothesis).
"""

from hypothesis import given, settings, strategies as st

from repro.state.encoding import (
    _ENCODER_CACHE,
    _PLAN_CACHE,
    compiled_encoder,
    encode_values,
    encoder_plan,
)
from repro.state.format import (
    ScalarType,
    compiled_matcher,
    matcher_plan,
    parse_format,
    value_matches,
)
from repro.state.machine import MACHINES
from repro.state.pointers import SymbolicPointer
from repro.state.reference import reference_encode_values


class TestPlanCaching:
    def test_encoder_plan_is_cached_per_format(self):
        assert encoder_plan("llF") is encoder_plan("llF")

    def test_structurally_equal_specs_share_encoders(self):
        # TypeSpec hashes by format_char, so "[l]" parsed twice (even in
        # different surrounding formats) compiles once.
        a = parse_format("[l]")[0]
        b = parse_format("i[l]")[1]
        assert compiled_encoder(a) is compiled_encoder(b)

    def test_plan_entries_are_shared_with_spec_cache(self):
        plan = encoder_plan("il")
        assert plan[0] is compiled_encoder(ScalarType("i"))
        assert plan[1] is compiled_encoder(ScalarType("l"))

    def test_matcher_plan_is_cached(self):
        assert matcher_plan("llF") is matcher_plan("llF")
        spec = parse_format("{sl}")[0]
        assert compiled_matcher(spec) is compiled_matcher(spec)

    def test_plan_cache_interplay_with_parse_lru(self):
        # encoder_plan goes through the lru-cached parse_format; a format
        # seen by check_arity first must still hit the same parse result.
        fmt = "l(si)[F]"
        specs = parse_format(fmt)
        plan = encoder_plan(fmt)
        assert len(plan) == len(specs)
        assert all(
            entry is compiled_encoder(spec) for entry, spec in zip(plan, specs)
        )

    def test_plan_cache_bounded(self):
        # The per-format dict refuses to grow past its bound, but still
        # returns a working plan for the overflow format.
        before = dict(_PLAN_CACHE)
        try:
            _PLAN_CACHE.clear()
            _PLAN_CACHE.update({f"fake{i}": () for i in range(4096)})
            plan = encoder_plan("overflow-never-cached" * 0 + "l")
            assert "l" not in _PLAN_CACHE or len(_PLAN_CACHE) <= 4097
            buf = bytearray()
            plan[0](buf, 5, None)
            assert bytes(buf) == encode_values("l", [5])
        finally:
            _PLAN_CACHE.clear()
            _PLAN_CACHE.update(before)

    def test_compiled_encoder_idempotent_for_containers(self):
        spec = parse_format("{s[l]}")[0]
        assert compiled_encoder(spec) is compiled_encoder(spec)
        assert spec in _ENCODER_CACHE


# -- property: compiled == reference for every format char ----------------

finite_floats = st.floats(allow_nan=False, width=64)
pointers = st.builds(
    SymbolicPointer,
    segment=st.text(max_size=8),
    index=st.integers(min_value=-(2**31), max_value=2**31),
)

# Acceptable values per char, plus None (NULL occupies any slot).
VALUES_BY_CHAR = {
    "b": st.booleans(),
    "i": st.integers(min_value=-(2**70), max_value=2**70),
    "l": st.integers(min_value=-(2**70), max_value=2**70),
    "f": st.one_of(finite_floats, st.integers(-(2**40), 2**40)),
    "F": st.one_of(finite_floats, st.integers(-(2**40), 2**40)),
    "s": st.text(max_size=60),
    "B": st.binary(max_size=60),
    "p": pointers,
    "n": st.none(),
    "a": st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(2**62), 2**62),
            finite_floats,
            st.text(max_size=20),
            st.binary(max_size=20),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=6), children, max_size=4),
        ),
        max_leaves=12,
    ),
}


@st.composite
def char_and_value(draw):
    char = draw(st.sampled_from(sorted(VALUES_BY_CHAR)))
    value = draw(st.one_of(st.none(), VALUES_BY_CHAR[char]))
    return char, value


@given(case=char_and_value(), machine=st.sampled_from([None, "sparc-like", "vax-like", "m68k-like"]))
@settings(max_examples=300, deadline=None)
def test_compiled_encoder_matches_reference(case, machine):
    char, value = case
    profile = MACHINES[machine] if machine else None

    def outcome(fn):
        # Any exception is part of the contract (the seed raised a bare
        # OverflowError for doubles beyond float32 range under 'f'; the
        # compiled codec must reproduce even that).
        try:
            return fn(char, [value], profile)
        except Exception as exc:  # noqa: BLE001 - compared, not swallowed
            return (type(exc).__name__, str(exc))

    assert outcome(encode_values) == outcome(reference_encode_values)


@given(case=char_and_value())
@settings(max_examples=200, deadline=None)
def test_compiled_matcher_matches_value_matches_contract(case):
    char, value = case
    spec = ScalarType(char)
    assert compiled_matcher(spec)(value) == value_matches(spec, value)


@given(values=st.lists(st.integers(-(2**60), 2**60), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_container_formats_match_reference(values):
    for fmt, wrapped in (("[l]", values), ("(" + "l" * len(values) + ")", tuple(values))):
        assert encode_values(fmt, [wrapped]) == reference_encode_values(fmt, [wrapped])
