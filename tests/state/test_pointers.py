"""Tests for symbolic pointer translation (repro.state.pointers)."""

import pytest

from repro.errors import PointerTranslationError
from repro.state.pointers import PointerTable, SymbolicPointer


class TestSymbolicPointer:
    def test_str_is_paperlike(self):
        # "a variable that points to the nth character of a string located
        # at some symbolic address"
        pointer = SymbolicPointer("greeting", 3)
        assert str(pointer) == "&greeting[3]"

    def test_offset_arithmetic(self):
        pointer = SymbolicPointer("seg", 2).with_offset(5)
        assert pointer == SymbolicPointer("seg", 7)

    def test_frozen(self):
        with pytest.raises(Exception):
            SymbolicPointer("seg", 0).index = 3  # type: ignore[misc]


class TestPointerTable:
    def test_translate_interns(self):
        table = PointerTable()
        target = [1, 2, 3]
        first = table.translate(target)
        second = table.translate(target)
        assert first.segment == second.segment

    def test_aliasing_preserved(self):
        # Two pointers to the same object map to the same segment.
        table = PointerTable()
        shared = {"k": 1}
        assert table.translate(shared).segment == table.translate(shared).segment
        assert table.translate({"k": 1}).segment != table.translate(shared).segment

    def test_translate_index(self):
        table = PointerTable()
        pointer = table.translate("hello", index=2)
        assert pointer.index == 2

    def test_named_segments(self):
        table = PointerTable()
        buffer = [0] * 4
        pointer = table.translate_named("static_buffer", buffer)
        assert pointer.segment == "static_buffer"
        assert table.resolve(pointer) is buffer

    def test_named_conflict(self):
        table = PointerTable()
        table.translate_named("x", [1])
        with pytest.raises(PointerTranslationError):
            table.translate_named("x", [2])

    def test_named_reregister_same_object(self):
        table = PointerTable()
        obj = [1]
        table.translate_named("x", obj)
        table.translate_named("x", obj)  # idempotent

    def test_resolve_roundtrip(self):
        table = PointerTable()
        target = [1, 2]
        pointer = table.translate(target)
        assert table.resolve(pointer) is target

    def test_resolve_unbound(self):
        table = PointerTable()
        with pytest.raises(PointerTranslationError, match="unresolved"):
            table.resolve(SymbolicPointer("nowhere", 0))

    def test_bind_for_restore(self):
        capture_side = PointerTable()
        pointer = capture_side.translate("some string", index=4)
        restore_side = PointerTable()
        restore_side.bind(pointer.segment, "some string")
        assert restore_side.resolve_indexed(pointer) == " string"

    def test_resolve_indexed_zero(self):
        table = PointerTable()
        obj = [1, 2, 3]
        pointer = table.translate(obj)
        assert table.resolve_indexed(pointer) is obj

    def test_resolve_indexed_not_indexable(self):
        table = PointerTable()
        pointer = table.translate(42)
        moved = pointer.with_offset(1)
        with pytest.raises(PointerTranslationError, match="not indexable"):
            table.resolve_indexed(moved)

    def test_clear(self):
        table = PointerTable()
        table.translate([1])
        table.clear()
        assert len(table) == 0

    def test_segments_snapshot(self):
        table = PointerTable()
        a, b = [1], [2]
        table.translate(a)
        table.translate(b)
        assert list(table.segments().values()) == [a, b]
