"""Tests for simulated machine architectures (repro.state.machine)."""

import pytest

from repro.errors import MachineCompatibilityError
from repro.state.format import ScalarType, parse_format
from repro.state.machine import MACHINES, Endianness, MachineProfile


class TestProfileConstruction:
    def test_catalogue_is_diverse(self):
        endians = {p.endianness for p in MACHINES.values()}
        int_widths = {p.int_bits for p in MACHINES.values()}
        assert endians == {Endianness.LITTLE, Endianness.BIG}
        assert len(int_widths) >= 2

    def test_bad_int_width(self):
        with pytest.raises(ValueError):
            MachineProfile("x", Endianness.BIG, int_bits=24)

    def test_bad_long_width(self):
        with pytest.raises(ValueError):
            MachineProfile("x", Endianness.BIG, long_bits=128)

    def test_long_narrower_than_int(self):
        with pytest.raises(ValueError):
            MachineProfile("x", Endianness.BIG, int_bits=64, long_bits=32)

    def test_bad_float_width(self):
        with pytest.raises(ValueError):
            MachineProfile("x", Endianness.BIG, float_bits=80)

    def test_describe(self, sparc):
        text = sparc.describe()
        assert "big-endian" in text
        assert "int32" in text


class TestIntRanges:
    def test_int_range_32(self, sparc):
        rng = sparc.int_range("i")
        assert rng.start == -(2**31)
        assert rng.stop == 2**31

    def test_long_range_64(self, sparc):
        rng = sparc.int_range("l")
        assert rng.stop == 2**63

    def test_16bit(self, m68k):
        assert m68k.int_range("i").stop == 2**15


class TestRepresentability:
    def test_int_fits(self, vax):
        vax.check_representable(ScalarType("i"), 2**31 - 1)

    def test_int_overflow(self, vax):
        with pytest.raises(MachineCompatibilityError, match="32-bit"):
            vax.check_representable(ScalarType("i"), 2**31)

    def test_none_always_fits(self, m68k):
        m68k.check_representable(ScalarType("i"), None)

    def test_containers_checked_elementwise(self, vax):
        with pytest.raises(MachineCompatibilityError):
            vax.check_representable(parse_format("[l]")[0], [1, 2**40])

    def test_dict_checked(self, vax):
        with pytest.raises(MachineCompatibilityError):
            vax.check_representable(parse_format("{ll}")[0], {1: 2**40})

    def test_float64_machine_accepts_all(self, sparc):
        sparc.check_representable(ScalarType("F"), 1.1)

    def test_float32_machine_rejects(self, m68k):
        with pytest.raises(MachineCompatibilityError):
            m68k.check_representable(ScalarType("F"), 1.1)

    def test_float32_machine_accepts_nan(self, m68k):
        m68k.check_representable(ScalarType("F"), float("nan"))


class TestNativeImages:
    def test_endianness_differs(self, sparc, vax):
        # The raw memory image of the same value differs across machines:
        # this is why the paper requires an abstract format.
        big = sparc.pack_native(ScalarType("i"), 1)
        little = vax.pack_native(ScalarType("i"), 1)
        assert big != little
        assert big == bytes(reversed(little))

    def test_word_size_differs(self, sparc, vax):
        # sparc-like longs are 8 bytes, vax-like longs 4.
        assert len(sparc.pack_native(ScalarType("l"), 1)) == 8
        assert len(vax.pack_native(ScalarType("l"), 1)) == 4

    @pytest.mark.parametrize("char,value", [
        ("b", True),
        ("i", -123),
        ("l", 2**20),
        ("f", 0.5),
        ("F", 2.5),
        ("s", "hëllo"),
        ("B", b"\x01\x02"),
        ("n", None),
    ])
    def test_pack_unpack_roundtrip(self, sparc, char, value):
        spec = ScalarType(char)
        assert sparc.unpack_native(spec, sparc.pack_native(spec, value)) == value

    def test_pack_checks_range(self, m68k):
        with pytest.raises(MachineCompatibilityError):
            m68k.pack_native(ScalarType("i"), 100000)

    def test_cross_machine_raw_copy_is_wrong(self, sparc, vax):
        # Demonstration of the paper's premise: interpreting one machine's
        # bytes on another machine yields a different value.
        spec = ScalarType("i")
        image = sparc.pack_native(spec, 258)
        assert vax.unpack_native(spec, image) != 258
