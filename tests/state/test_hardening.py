"""Hardening tests: corrupt inputs and defensive limits."""

import pytest

from repro.bus.message import Message
from repro.errors import DecodingError, EncodingError
from repro.state.encoding import Decoder, Encoder, decode_values, encode_values
from repro.state.format import ScalarType
from repro.state.machine import Endianness


class TestDecoderDefenses:
    def test_runaway_varint_rejected(self):
        # A stream of continuation bits must not loop forever.
        poison = b"s" + b"\xff" * 2000
        with pytest.raises(DecodingError):
            decode_values(poison)

    def test_negative_length_impossible(self):
        # Lengths are unsigned varints by construction; a huge announced
        # length hits the truncation guard instead of allocating.
        data = b"B\xff\xff\xff\xff\x0f" + b"x"
        with pytest.raises(DecodingError):
            decode_values(data)

    def test_empty_container_tags(self):
        encoder = Encoder()
        encoder.write(ScalarType("a"), [])
        encoder.write(ScalarType("a"), ())
        encoder.write(ScalarType("a"), {})
        assert Decoder(encoder.getvalue()).read_all() == [[], (), {}]

    def test_encoder_varint_negative_rejected(self):
        encoder = Encoder()
        with pytest.raises(EncodingError):
            encoder._write_varint(-1)


class TestMessageDefenses:
    def test_short_wire_rejected(self):
        with pytest.raises(DecodingError):
            Message.from_wire(encode_values("s", ["only-one"]), None)

    def test_wire_roundtrip_keeps_binary(self):
        payload = bytes(range(256))
        message = Message(values=[payload], fmt="B",
                          source_instance="a", source_interface="x")
        back = Message.from_wire(message.to_wire(None), None)
        assert back.values == [payload]


class TestEndianness:
    def test_struct_prefixes(self):
        assert Endianness.LITTLE.struct_prefix == "<"
        assert Endianness.BIG.struct_prefix == ">"


class TestNestedNullability:
    def test_nested_none_values(self):
        # NULL slots inside containers survive declared formats.
        data = encode_values("[a]", [[None, 1, None]])
        assert decode_values(data) == [[None, 1, None]]

    def test_tuple_with_nones(self):
        data = encode_values("(aa)", [(None, "x")])
        assert decode_values(data) == [(None, "x")]
