"""Tests for heap capture/restore (repro.state.heap)."""

import pytest

from repro.errors import HeapError
from repro.state.encoding import decode_any, encode_any
from repro.state.heap import (
    HeapCodec,
    HeapImage,
    clear_hooks,
    heap_hook,
    registered_hooks,
    run_capture_hook,
    run_restore_hook,
)


@pytest.fixture(autouse=True)
def _clean_hooks():
    clear_hooks()
    yield
    clear_hooks()


class TestHeapCodecScalars:
    def test_scalars_pass_through(self):
        codec = HeapCodec()
        roots = {"a": 1, "b": "x", "c": 2.5, "d": None, "e": True, "f": b"\x01"}
        assert codec.roundtrip(roots) == roots

    def test_empty(self):
        assert HeapCodec().roundtrip({}) == {}


class TestHeapCodecContainers:
    def test_list(self):
        assert HeapCodec().roundtrip({"xs": [1, 2, 3]}) == {"xs": [1, 2, 3]}

    def test_dict(self):
        roots = {"d": {"k": [1, 2], "j": "v"}}
        assert HeapCodec().roundtrip(roots) == roots

    def test_tuple_flattened_in_place(self):
        roots = {"t": (1, (2, 3))}
        assert HeapCodec().roundtrip(roots) == roots

    def test_deep_nesting(self):
        roots = {"x": [{"a": [(1, [2])]}]}
        assert HeapCodec().roundtrip(roots) == roots


class TestAliasingAndCycles:
    def test_shared_list_stays_shared(self):
        shared = [1, 2]
        restored = HeapCodec().roundtrip({"a": shared, "b": shared})
        assert restored["a"] is restored["b"]
        restored["a"].append(3)
        assert restored["b"] == [1, 2, 3]

    def test_distinct_lists_stay_distinct(self):
        restored = HeapCodec().roundtrip({"a": [1], "b": [1]})
        assert restored["a"] is not restored["b"]

    def test_self_cycle(self):
        xs: list = [1]
        xs.append(xs)
        restored = HeapCodec().roundtrip({"xs": xs})
        assert restored["xs"][1] is restored["xs"]

    def test_mutual_cycle(self):
        a: dict = {}
        b = {"a": a}
        a["b"] = b
        restored = HeapCodec().roundtrip({"a": a})
        assert restored["a"]["b"]["a"] is restored["a"]

    def test_image_is_canonically_encodable(self):
        # The flattened image must survive the abstract wire format —
        # that is how heap state crosses machines.
        shared = [1, 2]
        image = HeapCodec().capture({"a": shared, "b": shared})
        wire = encode_any(image.to_abstract())
        rebuilt = HeapCodec().restore(HeapImage.from_abstract(decode_any(wire)))
        assert rebuilt["a"] is rebuilt["b"]


class TestHeapErrors:
    def test_unsupported_type_names_hook(self):
        class Custom:
            pass

        with pytest.raises(HeapError, match="heap_hook"):
            HeapCodec().capture({"x": Custom()})

    def test_malformed_image(self):
        with pytest.raises(HeapError):
            HeapImage.from_abstract("nonsense")

    def test_malformed_image_fields(self):
        with pytest.raises(HeapError):
            HeapImage.from_abstract({"roots": [], "segments": {}})

    def test_dangling_segment(self):
        from repro.state.pointers import SymbolicPointer

        image = HeapImage(roots={"x": SymbolicPointer("heap:9", 0)}, segments={"heap:9": None})
        with pytest.raises(HeapError):
            HeapCodec().restore(image)

    def test_pointer_outside_image_kept_symbolic(self):
        from repro.state.pointers import SymbolicPointer

        pointer = SymbolicPointer("static:x", 0)
        image = HeapCodec().capture({"p": pointer})
        assert HeapCodec().restore(image)["p"] == pointer


class TestProgrammerHooks:
    def test_register_and_run(self):
        class Matrix:
            def __init__(self, rows):
                self.rows = rows

        heap_hook(
            "matrix",
            capture=lambda m: m.rows,
            restore=lambda rows: Matrix(rows),
        )
        assert registered_hooks() == ["matrix"]
        m = Matrix([[1, 2], [3, 4]])
        flat = run_capture_hook("matrix", m)
        assert flat == [[1, 2], [3, 4]]
        rebuilt = run_restore_hook("matrix", flat)
        assert isinstance(rebuilt, Matrix)
        assert rebuilt.rows == m.rows

    def test_missing_hook(self):
        with pytest.raises(HeapError, match="no heap hook"):
            run_capture_hook("nope", object())
