"""Tests for typed format strings (repro.state.format)."""

import pytest

from repro.errors import FormatError
from repro.state.format import (
    DictType,
    ListType,
    ScalarType,
    TupleType,
    check_arity,
    format_of_value,
    iter_scalars,
    parse_format,
    pattern_to_format,
    value_matches,
)
from repro.state.pointers import SymbolicPointer


class TestParseFormat:
    def test_empty(self):
        assert parse_format("") == []

    def test_scalars(self):
        specs = parse_format("bilfFsBpna")
        assert [s.format_char() for s in specs] == list("bilfFsBpna")
        assert all(isinstance(s, ScalarType) for s in specs)

    def test_paper_fmt_llF(self):
        # The exact format from Figure 4: mh_capture("llF", 1, n, response)
        specs = parse_format("llF")
        assert [s.format_char() for s in specs] == ["l", "l", "F"]

    def test_list(self):
        (spec,) = parse_format("[F]")
        assert isinstance(spec, ListType)
        assert spec.element == ScalarType("F")

    def test_nested_list(self):
        (spec,) = parse_format("[[i]]")
        assert spec.format_char() == "[[i]]"

    def test_tuple(self):
        (spec,) = parse_format("(si)")
        assert isinstance(spec, TupleType)
        assert len(spec.elements) == 2

    def test_empty_tuple(self):
        (spec,) = parse_format("()")
        assert isinstance(spec, TupleType)
        assert spec.elements == ()

    def test_dict(self):
        (spec,) = parse_format("{sl}")
        assert isinstance(spec, DictType)
        assert spec.key == ScalarType("s")
        assert spec.value == ScalarType("l")

    def test_mixed_sequence(self):
        specs = parse_format("il[F](si){sa}")
        assert len(specs) == 5

    def test_unknown_char(self):
        with pytest.raises(FormatError):
            parse_format("x")

    def test_unterminated_list(self):
        with pytest.raises(FormatError):
            parse_format("[i")

    def test_unterminated_tuple(self):
        with pytest.raises(FormatError):
            parse_format("(ii")

    def test_unterminated_dict(self):
        with pytest.raises(FormatError):
            parse_format("{si")

    def test_bad_list_close(self):
        with pytest.raises(FormatError):
            parse_format("[ii]")

    def test_roundtrip_format_char(self):
        for fmt in ("i", "[l]", "(sF)", "{s[i]}", "[(bb)]"):
            (spec,) = parse_format(fmt)
            assert spec.format_char() == fmt


class TestPatternToFormat:
    def test_figure2_patterns(self):
        assert pattern_to_format(["integer"]) == "i"
        assert pattern_to_format(["-float"]) == "f"
        assert pattern_to_format(["float"]) == "f"
        assert pattern_to_format(["double"]) == "F"

    def test_multiple(self):
        assert pattern_to_format(["integer", "string"]) == "is"

    def test_unknown_name(self):
        with pytest.raises(FormatError):
            pattern_to_format(["quaternion"])

    def test_case_insensitive(self):
        assert pattern_to_format(["Integer"]) == "i"


class TestFormatOfValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "n"),
            (True, "b"),
            (7, "l"),
            (3.5, "F"),
            ("hi", "s"),
            (b"\x00", "B"),
            ([1, 2], "[l]"),
            ([], "[a]"),
            ([1, "x"], "[a]"),
            ((1, "x"), "(ls)"),
            ({"a": 1}, "{sl}"),
            ({}, "{aa}"),
        ],
    )
    def test_inference(self, value, expected):
        assert format_of_value(value).format_char() == expected

    def test_bool_not_int(self):
        # bool is a subclass of int; inference must pick 'b' first.
        assert format_of_value(True).format_char() == "b"

    def test_pointer(self):
        assert format_of_value(SymbolicPointer("heap:0", 3)).format_char() == "p"

    def test_uninferable(self):
        with pytest.raises(FormatError):
            format_of_value(object())


class TestValueMatches:
    def test_none_matches_everything(self):
        # NULL slots: an unassigned local occupies its declared slot.
        for fmt in ("b", "i", "l", "f", "F", "s", "B", "p", "a", "[i]", "(ss)"):
            (spec,) = parse_format(fmt)
            assert value_matches(spec, None)

    def test_int_not_bool(self):
        (spec,) = parse_format("i")
        assert value_matches(spec, 5)
        assert not value_matches(spec, True)

    def test_float_accepts_int(self):
        (spec,) = parse_format("F")
        assert value_matches(spec, 5)
        assert value_matches(spec, 5.0)

    def test_list_element_check(self):
        (spec,) = parse_format("[i]")
        assert value_matches(spec, [1, 2])
        assert not value_matches(spec, [1, "x"])
        assert not value_matches(spec, (1, 2))

    def test_tuple_arity(self):
        (spec,) = parse_format("(ii)")
        assert value_matches(spec, (1, 2))
        assert not value_matches(spec, (1, 2, 3))

    def test_dict_checks_both(self):
        (spec,) = parse_format("{si}")
        assert value_matches(spec, {"a": 1})
        assert not value_matches(spec, {1: 1})
        assert not value_matches(spec, {"a": "b"})

    def test_any_rejects_uninferable(self):
        (spec,) = parse_format("a")
        assert value_matches(spec, [1, {"k": (1, 2)}])
        assert not value_matches(spec, object())


class TestCheckArity:
    def test_ok(self):
        specs = check_arity("llF", [1, 42, 2.5])
        assert len(specs) == 3

    def test_wrong_count(self):
        with pytest.raises(FormatError, match="declares 3 values but 2"):
            check_arity("llF", [1, 42])

    def test_wrong_type_names_position(self):
        with pytest.raises(FormatError, match="value #1"):
            check_arity("ll", [1, "oops"])


class TestIterScalars:
    def test_flat(self):
        (spec,) = parse_format("i")
        assert [s.char for s in iter_scalars(spec)] == ["i"]

    def test_nested(self):
        (spec,) = parse_format("{s[(iF)]}")
        assert [s.char for s in iter_scalars(spec)] == ["s", "i", "F"]
