"""Tests for the command-line tools (repro.tools)."""

import subprocess
import sys

import pytest

from repro.apps.monitor import COMPUTE_SOURCE, MONITOR_MIL, SENSOR_SOURCE, DISPLAY_SOURCE
from repro.runtime import telemetry
from repro.tools.graph import main as graph_main
from repro.tools.prepare import main as prepare_main
from repro.tools.stats import main as stats_main


@pytest.fixture
def compute_file(tmp_path):
    path = tmp_path / "compute.py"
    path.write_text(COMPUTE_SOURCE)
    return path


class TestPrepareCli:
    def test_prepare_to_stdout(self, compute_file, capsys):
        assert prepare_main([str(compute_file)]) == 0
        out = capsys.readouterr().out
        assert "mh.capturestack" in out
        compile(out, "<cli>", "exec")

    def test_prepare_to_file(self, compute_file, tmp_path):
        output = tmp_path / "compute_r.py"
        assert prepare_main([str(compute_file), "-o", str(output)]) == 0
        text = output.read_text()
        assert "mh.begin_reconfig_capture('R')" in text

    def test_report_flag(self, compute_file, capsys):
        assert prepare_main([str(compute_file), "--report"]) == 0
        err = capsys.readouterr().err
        assert "reconfiguration graph" in err
        assert "liveness" in err

    def test_prune_flag(self, compute_file, capsys):
        assert prepare_main([str(compute_file), "--prune"]) == 0
        out = capsys.readouterr().out
        compile(out, "<cli>", "exec")

    def test_no_points_passthrough(self, tmp_path, capsys):
        path = tmp_path / "plain.py"
        path.write_text("def main():\n    pass\n")
        assert prepare_main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "no reconfiguration points" in captured.err
        assert captured.out == "def main():\n    pass\n"

    def test_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(
            "def main():\n"
            "    with open('x') as f:\n"
            "        pass\n"
            "    mh.reconfig_point('R')\n"
        )
        assert prepare_main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestGraphCli:
    def test_text_output(self, compute_file, capsys):
        assert graph_main([str(compute_file)]) == 0
        out = capsys.readouterr().out
        assert "static call graph" in out
        assert "(4, R)" in out

    def test_dot_output(self, compute_file, capsys):
        assert graph_main([str(compute_file), "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"compute" -> "reconfig"' in out
        assert "doublecircle" in out

    def test_module_without_points(self, tmp_path, capsys):
        path = tmp_path / "plain.py"
        path.write_text("def main():\n    helper()\n\ndef helper():\n    pass\n")
        assert graph_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "no reconfiguration points" in out
        assert "main -> helper" in out

    def test_error_exit(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def main(:\n")
        assert graph_main([str(path)]) == 1


class TestStatsCli:
    @pytest.fixture
    def trace(self, tmp_path):
        """A small two-reconfiguration dump made with the real recorder."""
        recorder = telemetry.enable(capacity=64)
        try:
            with telemetry.span(
                "reconfig.replace", recon="rc-0001", ambient=True, instance="compute"
            ):
                with telemetry.span("stage.commit", instance="compute"):
                    pass
                telemetry.event("fault.fired", site="mh.encode", mode="delay")
            with telemetry.span("reconfig.replace", recon="rc-0002", ambient=True):
                with telemetry.span("stage.rollback"):
                    pass
            telemetry.count("bus.delivered", n=12, key="sensor.out")
            telemetry.count("reconfig.commits")
            telemetry.gauge_max("queue.hwm", 5, key="display.inp")
            path = tmp_path / "trace.jsonl"
            recorder.export_jsonl(str(path))
        finally:
            telemetry.disable()
        return path

    def test_latency_table_and_counters(self, trace, capsys):
        assert stats_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span latency breakdown" in out
        assert "reconfig.replace" in out and "stage.commit" in out
        assert "fault.fired" in out
        assert 'repro_bus_delivered_total{key="sensor.out"} 12' in out
        assert "repro_reconfig_commits_total 1" in out
        assert 'repro_queue_hwm{key="display.inp"} 5' in out
        # the dump is self-describing: how it was recorded rides along
        assert "# recorded with" in out
        assert "sample=1" in out

    def test_tree_and_recon_filter(self, trace, capsys):
        assert stats_main([str(trace), "--tree", "--recon", "rc-0001"]) == 0
        out = capsys.readouterr().out
        assert "reconfig.replace [rc-0001]" in out
        assert "  stage.commit" in out
        assert "rc-0002" not in out.split("# counters")[0]

    def test_json_output_is_machine_readable(self, trace, capsys):
        import json

        assert stats_main([str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["recons"] == ["rc-0001", "rc-0002"]
        assert doc["latency"]["reconfig.replace"]["count"] == 2
        assert doc["counters"]["bus.delivered{sensor.out}"] == 12
        assert doc["meta"]["schema"] == "repro-bench-meta/1"
        assert doc["meta"]["cpus"] is not None
        assert doc["span_count"] == 4 and doc["event_count"] == 1

    def test_prometheus_meta_info_block(self, trace, capsys):
        assert stats_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_meta_info gauge" in out
        assert 'schema="repro-bench-meta/1"' in out
        assert "repro_meta_info{" in out

    def test_health_flag_without_snapshot(self, trace, capsys):
        assert stats_main([str(trace), "--health"]) == 0
        out = capsys.readouterr().out
        assert "# health" in out
        assert "no health snapshot" in out

    def test_missing_file_errors(self, tmp_path, capsys):
        assert stats_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_garbage_line_reports_lineno(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        assert stats_main([str(path)]) == 1
        assert "bad.jsonl:2" in capsys.readouterr().err


@pytest.mark.slow
class TestRunAppCli:
    def test_end_to_end_with_move(self, tmp_path):
        (tmp_path / "compute.py").write_text(COMPUTE_SOURCE)
        (tmp_path / "sensor.py").write_text(SENSOR_SOURCE)
        (tmp_path / "display.py").write_text(DISPLAY_SOURCE)
        mil = MONITOR_MIL.replace('"display.py"', '"display.py"')
        (tmp_path / "monitor.mil").write_text(mil)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.tools.runapp",
                str(tmp_path / "monitor.mil"),
                "--hosts",
                "alpha:sparc-like",
                "beta:vax-like",
                "--move",
                "compute:beta:0.5",
                "--run-for",
                "2.5",
                "--sleep-scale",
                "0.05",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "move of 'compute'" in result.stdout
        assert "alpha -> beta" in result.stdout

    def test_stats_flag_prints_counters_and_dumps_trace(self, tmp_path):
        (tmp_path / "compute.py").write_text(COMPUTE_SOURCE)
        (tmp_path / "sensor.py").write_text(SENSOR_SOURCE)
        (tmp_path / "display.py").write_text(DISPLAY_SOURCE)
        (tmp_path / "monitor.mil").write_text(MONITOR_MIL)
        trace_path = tmp_path / "trace.jsonl"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.tools.runapp",
                str(tmp_path / "monitor.mil"),
                "--run-for",
                "1.0",
                "--sleep-scale",
                "0.05",
                "--stats",
                "--trace-out",
                str(trace_path),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "telemetry counters:" in result.stdout
        assert "repro_bus_delivered_total" in result.stdout
        assert trace_path.exists()
        assert stats_main([str(trace_path)]) == 0
