"""Tests for module-level (no participation) reconfiguration baseline."""

import pytest

from repro.baselines.module_atomic import module_level_replace, wait_for_quiescence
from repro.errors import ReconfigTimeoutError

from tests.conftest import wait_until
from tests.reconfig.helpers import displayed, launch_monitor, wait_displayed


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestQuiescence:
    def test_idle_module_is_quiescent(self, monitor):
        # display's queue drains between requests, sensor's never fills.
        assert wait_for_quiescence(monitor, "sensor", timeout=2)

    def test_flooded_module_never_quiesces(self, monitor):
        # A backlog the module cannot possibly drain within the window:
        # without participation, the platform has no safe moment to act.
        from repro.bus.message import Message

        compute = monitor.get_module("compute")
        compute.queue("sensor").extend(
            [Message(values=[v], fmt="i") for v in range(5000)]
        )
        assert not wait_for_quiescence(monitor, "compute", timeout=0.3)


class TestModuleLevelReplace:
    def test_forced_replace_loses_state(self, monitor):
        wait_displayed(monitor, 2)
        report = module_level_replace(
            monitor, "compute", machine="beta", quiescence_timeout=0.2, force=True
        )
        assert report.state_carried is False
        assert monitor.get_module("compute").host.name == "beta"
        # The application continues — but the interrupted computation was
        # dropped, so (unlike the participation path) progress can show a
        # gap: the in-flight request's response never arrives until the
        # display re-sends.  The fresh module still serves later requests.
        before = len(displayed(monitor))
        assert before >= 2

    def test_refuses_without_force(self, monitor):
        wait_displayed(monitor, 1)
        with pytest.raises(ReconfigTimeoutError):
            module_level_replace(
                monitor,
                "compute",
                machine="beta",
                quiescence_timeout=0.2,
                force=False,
            )

    def test_fresh_module_has_no_carried_statics(self, monitor):
        wait_displayed(monitor, 2)
        monitor.get_module("compute").mh.statics["marker"] = "old-state"
        module_level_replace(
            monitor, "compute", machine="beta", quiescence_timeout=0.2, force=True
        )
        # No divulge/restore happened: statics are empty in the new module.
        assert "marker" not in monitor.get_module("compute").mh.statics

    def test_report_describes_loss(self, monitor):
        wait_displayed(monitor, 1)
        report = module_level_replace(
            monitor, "compute", machine="beta", quiescence_timeout=0.1, force=True
        )
        text = report.describe()
        assert "state carried: no" in text
