"""Tests for the Frieder-Segal procedure-level update baseline."""

import threading
import time

import pytest

from repro.baselines.procedure_update import (
    Procedure,
    ProcedureTable,
    ProcedureUpdater,
    UpdateBlocked,
)


def make_program():
    """main -> worker -> leaf, versioned bodies returning tags."""

    def leaf_v1(table, x):
        return ("leaf-v1", x)

    def worker_v1(table, x):
        return ("worker-v1", table.call("leaf", x))

    def main_v1(table, x):
        return ("main-v1", table.call("worker", x))

    return ProcedureTable(
        [
            Procedure("leaf", leaf_v1, version=1),
            Procedure("worker", worker_v1, version=1, calls={"leaf"}),
            Procedure("main", main_v1, version=1, calls={"worker"}),
        ]
    )


class TestProcedureTable:
    def test_call_through_indirection(self):
        table = make_program()
        assert table.call("main", 7) == ("main-v1", ("worker-v1", ("leaf-v1", 7)))

    def test_versions(self):
        table = make_program()
        assert table.versions() == {"leaf": 1, "worker": 1, "main": 1}

    def test_unknown_callee_rejected(self):
        with pytest.raises(Exception):
            ProcedureTable([Procedure("f", lambda t: None, calls={"ghost"})])

    def test_activity_tracking(self):
        table = make_program()
        started = threading.Event()
        release = threading.Event()

        def slow_leaf(inner_table, x):
            started.set()
            release.wait(5)
            return ("leaf-v1-slow", x)

        table.try_replace(Procedure("leaf", slow_leaf, version=1))
        thread = threading.Thread(target=table.call, args=("main", 1))
        thread.start()
        started.wait(5)
        assert table.is_active("leaf")
        assert table.is_active("main")
        release.set()
        thread.join(5)
        assert not table.is_active("leaf")

    def test_try_replace_refuses_active(self):
        table = make_program()
        started = threading.Event()
        release = threading.Event()

        def slow_leaf(inner_table, x):
            started.set()
            release.wait(5)
            return x

        table.try_replace(Procedure("leaf", slow_leaf, version=1))
        thread = threading.Thread(target=table.call, args=("leaf", 1))
        thread.start()
        started.wait(5)
        assert not table.try_replace(Procedure("leaf", lambda t, x: x, version=2))
        release.set()
        thread.join(5)
        assert table.try_replace(Procedure("leaf", lambda t, x: x, version=2))


class TestBottomUpUpdate:
    def test_update_order_is_bottom_up(self):
        # "they perform the update from the bottom up, by allowing a
        # procedure to be replaced only after all the procedures it
        # invokes have been replaced."
        table = make_program()
        updater = ProcedureUpdater(table)
        order = updater.update(
            {
                "main": Procedure("main", lambda t, x: ("main-v2",), version=2,
                                  calls={"worker"}),
                "worker": Procedure("worker", lambda t, x: ("worker-v2",), version=2,
                                    calls={"leaf"}),
                "leaf": Procedure("leaf", lambda t, x: ("leaf-v2",), version=2),
            }
        )
        assert order == ["leaf", "worker", "main"]
        assert table.versions() == {"leaf": 2, "worker": 2, "main": 2}

    def test_leaf_only_update_quick(self):
        table = make_program()
        updater = ProcedureUpdater(table)
        order = updater.update(
            {"leaf": Procedure("leaf", lambda t, x: ("leaf-v2", x), version=2)}
        )
        assert order == ["leaf"]
        assert table.call("main", 1) == ("main-v1", ("worker-v1", ("leaf-v2", 1)))

    def test_busy_main_blocks_update(self):
        # "when the main procedure has changed, the update cannot complete
        # until the program terminates."
        table = make_program()
        release = threading.Event()
        started = threading.Event()

        def busy_main(inner_table, x):
            started.set()
            release.wait(10)
            return "done"

        table.try_replace(Procedure("main", busy_main, version=1, calls={"worker"}))
        thread = threading.Thread(target=table.call, args=("main", 1))
        thread.start()
        started.wait(5)

        updater = ProcedureUpdater(table)
        begun = time.monotonic()
        with pytest.raises(UpdateBlocked) as info:
            updater.update(
                {"main": Procedure("main", lambda t, x: "v2", version=2,
                                   calls={"worker"})},
                timeout=0.3,
            )
        assert time.monotonic() - begun >= 0.25
        assert info.value.blocked == ["main"]
        release.set()
        thread.join(5)
        # After the program "terminates" the update can finally complete.
        updater.update(
            {"main": Procedure("main", lambda t, x: "v2", version=2,
                               calls={"worker"})},
            timeout=2,
        )
        assert table.version("main") == 2

    def test_recursive_procedures_update_as_group(self):
        def even(table, n):
            return True if n == 0 else table.call("odd", n - 1)

        def odd(table, n):
            return False if n == 0 else table.call("even", n - 1)

        table = ProcedureTable(
            [
                Procedure("even", even, calls={"odd"}),
                Procedure("odd", odd, calls={"even"}),
            ]
        )
        updater = ProcedureUpdater(table)
        order = updater.update(
            {
                "even": Procedure("even", even, version=2, calls={"odd"}),
                "odd": Procedure("odd", odd, version=2, calls={"even"}),
            }
        )
        assert sorted(order) == ["even", "odd"]

    def test_update_log(self):
        table = make_program()
        updater = ProcedureUpdater(table)
        updater.update({"leaf": Procedure("leaf", lambda t, x: x, version=3)})
        assert updater.log == ["replaced leaf -> v3"]
