"""Tests for the Theimer-Hayes migrate-by-recompilation baseline."""

from repro.baselines.migration_program import (
    generate_migration_program,
    run_migration_program,
)
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.refs import Ref

from tests.core.helpers import COMPUTE_SRC, ScriptedPort, capture_compute_mid_recursion


class StoppingPort(ScriptedPort):
    """Stops the module after its first write so tests terminate."""

    def write(self, interface, fmt, values):
        super().write(interface, fmt, values)
        self.mh.stop()


class TestGeneration:
    def test_generation_happens_at_migration_time(self):
        packet, _port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        program = generate_migration_program(COMPUTE_SRC, packet, "compute")
        assert program.generation_seconds > 0
        assert "_run_migration" in program.source

    def test_each_migration_regenerates(self):
        packet, _port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        first = generate_migration_program(COMPUTE_SRC, packet, "compute")
        second = generate_migration_program(COMPUTE_SRC, packet, "compute")
        # Two migrations, two full generation passes — the cost the
        # paper's ahead-of-time preparation avoids.
        assert first.generation_seconds > 0 and second.generation_seconds > 0
        assert first.source == second.source

    def test_program_embeds_state(self):
        packet, _port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        program = generate_migration_program(COMPUTE_SRC, packet, "compute")
        assert repr(packet)[:20] in program.source


class TestExecution:
    def test_migration_program_resumes_correctly(self, vax):
        # Capture after 3 reads (request + 2 sensor values); the target
        # holds the remaining two temperatures.
        packet, port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        program = generate_migration_program(COMPUTE_SRC, packet, "compute")

        mh = MH("compute", vax, status="clone", sleep_policy=SleepPolicy(0.0))
        target = StoppingPort(mh, {"display": [], "sensor": port.queues["sensor"]})
        mh.attach_port(target)
        namespace = {"mh": mh, "Ref": Ref}
        exec(program.code, namespace)
        try:
            namespace["_run_migration"](mh)
        except ModuleStop:
            pass
        assert target.out == [("display", [25.0])]

    def test_run_helper(self, vax):
        packet, port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        program = generate_migration_program(COMPUTE_SRC, packet, "compute")

        class Port:
            """Raises ModuleStop after delivering the resumed answer."""

            def __init__(self):
                self.out = []
                self.queue = list(port.queues["sensor"])

            def read(self, interface, timeout, stop_event):
                return [self.queue.pop(0)]

            def write(self, interface, fmt, values):
                self.out.append((interface, list(values)))
                raise ModuleStop("answer delivered")

            def query_ifmsgs(self, interface):
                return bool(self.queue)

        target = Port()
        try:
            run_migration_program(program, target, vax)
        except ModuleStop:
            pass
        assert target.out == [("display", [25.0])]
