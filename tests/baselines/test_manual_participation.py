"""Tests for the manual-participation baseline ([3]/[6] comparison)."""

import pytest

from repro.baselines.manual_participation import (
    AUTO_WORKER,
    MANUAL_WORKER,
    PLAIN_WORKER,
    participation_line_counts,
)
from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop
from repro.runtime.refs import Ref

from tests.core.helpers import ScriptedPort, run_module


def run_until_writes(source_text, mh, queues, writes):
    port = ScriptedPort(mh, queues)
    port.stop_after_writes = writes
    mh.attach_port(port)
    try:
        run_module(source_text, mh)
    except ModuleStop:
        pass
    return port


class TestManualWorker:
    def test_manual_capture_restore_works(self):
        # The hand-adapted module does participate correctly...
        mh = MH("main")
        port = ScriptedPort(mh, {"inp": [1, 2, 3]})
        mh.attach_port(port)
        mh.request_reconfig()
        run_module(MANUAL_WORKER, mh)
        assert mh.divulged.is_set()

        clone = MH("main", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone_port = run_until_writes(MANUAL_WORKER, clone, {"inp": [1, 2, 3]}, 3)
        assert [v[1][0] for v in clone_port.out] == [1.0, 3.0, 6.0]

    def test_manual_and_automatic_equivalent(self):
        # ...and behaves exactly like the automatically prepared module.
        auto = prepare_module(AUTO_WORKER, "main").source

        mh_manual = MH("main")
        manual_port = run_until_writes(MANUAL_WORKER, mh_manual, {"inp": [5, 7]}, 2)
        mh_auto = MH("main")
        auto_port = run_until_writes(auto, mh_auto, {"inp": [5, 7]}, 2)
        assert manual_port.out == auto_port.out

    def test_automatic_handles_what_manual_cannot(self):
        # The recursive compute module: automatic preparation handles the
        # AR stack; the manual style has no answer short of hand-writing
        # all of Figure 4.
        from tests.core.helpers import COMPUTE_SRC, capture_compute_mid_recursion

        packet, port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        assert packet  # mid-recursion capture achieved automatically


class TestProgrammerBurden:
    def test_line_counts(self):
        counts = participation_line_counts()
        # Manual participation multiplies the module's participation code;
        # automatic preparation needs exactly one marker line.
        assert counts["automatic_participation_lines"] == 1
        assert counts["manual_participation_lines"] >= 10
        assert (
            counts["manual_participation_lines"]
            > 5 * counts["automatic_participation_lines"]
        )

    def test_sources_compile(self):
        for source in (PLAIN_WORKER, MANUAL_WORKER, AUTO_WORKER):
            compile(source, "<worker>", "exec")
