"""Tests for the checkpoint/rollback baseline (repro.baselines.checkpoint)."""

import pytest

from repro.baselines.checkpoint import CheckpointStore, CheckpointedLoop
from repro.errors import RestoreError


def step(state):
    return {"x": state["x"] + 1, "sum": state["sum"] + state["x"]}


class TestCheckpointStore:
    def test_latest(self):
        store = CheckpointStore()
        store.save(0, {"x": 0})
        store.save(5, {"x": 5})
        step_number, state = store.latest()
        assert step_number == 5
        assert state == {"x": 5}

    def test_bounded_retention(self):
        store = CheckpointStore(keep=2)
        for i in range(5):
            store.save(i, {"x": i})
        assert len(store.packets) == 2
        assert store.total_written == 5

    def test_empty_rollback(self):
        with pytest.raises(RestoreError):
            CheckpointStore().latest()


class TestCheckpointedLoop:
    def test_runs_and_checkpoints(self):
        loop = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=10)
        loop.run(25)
        assert loop.state["x"] == 25
        stats = loop.stats()
        assert stats["steps"] == 25
        # initial + steps 10 and 20
        assert stats["checkpoints_written"] == 3

    def test_lost_steps(self):
        loop = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=10)
        loop.run(25)
        assert loop.lost_steps == 5
        loop.run(5)
        assert loop.lost_steps == 0

    def test_migrate_replays_lost_work(self):
        loop = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=10)
        loop.run(27)
        clone = loop.migrate()
        # The clone caught up: identical state, but 7 steps were redone.
        assert clone.state == loop.state
        assert clone.step == loop.step

    def test_migrate_across_machines(self, sparc, vax):
        loop = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=5, machine=sparc)
        loop.run(12)
        clone = loop.migrate(target_machine=vax)
        assert clone.state == loop.state

    def test_interval_one_loses_nothing(self):
        loop = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=1)
        loop.run(13)
        assert loop.lost_steps == 0

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            CheckpointedLoop(step, {}, interval=0)

    def test_overhead_grows_with_frequency(self):
        # The trade-off the paper's approach avoids: more checkpoints,
        # more bytes written during normal execution.
        frequent = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=1)
        rare = CheckpointedLoop(step, {"x": 0, "sum": 0}, interval=100)
        frequent.run(200)
        rare.run(200)
        assert (
            frequent.stats()["checkpoint_bytes"] > rare.stats()["checkpoint_bytes"]
        )
        assert rare.lost_steps >= 0
