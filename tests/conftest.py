"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import time

import pytest

from repro.runtime import telemetry
from repro.state.machine import MACHINES


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Never let one test's flight recorder leak into the next."""
    yield
    if telemetry.recorder is not None:
        telemetry.disable()


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.005):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


@pytest.fixture
def sparc():
    """A big-endian 32/64 machine profile."""
    return MACHINES["sparc-like"]


@pytest.fixture
def vax():
    """A little-endian 32/32 machine profile."""
    return MACHINES["vax-like"]


@pytest.fixture
def m68k():
    """A big-endian 16/32 machine with 32-bit floats (the narrow one)."""
    return MACHINES["m68k-like"]
