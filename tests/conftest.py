"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.runtime import telemetry
from repro.state.machine import MACHINES

#: Default per-test wall-clock budget for the ``watchdog`` fixture.
#: Tests that legitimately run longer (soak) override it per module.
DEFAULT_WATCHDOG_S = 120.0


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Never let one test's flight recorder leak into the next."""
    yield
    if telemetry.recorder is not None:
        telemetry.disable()


@pytest.fixture
def watchdog(request):
    """Hard per-test timeout: a wedged module, worker, or replace must
    fail loudly instead of stalling CI until the job-level timeout.

    Opt in with ``pytest.mark.usefixtures("watchdog")`` (per test or via
    module ``pytestmark``); set a module-level ``WATCHDOG_S`` to change
    the budget.  Uses ``SIGALRM``, so it arms only on platforms that
    have it and only in the main thread — elsewhere it is a no-op
    rather than a collection error.
    """
    seconds = float(getattr(request.module, "WATCHDOG_S", DEFAULT_WATCHDOG_S))
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only fires on hangs
        raise RuntimeError(
            f"{request.node.nodeid} exceeded the {seconds}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    yield
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, previous)


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.005):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


@pytest.fixture
def sparc():
    """A big-endian 32/64 machine profile."""
    return MACHINES["sparc-like"]


@pytest.fixture
def vax():
    """A little-endian 32/32 machine profile."""
    return MACHINES["vax-like"]


@pytest.fixture
def m68k():
    """A big-endian 16/32 machine with 32-bit floats (the narrow one)."""
    return MACHINES["m68k-like"]
