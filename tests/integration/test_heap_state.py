"""Integration: heap state crosses a replacement (paper Section 1.2).

A module keeping a shared, aliased buffer in ``mh.heap`` is captured and
restored: the structure (including aliasing) survives, and a custom
structure travels through programmer-registered hooks.
"""

from repro.core import prepare_module
from repro.runtime.mh import MH

from tests.core.helpers import ScriptedPort, run_module

BUFFERING_SRC = """\
def main():
    value = None
    mh.heap['window'] = []
    mh.heap['by_parity'] = {'even': [], 'odd': []}
    while mh.running:
        mh.reconfig_point('P')
        value = mh.read1('inp')
        mh.heap['window'].append(value)
        if value % 2 == 0:
            mh.heap['by_parity']['even'].append(value)
        else:
            mh.heap['by_parity']['odd'].append(value)
        mh.write('out', 'l', len(mh.heap['window']))
"""


class TestHeapAcrossReplacement:
    def capture_after(self, reads):
        result = prepare_module(BUFFERING_SRC, "buffers")
        mh = MH("buffers")
        port = ScriptedPort(
            mh, {"inp": [1, 2, 3, 4, 5]}, reconfig_after_reads=reads
        )
        mh.attach_port(port)
        run_module(result.source, mh)
        assert mh.divulged.is_set()
        return result, mh, port

    def test_heap_contents_carried(self):
        result, mh, port = self.capture_after(3)
        clone = MH("buffers", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone_port = ScriptedPort(clone, dict(port.queues))
        clone.attach_port(clone_port)
        try:
            run_module(result.source, clone)
        except AssertionError:
            pass  # scripted queue drained
        assert clone.heap["window"] == [1, 2, 3, 4, 5]
        assert clone.heap["by_parity"] == {"even": [2, 4], "odd": [1, 3, 5]}

    def test_aliasing_survives(self):
        result = prepare_module(BUFFERING_SRC, "buffers")
        mh = MH("buffers")
        shared = [10, 20]
        mh.heap["a"] = shared
        mh.heap["b"] = shared
        mh.heap["window"] = []
        mh.heap["by_parity"] = {"even": [], "odd": []}
        port = ScriptedPort(mh, {"inp": [1]}, reconfig_after_reads=1)
        mh.attach_port(port)
        run_module(result.source, mh)

        clone = MH("buffers", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone.attach_port(ScriptedPort(clone, {"inp": []}))
        clone.decode()
        assert clone.heap["a"] is clone.heap["b"]
        clone.heap["a"].append(30)
        assert clone.heap["b"] == [10, 20, 30]

    def test_custom_structure_via_hook(self):
        class RingBuffer:
            def __init__(self, items, capacity):
                self.items = list(items)
                self.capacity = capacity

        def hook_pair():
            return (
                lambda rb: {"items": rb.items, "capacity": rb.capacity},
                lambda raw: RingBuffer(raw["items"], raw["capacity"]),
            )

        result = prepare_module(BUFFERING_SRC, "buffers")
        mh = MH("buffers")
        capture_hook, restore_hook = hook_pair()
        mh.register_heap_hook("ring", capture_hook, restore_hook)
        mh.heap["ring"] = RingBuffer([1, 2], capacity=8)
        port = ScriptedPort(mh, {"inp": [1]}, reconfig_after_reads=1)
        mh.attach_port(port)
        run_module(result.source, mh)

        clone = MH("buffers", status="clone")
        capture_hook2, restore_hook2 = hook_pair()
        clone.register_heap_hook("ring", capture_hook2, restore_hook2)
        clone.incoming_packet = mh.outgoing_packet
        clone.attach_port(ScriptedPort(clone, {"inp": []}))
        clone.decode()
        ring = clone.heap["ring"]
        assert ring.items == [1, 2] and ring.capacity == 8
