"""Integration: heterogeneous moves across every simulated machine pair.

The paper's abstract-state argument is that a module can be moved "to
different architectures".  We move the compute module between hosts of
every architecture pairing (endianness x word size) and verify exact
computational continuity; we also verify that an *unrepresentable* state
is refused with a diagnostic rather than silently corrupted.
"""

import pytest

from repro.errors import MachineCompatibilityError
from repro.state.frames import ProcessState
from repro.state.machine import MACHINES

from tests.core.helpers import capture_compute_mid_recursion, resume_compute

DOUBLE_MACHINES = [name for name, p in MACHINES.items() if p.float_bits == 64]


@pytest.mark.parametrize("source_name", DOUBLE_MACHINES)
@pytest.mark.parametrize("target_name", DOUBLE_MACHINES)
def test_every_machine_pair(source_name, target_name):
    packet, port = capture_compute_mid_recursion(
        n=4, reconfig_after_reads=3, machine=MACHINES[source_name]
    )
    clone_port = resume_compute(
        packet, port.queues["sensor"], machine=MACHINES[target_name]
    )
    assert clone_port.out == [("display", [25.0])]


def test_packet_identical_from_any_source():
    # Canonical means canonical: the abstract packet bytes depend only on
    # the abstract state, not on the capturing machine.  (Timestamps and
    # sequence numbers do not enter process-state packets; the source
    # machine name does, so compare with it normalised.)
    packets = []
    for name in DOUBLE_MACHINES:
        packet, _ = capture_compute_mid_recursion(
            n=3, reconfig_after_reads=2, machine=MACHINES[name]
        )
        state = ProcessState.from_bytes(packet)
        state.source_machine = ""
        packets.append(state.to_bytes())
    assert len(set(packets)) == 1


def test_unrepresentable_state_refused():
    # Capture a frame whose long exceeds the target's 32-bit native long:
    # restoring on vax-like must fail loudly at decode time.
    from repro.runtime.mh import MH

    mh = MH("m", MACHINES["alpha-like"])  # 64-bit source
    mh.begin_reconfig_capture("P")
    mh.capture("main", "ll", 1, 2**40)
    packet = mh.encode()

    clone = MH("m", MACHINES["vax-like"], status="clone")
    clone.incoming_packet = packet
    with pytest.raises(MachineCompatibilityError):
        clone.decode()


def test_refusal_happens_before_any_state_installed():
    from repro.runtime.mh import MH

    mh = MH("m", MACHINES["alpha-like"])
    mh.statics["wide"] = 2**40
    mh.begin_reconfig_capture("P")
    mh.capture("main", "l", 1)
    packet = mh.encode()

    clone = MH("m", MACHINES["vax-like"], status="clone")
    clone.incoming_packet = packet
    with pytest.raises(MachineCompatibilityError):
        clone.decode()
    assert not clone.restoring
    assert clone.statics == {}
