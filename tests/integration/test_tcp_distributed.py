"""Integration: genuine multi-process distribution over TCP.

Each simulated machine is a real OS process; the monitor application's
compute module is moved between processes with its state packet crossing
a real socket.
"""

import time

import pytest

from repro.apps.monitor import build_monitor_configuration
from repro.bus.tcp import DistributedBus

from tests.conftest import wait_until


@pytest.fixture
def distributed():
    config = build_monitor_configuration(
        requests=30, group_size=4, interval=0.03, discard=False
    )
    config.modules["sensor"].attributes["interval"] = "0.002"
    bus = DistributedBus(sleep_scale=1.0)
    bus.spawn_machine("alpha", "sparc-like")
    bus.spawn_machine("beta", "vax-like")
    bus.launch(
        config,
        placement={"display": "alpha", "compute": "alpha", "sensor": "alpha"},
    )
    yield bus
    bus.shutdown()


def displayed(bus):
    return bus.statics_of("display").get("displayed", [])


@pytest.mark.slow
class TestDistributedMove:
    def test_move_between_processes(self, distributed):
        wait_until(lambda: len(displayed(distributed)) >= 2, timeout=40)
        report = distributed.move_module("compute", "beta", timeout=20)
        assert report["from"] == "alpha"
        assert report["to"] == "beta"
        assert report["packet_bytes"] > 0
        wait_until(lambda: len(displayed(distributed)) >= 30, timeout=60)
        values = displayed(distributed)
        expected = [2.5 + 4 * k for k in range(30)]
        assert values == expected
        assert distributed.machine_of("compute") == "beta"

    def test_module_states_queryable(self, distributed):
        wait_until(lambda: len(displayed(distributed)) >= 1, timeout=40)
        assert distributed.state_of("compute") == "running"
        assert distributed.state_of("sensor") == "running"

    def test_same_daemon_replacement(self, distributed):
        # Replace in place (no machine change): the atomic daemon-side
        # swap carries the queues; the stream stays exact.
        wait_until(lambda: len(displayed(distributed)) >= 2, timeout=40)
        report = distributed.replace_module("compute", timeout=20)
        assert report["from"] == report["to"] == "alpha"
        wait_until(lambda: len(displayed(distributed)) >= 12, timeout=60)
        values = displayed(distributed)
        assert values == [2.5 + 4 * k for k in range(len(values))]

    def test_distributed_upgrade(self, distributed):
        # Swap in a compute v2 whose reply is scaled 10x — a visible
        # version change mid-stream, across processes.
        from repro.apps.monitor import COMPUTE_NODISCARD_SOURCE

        v2 = COMPUTE_NODISCARD_SOURCE.replace(
            "mh.write('display', 'F', response.get())",
            "mh.write('display', 'F', response.get() * 10.0)",
        )
        wait_until(lambda: len(displayed(distributed)) >= 2, timeout=40)
        distributed.upgrade_module("compute", v2, machine="beta", timeout=20)
        before = len(displayed(distributed))
        wait_until(lambda: len(displayed(distributed)) >= before + 4, timeout=60)
        values = displayed(distributed)
        cut_found = any(
            all(v == 2.5 + 4 * k for k, v in enumerate(values[:c]))
            and all(
                v == (2.5 + 4 * k) * 10
                for k, v in enumerate(values[c:], start=c)
            )
            for c in range(len(values) + 1)
        )
        assert cut_found, values
