"""Ablation: queue preservation (Figure 5's ``cq``/``rmq`` commands).

Without the ``cq`` copy, messages queued at the old module's interfaces
at replacement time are silently dropped.  This test makes the loss
deterministic: a reconfigurable module that never consumes its input is
replaced while five messages sit in its queue.
"""

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import ModuleSpec
from repro.reconfig.coordinator import ReconfigurationCoordinator

#: A module that idles at its reconfiguration point without reading.
IDLER = """\
def main():
    while mh.running:
        mh.reconfig_point('P')
        mh.sleep(0.01)
"""


@pytest.fixture
def bus():
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("local")
    spec = ModuleSpec(
        name="idler",
        inline_source=IDLER,
        interfaces=[InterfaceDecl("inp", Role.USE, pattern="l")],
        reconfig_points=["P"],
    )
    bus.add_module(spec, machine="local", start=True)
    yield bus
    bus.shutdown()


def queue_five(bus):
    module = bus.get_module("idler")
    for value in range(5):
        module.deliver("inp", Message(values=[value], fmt="l"))
    assert module.queued_counts()["inp"] == 5


class TestQueuePreservation:
    def test_default_preserves_all_queued_messages(self, bus):
        queue_five(bus)
        report = ReconfigurationCoordinator(bus).replace("idler", timeout=10)
        assert report.queued_copied == {"inp": 5}
        new_module = bus.get_module("idler")
        queued = new_module.queue("inp").snapshot()
        assert [m.values[0] for m in queued] == [0, 1, 2, 3, 4]

    def test_ablation_without_cq_loses_messages(self, bus):
        queue_five(bus)
        ReconfigurationCoordinator(bus).replace(
            "idler", timeout=10, preserve_queues=False
        )
        new_module = bus.get_module("idler")
        assert new_module.queued_counts()["inp"] == 0  # five messages gone

    def test_order_preserved_with_concurrent_arrivals(self, bus):
        # Messages arriving at the *clone* after rebinding sit behind the
        # copied (older) ones.
        queue_five(bus)
        coordinator = ReconfigurationCoordinator(bus)
        report = coordinator.replace("idler", timeout=10)
        assert report.queued_copied == {"inp": 5}
        module = bus.get_module("idler")
        module.deliver("inp", Message(values=[99], fmt="l"))
        values = [m.values[0] for m in module.queue("inp").snapshot()]
        assert values == [0, 1, 2, 3, 4, 99]
