"""Integration: capture pruning enabled through the module specification.

Setting the ``prune_dead_captures`` attribute on a module spec turns on
the liveness extension platform-wide for that module: moves still work,
and the state packets are smaller.
"""

import pytest

from repro.reconfig.scripts import move_module
from repro.state.frames import ProcessState

from tests.reconfig.helpers import expected_averages, launch_monitor, wait_displayed


def launch(pruned: bool):
    bus = launch_monitor()
    if pruned:
        # Relaunch with the attribute set (launch_monitor builds fresh).
        bus.shutdown()
        from repro.apps.monitor import build_monitor_configuration
        from repro.bus.bus import SoftwareBus
        from repro.state.machine import MACHINES

        config = build_monitor_configuration(
            requests=30, group_size=4, interval=0.02, discard=False
        )
        config.modules["sensor"].attributes["interval"] = "0.001"
        config.modules["compute"].attributes["prune_dead_captures"] = "true"
        bus = SoftwareBus(sleep_scale=1.0)
        bus.add_host("alpha", MACHINES["sparc-like"])
        bus.add_host("beta", MACHINES["vax-like"])
        bus.launch(config, default_host="alpha")
    return bus


class TestPrunedModuleOnBus:
    def test_pruned_move_is_correct(self):
        bus = launch(pruned=True)
        try:
            wait_displayed(bus, 2)
            report = move_module(bus, "compute", machine="beta", timeout=15)
            assert report.packet_bytes > 0
            values = wait_displayed(bus, 30)
            assert values == expected_averages(30)
        finally:
            bus.shutdown()

    def test_pruned_packets_not_larger(self):
        results = {}
        for pruned in (False, True):
            bus = launch(pruned=pruned)
            try:
                wait_displayed(bus, 2)
                report = move_module(bus, "compute", machine="beta", timeout=15)
                results[pruned] = report.packet_bytes
            finally:
                bus.shutdown()
        assert results[True] <= results[False]

    def test_pruned_transform_recorded_on_instance(self):
        bus = launch(pruned=True)
        try:
            module = bus.get_module("compute")
            assert module.transform is not None
            # Pruned restore arms carry per-edge format checks: one per
            # reconfiguration-graph edge (the no-discard compute has 3).
            assert module.executable_source.count("mh.expect_frame_fmt") >= 3
        finally:
            bus.shutdown()
