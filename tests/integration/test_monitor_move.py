"""Integration: the paper's Section 2 scenario, end to end (FIG1).

The monitor application runs across two simulated machines; the compute
module is moved mid-recursion; no displayed value is lost, duplicated,
or wrong.
"""

import pytest

from repro.reconfig.scripts import move_module, replace_module
from repro.state.frames import ProcessState

from tests.reconfig.helpers import expected_averages, launch_monitor, wait_displayed


@pytest.fixture
def monitor():
    bus = launch_monitor()
    yield bus
    bus.shutdown()


class TestMonitorMove:
    def test_figure1_before_after_topology(self, monitor):
        wait_displayed(monitor, 2)
        before = monitor.snapshot_configuration()
        assert before.instance("compute").machine == "alpha"

        move_module(monitor, "compute", machine="beta", timeout=15)

        after = monitor.snapshot_configuration()
        assert after.instance("compute").machine == "beta"
        # Topology otherwise unchanged: same instances, same bindings.
        assert sorted(i.instance for i in after.instances) == sorted(
            i.instance for i in before.instances
        )
        assert len(after.bindings) == len(before.bindings)

    def test_move_happens_mid_recursion(self, monitor):
        # The defining demonstration: the AR stack is captured "in the
        # midst of these recursive calls" — stack depth > 1.
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        assert report.stack_depth >= 2  # main + at least one compute frame
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)

    def test_no_value_lost_or_duplicated(self, monitor):
        wait_displayed(monitor, 3)
        move_module(monitor, "compute", machine="beta", timeout=15)
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)
        assert len(values) == len(set(values))

    def test_state_packet_crosses_endianness(self, monitor):
        # alpha is big-endian, beta little-endian: the packet decoded on
        # beta must be the exact abstract state captured on alpha.
        wait_displayed(monitor, 2)
        report = move_module(monitor, "compute", machine="beta", timeout=15)
        packet = monitor.get_module("compute").mh.incoming_packet
        assert packet is not None
        state = ProcessState.from_bytes(packet)
        assert state.reconfig_point == "R"
        assert state.source_machine == "alpha"
        assert state.stack.depth == report.stack_depth

    def test_discard_variant_also_moves(self):
        # The faithful Figure 3 module (with the buffer-discard branch)
        # reaches R even while idle, via compute(1, 1, Ref(0.0)).
        bus = launch_monitor(requests=0, discard=True)
        try:
            report = replace_module(bus, "compute", machine="beta", timeout=15)
            assert report.stack_depth >= 2
            assert bus.get_module("compute").host.name == "beta"
        finally:
            bus.shutdown()

    def test_many_consecutive_moves(self, monitor):
        wait_displayed(monitor, 1)
        for target in ("beta", "alpha", "beta", "alpha"):
            move_module(monitor, "compute", machine=target, timeout=15)
        values = wait_displayed(monitor, 30)
        assert values == expected_averages(30)
