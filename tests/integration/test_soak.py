"""Soak test: many reconfigurations under continuous load.

Reconfiguration is not a one-shot capability: a long-running application
may be reconfigured many times over its life (the clone re-arms its
signal handler at the end of restoration, Figure 8).  Ten alternating
moves of the kv shard under a constant request stream must lose nothing
— and neither must a run where every move executes under a seeded fault
schedule, some committing after retries and some aborting with rollback.
"""

import pytest

from repro.apps.kvstore import build_kvstore_configuration, expected_replies
from repro.bus.bus import SoftwareBus
from repro.errors import ReconfigurationAborted
from repro.reconfig.scripts import move_module
from repro.runtime.faults import FaultPlan, fault_plan
from repro.state.machine import MACHINES

from tests.conftest import wait_until
from tests.reconfig.test_fault_injection import CHAOS_SEED
from tests.reconfig.test_fault_properties import RECOVERABLE_SITES

# A hung replace inside a 10-move soak would otherwise stall the whole
# job; the shared watchdog turns it into a loud per-test failure.
pytestmark = pytest.mark.usefixtures("watchdog")
WATCHDOG_S = 600.0


@pytest.mark.slow
def test_ten_moves_under_load():
    puts = 40
    config = build_kvstore_configuration(puts=puts, interval=0.015)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    try:
        def replies():
            return bus.get_module("client").mh.statics.get("replies", [])

        targets = ["beta", "alpha"] * 5
        for index, target in enumerate(targets):
            floor = min(2 * (index + 1), 2 * puts - 4)
            wait_until(lambda f=floor: len(replies()) >= f, timeout=30)
            report = move_module(bus, "shard", machine=target, timeout=15)
            assert report.new_machine == target

        def done():
            bus.check_health()
            return len(replies()) >= 2 * puts

        wait_until(done, timeout=60)
        assert replies() == expected_replies(puts)
        shard = bus.get_module("shard")
        assert shard.mh.statics["serves"] == 2 * puts
        assert shard.mh.heap["store"] == {f"k{i}": f"v{i}" for i in range(puts)}
        # Ten moves happened and are all on the audit trail.
        moves = [line for line in bus.trace if line.startswith("move of")]
        assert len(moves) == 10
    finally:
        bus.shutdown()


def _run_kvstore(puts, rounds=0, seed=0):
    """Run the kvstore to completion, optionally moving the shard
    ``rounds`` times under per-move seeded fault schedules.

    Returns the observable final state (replies, serve count, store
    contents) plus how many moves committed and how many aborted.
    """
    config = build_kvstore_configuration(puts=puts, interval=0.015)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    try:
        def replies():
            return bus.get_module("client").mh.statics.get("replies", [])

        commits = aborts = 0
        targets = ["beta", "alpha"] * (rounds // 2 + 1)
        for index in range(rounds):
            floor = min(2 * (index + 1), 2 * puts - 4)
            wait_until(lambda f=floor: len(replies()) >= f, timeout=30)
            # Each site armed independently with probability 0.2 — the
            # clone-restore sites stay out of the pool because rollback
            # revival shares them (see docs/fault-model.md).
            plan = FaultPlan.seeded(seed + index, rate=0.2, sites=RECOVERABLE_SITES)
            with fault_plan(plan):
                try:
                    report = move_module(bus, "shard", machine=targets[index], timeout=3)
                except ReconfigurationAborted as exc:
                    assert exc.rolled_back
                    aborts += 1
                else:
                    assert report.new_machine == targets[index]
                    commits += 1

        def done():
            bus.check_health()
            return len(replies()) >= 2 * puts

        wait_until(done, timeout=120)
        shard = bus.get_module("shard")
        return {
            "replies": list(replies()),
            "serves": shard.mh.statics["serves"],
            "store": dict(shard.mh.heap["store"]),
            "commits": commits,
            "aborts": aborts,
        }
    finally:
        bus.shutdown()


@pytest.mark.slow
@pytest.mark.chaos
def test_fault_injected_soak_matches_unreconfigured_control():
    """Eight moves under 20%-rate fault schedules, then compare the full
    observable state against a run that never reconfigured at all."""
    puts = 30
    control = _run_kvstore(puts)
    chaotic = _run_kvstore(puts, rounds=8, seed=CHAOS_SEED)
    assert chaotic["commits"] + chaotic["aborts"] == 8
    assert chaotic["commits"] >= 1
    # The whole point: faults changed the *journey* (some moves rolled
    # back), but not a single observable of the application differs.
    assert chaotic["replies"] == control["replies"] == expected_replies(puts)
    assert chaotic["serves"] == control["serves"] == 2 * puts
    assert chaotic["store"] == control["store"]
