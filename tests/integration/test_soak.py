"""Soak test: many reconfigurations under continuous load.

Reconfiguration is not a one-shot capability: a long-running application
may be reconfigured many times over its life (the clone re-arms its
signal handler at the end of restoration, Figure 8).  Ten alternating
moves of the kv shard under a constant request stream must lose nothing.
"""

import pytest

from repro.apps.kvstore import build_kvstore_configuration, expected_replies
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import move_module
from repro.state.machine import MACHINES

from tests.conftest import wait_until


@pytest.mark.slow
def test_ten_moves_under_load():
    puts = 40
    config = build_kvstore_configuration(puts=puts, interval=0.015)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    try:
        def replies():
            return bus.get_module("client").mh.statics.get("replies", [])

        targets = ["beta", "alpha"] * 5
        for index, target in enumerate(targets):
            floor = min(2 * (index + 1), 2 * puts - 4)
            wait_until(lambda f=floor: len(replies()) >= f, timeout=30)
            report = move_module(bus, "shard", machine=target, timeout=15)
            assert report.new_machine == target

        def done():
            bus.check_health()
            return len(replies()) >= 2 * puts

        wait_until(done, timeout=60)
        assert replies() == expected_replies(puts)
        shard = bus.get_module("shard")
        assert shard.mh.statics["serves"] == 2 * puts
        assert shard.mh.heap["store"] == {f"k{i}": f"v{i}" for i in range(puts)}
        # Ten moves happened and are all on the audit trail.
        moves = [line for line in bus.trace if line.startswith("move of")]
        assert len(moves) == 10
    finally:
        bus.shutdown()
