"""Integration: live migration of a stateful key-value shard.

Heap-resident service state (the store dict) plus statics (the request
counter) survive a move; queued requests are carried by the ``cq``
commands; the client's reply stream is gapless and exact.
"""

import pytest

from repro.apps.kvstore import build_kvstore_configuration, expected_replies
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import move_module
from repro.state.machine import MACHINES

from tests.conftest import wait_until


@pytest.fixture
def kvstore():
    config = build_kvstore_configuration(puts=12, interval=0.02)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    yield bus
    bus.shutdown()


def replies(bus):
    return bus.get_module("client").mh.statics.get("replies", [])


class TestShardMigration:
    def test_store_and_counter_survive_move(self, kvstore):
        wait_until(lambda: len(replies(kvstore)) >= 4)
        report = move_module(kvstore, "shard", machine="beta", timeout=15)
        assert report.packet_bytes > 0

        def done():
            kvstore.check_health()
            return len(replies(kvstore)) >= 24

        wait_until(done, timeout=30)
        assert replies(kvstore) == expected_replies(12)

        shard = kvstore.get_module("shard")
        assert shard.host.name == "beta"
        assert shard.mh.statics["serves"] == 24
        assert shard.mh.heap["store"] == {f"k{i}": f"v{i}" for i in range(12)}

    def test_two_moves_mid_script(self, kvstore):
        wait_until(lambda: len(replies(kvstore)) >= 2)
        move_module(kvstore, "shard", machine="beta", timeout=15)
        wait_until(lambda: len(replies(kvstore)) >= 10)
        move_module(kvstore, "shard", machine="alpha", timeout=15)

        def done():
            kvstore.check_health()
            return len(replies(kvstore)) >= 24

        wait_until(done, timeout=30)
        assert replies(kvstore) == expected_replies(12)
        assert kvstore.get_module("shard").host.name == "alpha"
