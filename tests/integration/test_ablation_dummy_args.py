"""Ablation: dummy-argument substitution (paper Section 3, last paragraphs).

"When the original procedure call is repeated during restoration, these
expressions are evaluated with the restored state, and their evaluation
can cause a run-time error that did not arise when they were evaluated
with the original state.  The solution ... is to modify the call by
substituting dummy arguments."

This module constructs exactly that hazard: the callee moves a shared
index out of range before the reconfiguration point, so re-evaluating
the original argument expression ``xs[idx.get()]`` with restored state
faults.  With substitution (the default) restoration succeeds; with the
ablation flag the predicted IndexError occurs.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref

from tests.core.helpers import ScriptedPort, run_module

HAZARD_SRC = """\
def main():
    xs = None
    idx = None
    out = None
    xs = [10, 20, 30]
    idx = Ref(2)
    out = Ref(0)
    consume(xs[idx.get()], idx, out)
    mh.write('out', 'l', out.get())


def consume(value: int, idx: Ref, out: Ref):
    idx.set(99)
    mh.reconfig_point('R')
    out.set(value + 1)
"""


def capture(source_result):
    mh = MH("m")
    port = ScriptedPort(mh, {})
    mh.attach_port(port)
    mh.request_reconfig()
    run_module(source_result.source, mh)
    assert mh.divulged.is_set()
    return mh.outgoing_packet


def restore(source_result, packet):
    clone = MH("m", status="clone")
    clone.incoming_packet = packet
    port = ScriptedPort(clone, {})
    clone.attach_port(port)
    run_module(source_result.source, clone)
    return port.out


class TestDummySubstitution:
    def test_hazard_is_real_without_substitution(self):
        ablated = prepare_module(HAZARD_SRC, "m", substitute_dummies=False)
        packet = capture(ablated)
        with pytest.raises(IndexError):
            restore(ablated, packet)

    def test_substitution_prevents_the_fault(self):
        prepared = prepare_module(HAZARD_SRC, "m")
        packet = capture(prepared)
        out = restore(prepared, packet)
        # xs[2] == 30 was captured in consume's frame; +1 on resume.
        assert out == [("out", [31])]

    def test_generated_redo_call_differs(self):
        prepared = prepare_module(HAZARD_SRC, "m").source
        ablated = prepare_module(HAZARD_SRC, "m", substitute_dummies=False).source
        # The safe version passes a dummy for the subscript expression but
        # keeps the Ref names (pointer chain rebuild).
        assert "consume(0, idx, out)" in prepared
        assert "consume(0, idx, out)" not in ablated

    def test_cross_compatible_packets(self):
        # Substitution changes only the redo call, not the wire format:
        # a packet captured by the ablated module restores fine under the
        # safe module.
        ablated = prepare_module(HAZARD_SRC, "m", substitute_dummies=False)
        safe = prepare_module(HAZARD_SRC, "m")
        packet = capture(ablated)
        assert restore(safe, packet) == [("out", [31])]
