"""Integration: the evolving philosophers problem ([6], Kramer & Magee).

A philosopher is replaced while the dinner runs.  The reconfiguration
point in the thinking phase is the application-level consistency
condition: the philosopher holds no forks and has no outstanding
request, so the change cannot corrupt the table's state.
"""

import pytest

from repro.apps.philosophers import build_philosophers_configuration, meal_counts
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import move_module, replace_module
from repro.state.machine import MACHINES

from tests.conftest import wait_until


@pytest.fixture
def dinner():
    config = build_philosophers_configuration(count=3, think=0.005)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    yield bus
    bus.shutdown()


def wait_meals(bus, minimum, timeout=30):
    def check():
        bus.check_health()
        return all(count >= minimum for count in meal_counts(bus))

    wait_until(check, timeout=timeout)


class TestEvolvingPhilosophers:
    def test_everyone_eats(self, dinner):
        wait_meals(dinner, 2)
        table = dinner.get_module("table").mh.statics
        assert table["grants"] >= 6

    def test_replace_philosopher_mid_dinner(self, dinner):
        wait_meals(dinner, 2)
        meals_before = dinner.get_module("phil1").mh.statics.get("meals", 0)
        report = replace_module(dinner, "phil1", timeout=15)
        assert report.stack_depth == 1  # point is in main: flat capture
        wait_meals(dinner, meals_before + 2)
        meals_after = dinner.get_module("phil1").mh.statics["meals"]
        # The meal counter was part of the captured frame: no reset.
        assert meals_after >= meals_before + 2

    def test_move_philosopher_to_other_machine(self, dinner):
        wait_meals(dinner, 1)
        move_module(dinner, "phil2", machine="beta", timeout=15)
        assert dinner.get_module("phil2").host.name == "beta"
        wait_meals(dinner, 3)

    def test_table_state_consistent_after_change(self, dinner):
        wait_meals(dinner, 2)
        replace_module(dinner, "phil0", timeout=15)
        wait_meals(dinner, 4)
        # If fork bookkeeping had leaked a held fork, some philosopher
        # would starve and wait_meals would time out; additionally, the
        # table must have granted at least as many times as total meals.
        table = dinner.get_module("table").mh.statics
        assert table["grants"] >= sum(meal_counts(dinner))


class TestPerInstanceAttributes:
    def test_attributes_survive_replacement(self, dinner):
        wait_meals(dinner, 1)
        left_before = dinner.get_module("phil1").mh.config["left"]
        replace_module(dinner, "phil1", timeout=15)
        assert dinner.get_module("phil1").mh.config["left"] == left_before
