"""Integration: live software upgrade of a pipeline worker (maintenance).

The paper's motivation: "Dynamic reconfiguration is needed in order to
make changes to very long-running applications or those that must be
continuously available ... to perform software maintenance."
"""

import pytest

from repro.apps.pipeline import (
    WORKER_V2_SOURCE,
    build_pipeline_configuration,
    v1_formula,
    v2_formula,
)
from repro.bus.bus import SoftwareBus
from repro.reconfig.scripts import upgrade_module
from repro.state.machine import MACHINES

from tests.conftest import wait_until


@pytest.fixture
def pipeline():
    config = build_pipeline_configuration(count=40, interval=0.02)
    bus = SoftwareBus(sleep_scale=1.0)
    bus.add_host("alpha", MACHINES["sparc-like"])
    bus.add_host("beta", MACHINES["vax-like"])
    bus.launch(config, default_host="alpha")
    yield bus
    bus.shutdown()


def sink_values(bus: SoftwareBus):
    return bus.get_module("sink").mh.statics.get("values", [])


def wait_sink(bus: SoftwareBus, count: int):
    def check():
        bus.check_health()
        return len(sink_values(bus)) >= count

    wait_until(check, timeout=30)
    return list(sink_values(bus))


class TestLiveUpgrade:
    def test_upgrade_mid_stream(self, pipeline):
        wait_sink(pipeline, 3)
        report = upgrade_module(pipeline, "worker", WORKER_V2_SOURCE, timeout=15)
        assert report.kind == "upgrade"
        values = wait_sink(pipeline, 40)

        # Every reading converted exactly once, in order; the formula
        # switches from v1 to v2 at exactly one cut point.
        assert len(values) == 40
        cuts = [
            k
            for k in range(41)
            if values[:k] == [v1_formula(c) for c in range(k)]
            and values[k:] == [v2_formula(c) for c in range(k, 40)]
        ]
        assert cuts, f"no consistent upgrade cut in {values}"

    def test_upgrade_preserves_statics(self, pipeline):
        wait_sink(pipeline, 3)
        count_before = pipeline.get_module("worker").mh.statics.get("count", 0)
        upgrade_module(pipeline, "worker", WORKER_V2_SOURCE, timeout=15)
        wait_sink(pipeline, 40)
        count_after = pipeline.get_module("worker").mh.statics.get("count", 0)
        assert count_after == 40
        assert count_after >= count_before

    def test_upgrade_can_also_relocate(self, pipeline):
        wait_sink(pipeline, 2)
        upgrade_module(
            pipeline, "worker", WORKER_V2_SOURCE, machine="beta", timeout=15
        )
        assert pipeline.get_module("worker").host.name == "beta"
        values = wait_sink(pipeline, 40)
        assert len(values) == 40
