"""Integration: open files survive replacement via re-attachment hooks.

Paper Section 1.2: file descriptors are kernel state the platform cannot
capture; "the programmer must write code to ... regain access to files."
The ``mh.files`` registry implements that contract: the abstract state
carries each file's path/mode/position, and the clone reopens and seeks.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH, ModuleStop

from tests.core.helpers import ScriptedPort, run_module

LOGGER_SRC = """\
def main():
    value = None
    mh.files.register('log', open(mh.config['log_path'], 'w'))
    while mh.running:
        mh.reconfig_point('P')
        value = mh.read1('inp')
        mh.files.get('log').write(str(value) + '\\n')
"""


class TestFileSurvivesReplacement:
    def test_log_continuous_across_clone(self, tmp_path):
        log_path = tmp_path / "module.log"
        result = prepare_module(LOGGER_SRC, "logger")

        # Original writes three lines, then divulges at P.
        mh = MH("logger")
        mh.config["log_path"] = str(log_path)
        port = ScriptedPort(mh, {"inp": [1, 2, 3]}, reconfig_after_reads=3)
        mh.attach_port(port)
        run_module(result.source, mh)
        assert mh.divulged.is_set()
        mh.files.close_all()

        # Clone reopens the same log (no truncation!) and appends.
        clone = MH("logger", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone.config["log_path"] = str(log_path)
        clone_port = ScriptedPort(clone, {"inp": [4, 5]})
        clone.attach_port(clone_port)

        def stop_when_drained(*args, **kwargs):
            raise ModuleStop("drained")

        try:
            run_module(result.source, clone)
        except (ModuleStop, AssertionError):
            pass  # ScriptedPort raises when the queue drains
        clone.files.close_all()

        lines = log_path.read_text().strip().split("\n")
        assert lines == ["1", "2", "3", "4", "5"]

    def test_position_carried_in_abstract_state(self, tmp_path):
        log_path = tmp_path / "module.log"
        result = prepare_module(LOGGER_SRC, "logger")
        mh = MH("logger")
        mh.config["log_path"] = str(log_path)
        port = ScriptedPort(mh, {"inp": [7]}, reconfig_after_reads=1)
        mh.attach_port(port)
        run_module(result.source, mh)

        from repro.state.frames import ProcessState

        state = ProcessState.from_bytes(mh.outgoing_packet)
        files = state.heap["files"]
        assert len(files) == 1
        assert files[0]["name"] == "log"
        assert files[0]["path"] == str(log_path)
        mh.files.close_all()
