"""Key distributions: seeded determinism, bounds, and shape."""

import pytest

from repro.loadgen.distributions import UniformKeys, ZipfianKeys


def draw(dist, count):
    return [dist.sample() for _ in range(count)]


class TestZipfian:
    def test_seeded_determinism(self):
        a = draw(ZipfianKeys(256, theta=0.99, seed=42), 2000)
        b = draw(ZipfianKeys(256, theta=0.99, seed=42), 2000)
        assert a == b

    def test_different_seeds_differ(self):
        a = draw(ZipfianKeys(256, theta=0.99, seed=1), 500)
        b = draw(ZipfianKeys(256, theta=0.99, seed=2), 500)
        assert a != b

    def test_bounds(self):
        for key in draw(ZipfianKeys(16, theta=1.2, seed=3), 5000):
            assert 0 <= key < 16

    def test_skew_shape(self):
        # theta=0.99 over 256 keys: rank 0 carries ~16% of the mass
        # (1 / H_256(0.99)); rank 200 carries ~0.08%.  Loose factors so
        # the check is about shape, not sampling noise.
        counts = [0] * 256
        for key in draw(ZipfianKeys(256, theta=0.99, seed=7), 30_000):
            counts[key] += 1
        assert counts[0] > 5 * counts[50] > 0
        assert counts[0] > sum(counts) * 0.10
        top10 = sum(sorted(counts, reverse=True)[:10])
        assert top10 > sum(counts) * 0.30

    def test_theta_zero_is_uniform(self):
        counts = [0] * 8
        for key in draw(ZipfianKeys(8, theta=0.0, seed=11), 16_000):
            counts[key] += 1
        assert max(counts) < 2 * min(counts)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(4, theta=-0.1)


class TestUniform:
    def test_seeded_determinism_and_bounds(self):
        a = draw(UniformKeys(64, seed=5), 1000)
        b = draw(UniformKeys(64, seed=5), 1000)
        assert a == b
        assert all(0 <= key < 64 for key in a)
        assert len(set(a)) > 32  # actually spreads over the space

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformKeys(0)
