"""Load smoke tier: `pytest -m load` — invariants through replace().

Small module counts and short measured intervals (a few seconds per
workload) so CI can afford this on every run; the full-size numbers live
in ``benchmarks/bench_l1_reconfig_under_load.py``.  Each test drives a
production-shaped workload through a live replace and asserts the cheap
invariants:

- no message loss or duplication across the replace (``verify()``
  raises ``LoadInvariantError`` otherwise, with conserved counts in the
  returned stats);
- traffic flows on both sides of the replace (before/after windows are
  non-empty);
- bounded max stall — no session goes silent longer than
  ``STALL_CEILING_MS`` at any point in the run;
- during-window p99 within a *generous* multiple of steady state (the
  bound guards against a wedged replace, not against noise on a busy
  single-core runner).
"""

import pytest

from repro.loadgen import (
    FanoutMonitorWorkload,
    KvZipfianWorkload,
    PipelineWorkload,
    run_under_load,
)

pytestmark = [pytest.mark.load, pytest.mark.usefixtures("watchdog")]

WATCHDOG_S = 300.0
SEED = 1993

#: No session may go silent longer than this, anywhere in the run.
STALL_CEILING_MS = 5000.0
#: during-p99 must stay under max(this multiple of before-p99, the
#: absolute floor) — generous on purpose; the replace itself is ~10ms.
DURING_P99_MULTIPLE = 50.0
DURING_P99_FLOOR_MS = 250.0


def run_smoke(workload):
    return run_under_load(workload, warmup_s=0.3, measure_s=1.5, replaces=1)


def assert_invariants(result):
    invariants = result["invariants"]
    assert invariants["no_loss"] and invariants["no_duplication"]
    assert invariants["sent"] == invariants["received"] > 0

    windows = result["windows"]
    assert windows["before"]["count"] > 0, "no steady-state traffic"
    assert windows["after"]["count"] > 0, "traffic did not resume after replace"
    assert result["max_stall_ms"] < STALL_CEILING_MS

    if windows["during"]["count"]:
        ceiling = max(
            windows["before"]["p99_ms"] * DURING_P99_MULTIPLE,
            DURING_P99_FLOOR_MS,
        )
        assert windows["during"]["p99_ms"] < ceiling

    replace = result["replaces"][0]
    assert not replace["aborted"]
    assert replace["blocked_messages"] >= 0


def test_kv_zipfian_replace_under_load():
    result = run_smoke(
        KvZipfianWorkload(shards=2, sessions=4, keys=128, seed=SEED)
    )
    assert_invariants(result)
    stats = result["invariants"]
    # Conservation: every request reached its shard exactly once.
    assert stats["serves_by_shard"] == stats["sent_by_shard"]


def test_pipeline_replace_mid_stream():
    result = run_smoke(PipelineWorkload(stages=3, rate_per_s=200.0, seed=SEED))
    assert_invariants(result)
    stats = result["invariants"]
    # Every stage relayed every message exactly once — the replaced
    # middle stage included.
    assert stats["relayed_by_stage"] == [stats["sent"]] * 3


def test_fanout_hub_replace_with_100_plus_checkable_deliveries():
    result = run_smoke(
        FanoutMonitorWorkload(monitors=16, rate_per_s=150.0, seed=SEED)
    )
    assert_invariants(result)
    stats = result["invariants"]
    # Every monitor saw every reading exactly once.
    assert stats["monitor_seen_min"] == stats["monitor_seen_max"] == stats["sent"]


def test_replace_windows_resolve_to_merged_traces(tmp_path):
    """Every replace window's recon_id resolves to a complete trace.

    The under-load harness reports one ``recon_id`` per replace window;
    with the recorder on, each id must name a complete merged span tree
    — single ``reconfig.replace`` root, the transaction stages under it,
    no orphan spans — so an operator can go straight from a latency blip
    in the load report to the causal trace of the replace that caused it.
    """
    from repro.runtime import telemetry
    from repro.tools import stats

    rec = telemetry.enable(capacity=16384)
    try:
        result = run_smoke(
            PipelineWorkload(stages=3, rate_per_s=200.0, seed=SEED)
        )
        assert_invariants(result)
        path = tmp_path / "load-trace.jsonl"
        rec.export_jsonl(str(path))
    finally:
        telemetry.disable()

    records = stats.load_records(str(path))
    assert result["replaces"], "no replace windows in the result"
    for row in result["replaces"]:
        recon = row["recon_id"]
        spans, _, _ = stats.split_records(records, recon=recon)
        roots = [s for s in spans if s.get("parent") is None]
        assert [s["name"] for s in roots] == ["reconfig.replace"], (
            f"{recon}: expected a single replace root, got {roots}"
        )
        sids = {s["sid"] for s in spans}
        orphans = [
            s["name"]
            for s in spans
            if s.get("parent") is not None and s["parent"] not in sids
        ]
        assert not orphans, f"{recon}: orphan spans {orphans}"
        names = {s["name"] for s in spans}
        assert {"stage.signal", "stage.rebind", "stage.commit"} <= names, (
            f"{recon}: stage spans missing from {sorted(names)}"
        )
