"""Tests for the load-generation + reconfiguration-under-load harness."""
