"""Histogram/percentile math: golden values, boundaries, and properties.

The load harness publishes percentiles with a stated accuracy contract
(``src/repro/loadgen/histogram.py``): values below 128 are exact, and in
general the nearest-rank estimate ``est`` for true sample ``s``
satisfies ``s <= est <= s + max(1, s >> 6)``.  These tests hold the
implementation to that contract with known sample sets, bucket-boundary
cases, and Hypothesis comparisons against ``statistics.quantiles``.
"""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen.histogram import (
    SUB_BITS,
    SUBBUCKETS,
    LatencyHistogram,
    bucket_high,
    bucket_index,
    bucket_low,
)


def nearest_rank(samples, percent):
    """The reference definition the histogram approximates."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * percent / 100.0))
    return ordered[rank - 1]


def contract_bound(s):
    """Largest value the histogram may report for true sample ``s``."""
    return s + max(1, s >> SUB_BITS)


class TestBuckets:
    def test_values_below_128_get_unit_buckets(self):
        for value in range(2 * SUBBUCKETS):
            index = bucket_index(value)
            assert bucket_low(index) == value
            assert bucket_high(index) == value

    def test_boundary_128_starts_width_two_buckets(self):
        index = bucket_index(128)
        assert (bucket_low(index), bucket_high(index)) == (128, 129)
        assert bucket_index(129) == index
        assert bucket_index(130) == index + 1

    def test_power_of_two_boundaries(self):
        # At every power of two the bucket width doubles; the value
        # itself is always a bucket's low edge.
        for exponent in range(7, 40):
            value = 1 << exponent
            index = bucket_index(value)
            assert bucket_low(index) == value
            width = bucket_high(index) - bucket_low(index) + 1
            assert width == 1 << (exponent - SUB_BITS)

    def test_index_is_monotone_and_consistent(self):
        previous = -1
        for value in list(range(0, 4096)) + [10**6, 10**9, 10**12]:
            index = bucket_index(value)
            assert bucket_low(index) <= value <= bucket_high(index)
            assert index >= previous
            previous = index

    def test_relative_width_bounded(self):
        for value in [130, 1000, 12345, 10**6, 10**9, 10**12]:
            index = bucket_index(value)
            width = bucket_high(index) - bucket_low(index)
            assert width <= bucket_low(index) >> SUB_BITS

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(-1)


class TestGoldenPercentiles:
    def test_one_to_hundred_is_exact(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record_value(value)
        assert histogram.percentile_value(50) == 50
        assert histogram.percentile_value(99) == 99
        assert histogram.percentile_value(99.9) == 100
        assert histogram.percentile_value(100) == 100

    def test_small_set_nearest_rank(self):
        histogram = LatencyHistogram.of([])
        for value in (10, 20, 30, 40):
            histogram.record_value(value)
        # rank = ceil(4 * 50/100) = 2 -> second smallest
        assert histogram.percentile_value(50) == 20
        assert histogram.percentile_value(75) == 30
        assert histogram.percentile_value(76) == 40

    def test_heavy_tail_within_contract(self):
        histogram = LatencyHistogram()
        for _ in range(990):
            histogram.record_value(100)  # exact region
        for _ in range(10):
            histogram.record_value(50_000)
        assert histogram.percentile_value(50) == 100
        assert histogram.percentile_value(99) == 100
        p999 = histogram.percentile_value(99.9)
        assert 50_000 <= p999 <= contract_bound(50_000)
        assert histogram.percentile_value(100) == 50_000  # clamped to max

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record_value(7_777_777)
        for percent in (0.001, 50, 99.9, 100):
            assert histogram.percentile_value(percent) == 7_777_777

    def test_empty_and_invalid(self):
        histogram = LatencyHistogram()
        assert histogram.percentile_value(99) == 0
        assert histogram.summary_ms() == {"count": 0}
        with pytest.raises(ValueError):
            histogram.percentile_value(0)
        with pytest.raises(ValueError):
            histogram.percentile_value(100.1)

    def test_mean_min_max_are_exact(self):
        values = [3, 50_000, 129, 1_000_000, 3]
        histogram = LatencyHistogram()
        for value in values:
            histogram.record_value(value)
        assert histogram.count == len(values)
        assert histogram.min_value == min(values)
        assert histogram.max_value == max(values)
        assert histogram.mean_value == pytest.approx(sum(values) / len(values))

    def test_merge_matches_combined_recording(self):
        left, right, combined = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for value in (1, 200, 90_000):
            left.record_value(value)
            combined.record_value(value)
        for value in (5, 300, 1_000_000):
            right.record_value(value)
            combined.record_value(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.buckets() == combined.buckets()
        for percent in (50, 99, 99.9):
            assert left.percentile_value(percent) == combined.percentile_value(
                percent
            )

    def test_seconds_api_round_trips_ms_summary(self):
        histogram = LatencyHistogram.of([0.001] * 99 + [0.5])
        summary = histogram.summary_ms()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(1.0, rel=0.02)
        assert summary["p99_ms"] == pytest.approx(1.0, rel=0.02)
        assert summary["max_ms"] == pytest.approx(500.0, rel=0.02)


@settings(deadline=None, max_examples=100, database=None)
@given(
    samples=st.lists(st.integers(0, 10**10), min_size=1, max_size=300),
    percent=st.sampled_from([1.0, 50.0, 90.0, 99.0, 99.9, 100.0]),
)
def test_percentile_accuracy_contract(samples, percent):
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record_value(value)
    true = nearest_rank(samples, percent)
    estimate = histogram.percentile_value(percent)
    assert true <= estimate <= contract_bound(true)


@settings(deadline=None, max_examples=100, database=None)
@given(
    samples=st.lists(st.integers(0, 10**9), min_size=2, max_size=200),
    percent=st.integers(1, 99),
)
def test_percentile_brackets_statistics_quantiles(samples, percent):
    """The estimate and ``statistics.quantiles`` agree up to one
    inter-order-statistic gap plus the histogram's 1/64 bucket error."""
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record_value(value)
    ordered = sorted(samples)
    reference = statistics.quantiles(ordered, n=100, method="inclusive")[
        percent - 1
    ]
    position = (len(ordered) - 1) * percent / 100.0
    low = ordered[math.floor(position)]
    high = ordered[math.ceil(position)]
    # Both the interpolated quantile and our nearest-rank estimate live
    # in the same order-statistic bracket (the estimate may additionally
    # overshoot by the bucket width).
    assert low <= reference <= high
    assert low <= histogram.percentile_value(percent) <= contract_bound(high)
