"""Window segmentation and stall attribution: pure-function semantics.

These pin the driver's arithmetic without spinning up a bus: which
window a sample lands in, how a per-session silent gap is attributed,
and the shape of the per-workload result block the benchmark publishes.
"""

import pytest

from repro.loadgen.driver import (
    WINDOWS,
    build_result,
    classify_sample,
    max_stalls,
    segment_windows,
    summarize_windows,
)
from repro.loadgen.workloads import ReplaceOutcome


def outcome(t_start, t_end, index=0):
    return ReplaceOutcome(index=index, machine="beta", t_start=t_start, t_end=t_end)


class TestClassify:
    def test_windows_relative_to_span(self):
        # Replace span [10, 12]: completion strictly before 10 is
        # "before"; send strictly after 12 is "after"; anything
        # overlapping the span is "during".
        assert classify_sample(8.0, 9.0, 10.0, 12.0) == "before"
        assert classify_sample(13.0, 14.0, 10.0, 12.0) == "after"
        assert classify_sample(9.0, 11.0, 10.0, 12.0) == "during"
        assert classify_sample(11.0, 11.5, 10.0, 12.0) == "during"
        assert classify_sample(9.0, 13.0, 10.0, 12.0) == "during"

    def test_boundaries_count_as_during(self):
        # A completion at exactly the replace start (or a send at
        # exactly its end) experienced the replace.
        assert classify_sample(9.0, 10.0, 10.0, 12.0) == "during"
        assert classify_sample(12.0, 12.5, 10.0, 12.0) == "during"

    def test_segment_partitions_every_sample(self):
        samples = [
            (0, 8.0, 8.5),  # before
            (1, 9.9, 10.5),  # during (recv after span start)
            (0, 11.0, 11.1),  # during
            (1, 12.1, 12.2),  # after
        ]
        windows = segment_windows(samples, 10.0, 12.0)
        assert [len(windows[name]) for name in WINDOWS] == [1, 2, 1]
        assert sum(len(windows[name]) for name in WINDOWS) == len(samples)


class TestMaxStalls:
    def test_gap_attributed_to_window_of_its_end(self):
        # Session 0 completes at 9, then goes silent through the replace
        # until 11.5: a 2.5s gap ending in "during".
        samples = [(0, 8.9, 9.0), (0, 9.1, 11.5), (0, 11.6, 11.7)]
        stalls = max_stalls(samples, t_measure_start=8.0, t_first_start=10.0, t_last_end=12.0)
        assert stalls["during"] == 2.5
        assert stalls["before"] == 1.0  # measure start 8.0 -> first completion 9.0
        assert stalls["after"] == 0.0

    def test_clock_starts_at_measure_start(self):
        # A session whose first completion only lands after the replace
        # has stalled since measurement began, not since its own start.
        samples = [(0, 8.0, 13.0)]
        stalls = max_stalls(samples, t_measure_start=8.0, t_first_start=10.0, t_last_end=12.0)
        assert stalls["after"] == 5.0

    def test_tail_gap_not_counted(self):
        # Nothing after the last completion: quiesce is not a stall.
        samples = [(0, 8.0, 8.2)]
        stalls = max_stalls(samples, t_measure_start=8.0, t_first_start=100.0, t_last_end=101.0)
        assert stalls["before"] == pytest.approx(0.2)
        assert stalls["during"] == 0.0
        assert stalls["after"] == 0.0

    def test_sessions_tracked_independently(self):
        # Session 1's long gap must not be diluted by session 0's steady
        # completions.
        samples = [(0, t / 10, t / 10 + 0.05) for t in range(100, 120)]
        samples += [(1, 10.0, 10.1), (1, 10.2, 11.9)]
        stalls = max_stalls(samples, t_measure_start=10.0, t_first_start=10.5, t_last_end=11.0)
        assert stalls["after"] == pytest.approx(1.8)


class TestSummaries:
    def test_no_replace_means_everything_is_before(self):
        samples = [(0, 1.0, 1.1), (0, 1.2, 1.3)]
        summary = summarize_windows(samples, replaces=[], t_measure_start=1.0)
        assert summary["before"]["count"] == 2
        assert summary["during"] == {"count": 0, "max_stall_ms": 0.0}
        assert summary["after"] == {"count": 0, "max_stall_ms": 0.0}

    def test_latency_measured_from_send_time(self):
        # 100ms latency either side of a replace at [2.0, 2.1].
        samples = [(0, 1.0, 1.1), (0, 3.0, 3.1)]
        summary = summarize_windows(
            samples, replaces=[outcome(2.0, 2.1)], t_measure_start=1.0
        )
        assert summary["before"]["count"] == 1
        assert summary["after"]["count"] == 1
        assert abs(summary["before"]["p50_ms"] - 100.0) < 2.0
        assert abs(summary["after"]["p50_ms"] - 100.0) < 2.0

    def test_multi_replace_span_is_one_during_window(self):
        samples = [(0, 1.0, 1.1), (0, 2.5, 2.6), (0, 5.0, 5.1)]
        replaces = [outcome(2.0, 2.1, index=0), outcome(4.0, 4.1, index=1)]
        summary = summarize_windows(samples, replaces, t_measure_start=1.0)
        # The sample between the two replaces counts as "during": the
        # system was mid-reconfiguration-campaign.
        assert summary["before"]["count"] == 1
        assert summary["during"]["count"] == 1
        assert summary["after"]["count"] == 1


class _StubWorkload:
    """Just enough surface for build_result's schema."""

    name = "stub"
    target = "shard_0"

    def __init__(self, replaces):
        self.replaces = replaces

    def params(self):
        return {"generator": "stub"}


class TestResultSchema:
    def test_build_result_block(self):
        replace = outcome(2.0, 2.5)
        replace.index = 0
        workload = _StubWorkload([replace])
        samples = [(0, 1.0, 1.2), (0, 2.1, 2.6), (0, 3.0, 3.1)]
        result = build_result(
            workload,
            samples,
            t_measure_start=1.0,
            t_drained=4.0,
            invariants={"no_loss": True},
        )
        assert result["workload"] == "stub"
        assert result["ops"] == 3
        assert result["throughput_ops_per_s"] == 1.0
        assert set(result["windows"]) == set(WINDOWS)
        for block in result["windows"].values():
            assert "count" in block and "max_stall_ms" in block
        assert result["max_stall_ms"] >= 0
        assert result["blocked_messages"] == 0
        assert result["replaces"][0]["offset_ms"] == 1000.0
        assert result["invariants"] == {"no_loss": True}
