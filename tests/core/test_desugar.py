"""Tests for for-range desugaring (repro.core.desugar)."""

import ast

import pytest

from repro.core.desugar import desugar_for_range


def run_fn(source: str, name: str = "f", *args):
    namespace: dict = {}
    exec(compile(source, "<test>", "exec"), namespace)
    return namespace[name](*args)


def desugared_source(source: str) -> str:
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    new_fn = desugar_for_range(fn)
    module = ast.Module(body=[new_fn], type_ignores=[])
    return ast.unparse(ast.fix_missing_locations(module))


def assert_equivalent(source: str, *argsets):
    """The desugared function must behave exactly like the original."""
    new_source = desugared_source(source)
    assert "for " not in new_source
    for args in argsets:
        assert run_fn(new_source, "f", *args) == run_fn(source, "f", *args)


class TestEquivalence:
    def test_one_arg_range(self):
        assert_equivalent(
            "def f(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n",
            (0,), (1,), (5,), (100,),
        )

    def test_two_arg_range(self):
        assert_equivalent(
            "def f(a, b):\n"
            "    out = []\n"
            "    for i in range(a, b):\n"
            "        out.append(i)\n"
            "    return out\n",
            (0, 5), (3, 3), (5, 2), (-3, 2),
        )

    def test_step_range(self):
        assert_equivalent(
            "def f(a, b, c):\n"
            "    out = []\n"
            "    for i in range(a, b, c):\n"
            "        out.append(i)\n"
            "    return out\n",
            (0, 10, 2), (10, 0, -3), (0, 10, 3), (5, 5, 1), (0, 1, 10),
        )

    def test_continue_semantics(self):
        assert_equivalent(
            "def f(n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        if i % 2 == 0:\n"
            "            continue\n"
            "        out.append(i)\n"
            "    return out\n",
            (0,), (7,), (10,),
        )

    def test_break_semantics(self):
        assert_equivalent(
            "def f(n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        if i == 3:\n"
            "            break\n"
            "        out.append(i)\n"
            "    return out\n",
            (0,), (2,), (10,),
        )

    def test_nested_ranges(self):
        assert_equivalent(
            "def f(n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        for j in range(i):\n"
            "            out.append((i, j))\n"
            "    return out\n",
            (0,), (4,),
        )

    def test_loop_var_visible_after_loop(self):
        assert_equivalent(
            "def f(n):\n"
            "    i = -1\n"
            "    for i in range(n):\n"
            "        pass\n"
            "    return i\n",
            (0,), (3,),
        )

    def test_bounds_evaluated_once(self):
        # The stop expression must be evaluated exactly once, like range().
        source = (
            "def f(xs):\n"
            "    count = 0\n"
            "    for i in range(len(xs)):\n"
            "        xs.append(i)\n"
            "        count += 1\n"
            "    return count\n"
        )
        assert run_fn(desugared_source(source), "f", [1, 2, 3]) == 3


class TestGeneratedState:
    def test_loop_state_is_plain_ints(self):
        # The generated cursor variables must be ordinary locals so they
        # land in the frame layout and survive capture.
        text = desugared_source(
            "def f(n):\n    for i in range(n):\n        pass\n"
        )
        assert "_mh_fr0_next" in text
        assert "_mh_fr0_stop" in text
        assert "_mh_fr0_step" in text

    def test_distinct_loops_distinct_temps(self):
        text = desugared_source(
            "def f(n):\n"
            "    for i in range(n):\n"
            "        pass\n"
            "    for j in range(n):\n"
            "        pass\n"
        )
        assert "_mh_fr0_next" in text and "_mh_fr1_next" in text

    def test_non_range_for_raises(self):
        from repro.errors import TransformError

        tree = ast.parse("def f(xs):\n    for x in xs:\n        pass\n")
        with pytest.raises(TransformError):
            desugar_for_range(tree.body[0])

    def test_original_untouched(self):
        tree = ast.parse("def f(n):\n    for i in range(n):\n        pass\n")
        fn = tree.body[0]
        desugar_for_range(fn)
        assert isinstance(fn.body[0], ast.For)  # deep copy, not mutation
