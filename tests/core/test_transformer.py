"""End-to-end tests for prepare_module (repro.core.transformer)."""

import pytest

from repro.core import prepare_module
from repro.errors import ReconfigGraphError, TransformError, UnsupportedConstructError
from repro.runtime.mh import MH
from repro.runtime.refs import Ref
from repro.state.machine import MACHINES

from tests.core.helpers import (
    COMPUTE_SRC,
    FIGURE6_SRC,
    ScriptedPort,
    capture_compute_mid_recursion,
    resume_compute,
    run_module,
)


class TestFigure4Structure:
    """The transformed compute module mirrors Figure 4 structurally."""

    def test_main_has_two_capture_blocks(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        assert result.reports["main"].call_capture_blocks == 2
        assert result.reports["main"].reconfig_capture_blocks == 0

    def test_compute_has_one_of_each(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        assert result.reports["compute"].call_capture_blocks == 1
        assert result.reports["compute"].reconfig_capture_blocks == 1

    def test_both_have_restore_blocks(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        assert result.reports["main"].has_restore_block
        assert result.reports["compute"].has_restore_block

    def test_clone_check_only_in_main(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        assert result.source.count("mh.getstatus() == 'clone'") == 1

    def test_compute_fmt_matches_frame(self):
        # Paper: mh_capture("lllF", ...) — ours is 'lll' + pointee 'a' +
        # local 'a' ('a' because rp: Ref is untyped and temper unannotated).
        result = prepare_module(COMPUTE_SRC, "compute")
        assert result.reports["compute"].fmt == "lllaa"
        assert result.reports["compute"].variables == ["num", "n", "rp", "temper"]

    def test_describe_mentions_edges(self):
        text = prepare_module(COMPUTE_SRC, "compute").describe()
        assert "(4, R)" in text
        assert "capture block" in text

    def test_output_carries_graph_comment(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        assert "# Reconfiguration graph:" in result.source

    def test_output_compiles(self):
        result = prepare_module(COMPUTE_SRC, "compute")
        compile(result.source, "<x>", "exec")


class TestNoPointsPassthrough:
    def test_module_without_points_untouched(self):
        source = "def main():\n    pass\n"
        result = prepare_module(source, "m")
        assert not result.is_reconfigurable
        assert result.source == source
        assert result.reports == {}


class TestDeclaredPoints:
    def test_matching_declaration_ok(self):
        prepare_module(COMPUTE_SRC, "compute", declared_points=["R"])

    def test_mismatch_rejected(self):
        with pytest.raises(TransformError, match="do not match"):
            prepare_module(COMPUTE_SRC, "compute", declared_points=["R", "S"])

    def test_missing_marker_rejected(self):
        with pytest.raises(TransformError, match="do not match"):
            prepare_module("def main():\n    pass\n", "m", declared_points=["R"])


class TestErrors:
    def test_syntax_error(self):
        with pytest.raises(TransformError, match="does not parse"):
            prepare_module("def main(:\n", "m")

    def test_unsupported_construct_surfaces(self):
        source = (
            "def main():\n"
            "    with open('x') as f:\n"
            "        pass\n"
            "    mh.reconfig_point('R')\n"
        )
        with pytest.raises(UnsupportedConstructError):
            prepare_module(source, "m")

    def test_unreachable_point(self):
        source = "def main():\n    pass\n\ndef lost():\n    mh.reconfig_point('R')\n"
        with pytest.raises(ReconfigGraphError):
            prepare_module(source, "m")


class TestMidRecursionCapture:
    @pytest.mark.parametrize("reads_before_capture", [1, 2, 3, 4])
    def test_resume_completes_average(self, reads_before_capture):
        # Interrupt the recursive average after k sensor reads; the clone
        # must consume exactly the remaining values and produce the exact
        # uninterrupted result.
        n = 4
        packet, port = capture_compute_mid_recursion(
            n=n, reconfig_after_reads=reads_before_capture
        )
        consumed_sensor = reads_before_capture - 1  # first read is the request
        remaining = port.queues["sensor"]
        assert len(remaining) == n - consumed_sensor
        clone_port = resume_compute(packet, remaining)
        expected = sum(range(10, 10 * (n + 1), 10)) / n
        assert clone_port.out == [("display", [expected])]

    @pytest.mark.parametrize("depth", [1, 2, 8, 50, 200])
    def test_deep_recursion(self, depth):
        # The signal must land while at least one reconfiguration-point
        # check is still ahead in this request: after the LAST sensor
        # read there is no further check until the next request, so for
        # depth 1 the signal is raised during the request read instead.
        packet, port = capture_compute_mid_recursion(
            n=depth, reconfig_after_reads=1 if depth == 1 else 2
        )
        from repro.state.frames import ProcessState

        state = ProcessState.from_bytes(packet)
        # Stack: main + one compute frame per pending recursion level.
        assert state.stack.depth >= 2
        clone_port = resume_compute(packet, port.queues["sensor"])
        expected = sum(range(10, 10 * (depth + 1), 10)) / depth
        (iface, values) = clone_port.out[0]
        assert iface == "display"
        assert values[0] == pytest.approx(expected)

    def test_cross_machine_capture_restore(self, sparc, vax):
        packet, port = capture_compute_mid_recursion(
            n=4, reconfig_after_reads=3, machine=sparc
        )
        clone_port = resume_compute(packet, port.queues["sensor"], machine=vax)
        assert clone_port.out == [("display", [25.0])]

    def test_repeated_reconfigurations(self):
        # Capture, restore, capture the clone again, restore again.
        packet, port = capture_compute_mid_recursion(n=6, reconfig_after_reads=2)
        result = prepare_module(COMPUTE_SRC, "compute")

        mh2 = MH("compute", status="clone")
        mh2.incoming_packet = packet
        port2 = ScriptedPort(mh2, {"display": [], "sensor": port.queues["sensor"]},
                             reconfig_after_reads=2)
        mh2.attach_port(port2)
        run_module(result.source, mh2)
        assert mh2.divulged.is_set()

        clone_port = resume_compute(mh2.outgoing_packet, port2.queues["sensor"])
        expected = sum(range(10, 70, 10)) / 6
        assert clone_port.out == [("display", [pytest.approx(expected)])]


class TestMultiplePoints:
    def test_figure6_shape(self):
        result = prepare_module(FIGURE6_SRC, "sample")
        assert set(result.reports) == {"main", "a", "b"}
        assert result.reports["a"].reconfig_capture_blocks == 1
        assert result.reports["b"].reconfig_capture_blocks == 1
        # main's three call sites are shared capture blocks: "reconfiguration
        # points can share capture blocks."
        assert result.reports["main"].call_capture_blocks == 3

    def test_version_mismatch_detected_at_restore(self):
        # Capture with the original, restore with a structurally different
        # version: the clone must fail loudly, not corrupt state.
        result_v1 = prepare_module(COMPUTE_SRC, "compute")
        mh = MH("compute")
        port = ScriptedPort(mh, {"display": [3], "sensor": [10, 20, 30]},
                            reconfig_after_reads=2)
        mh.attach_port(port)
        run_module(result_v1.source, mh)
        packet = mh.outgoing_packet

        V2 = COMPUTE_SRC.replace(
            "def compute(num: int, n: int, rp: Ref):",
            "def compute(num: int, n: int, rp: Ref):\n    extra = 1",
        )
        result_v2 = prepare_module(V2, "compute")
        mh2 = MH("compute", status="clone")
        mh2.incoming_packet = packet
        port2 = ScriptedPort(mh2, {"display": [], "sensor": [30]})
        mh2.attach_port(port2)
        from repro.errors import RestoreError, CaptureError

        with pytest.raises((RestoreError, CaptureError, IndexError, Exception)):
            run_module(result_v2.source, mh2)
