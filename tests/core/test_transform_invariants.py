"""Invariants of the transformation output."""

import ast

import pytest

from repro.core import prepare_module
from repro.core.callgraph import build_call_graph
from repro.core.recongraph import find_reconfig_points

from tests.core.helpers import COMPUTE_SRC, FIGURE6_SRC


def marker_statements(source: str):
    return find_reconfig_points(build_call_graph(ast.parse(source)))


class TestMarkerConsumption:
    def test_transformed_source_has_no_markers_left(self):
        # The marker statements are *replaced* by capture blocks: running
        # prepare_module on its own output finds nothing to prepare.
        result = prepare_module(COMPUTE_SRC, "compute")
        assert marker_statements(result.source) == []
        again = prepare_module(result.source, "compute")
        assert not again.is_reconfigurable
        assert again.source == result.source

    def test_figure6_markers_consumed_too(self):
        result = prepare_module(FIGURE6_SRC, "sample")
        assert marker_statements(result.source) == []


class TestDeterminism:
    def test_transformation_is_deterministic(self):
        first = prepare_module(COMPUTE_SRC, "compute").source
        second = prepare_module(COMPUTE_SRC, "compute").source
        assert first == second

    def test_pruned_transformation_is_deterministic(self):
        first = prepare_module(COMPUTE_SRC, "compute", prune_dead_captures=True)
        second = prepare_module(COMPUTE_SRC, "compute", prune_dead_captures=True)
        assert first.source == second.source

    def test_edge_numbering_stable_under_unrelated_edits(self):
        # Adding a helper procedure off the point paths must not renumber
        # the reconfiguration edges (version compatibility depends on it).
        extended = COMPUTE_SRC + "\n\ndef helper(v):\n    return v * 2\n"
        base = prepare_module(COMPUTE_SRC, "compute")
        edited = prepare_module(extended, "compute")
        assert [
            (e.number, e.kind, e.source) for e in base.recon_graph.edges
        ] == [(e.number, e.kind, e.source) for e in edited.recon_graph.edges]


class TestReportCompleteness:
    def test_every_instrumented_procedure_reported(self):
        result = prepare_module(FIGURE6_SRC, "sample")
        assert set(result.reports) == set(result.recon_graph.procedures())
        for name, report in result.reports.items():
            assert report.block_count > 0
            assert report.fmt.startswith("l")
            assert result.layouts[name].names() == report.variables

    def test_liveness_reported_per_edge(self):
        result = prepare_module(FIGURE6_SRC, "sample")
        for name in result.reports:
            edges = result.recon_graph.edges_from(name)
            assert len(result.liveness[name].edges) == len(edges)
