"""Behavioural tests for modules with multiple reconfiguration points.

Section 3: "A program may have more than one reconfiguration point; in
such a case ... all reconfiguration points can share the same capture
and restore blocks" (for the call edges).  These tests interrupt the
same program at each of its points and check exact continuation.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.state.frames import ProcessState

from tests.core.helpers import ScriptedPort, run_module

TWO_POINTS_SRC = """\
def main():
    total = None
    item = None
    total = 0
    item = mh.read1('inp')
    while item >= 0:
        total = stage_a(total, item)
        total = stage_b(total, item)
        item = mh.read1('inp')
    mh.write('out', 'l', total)


def stage_a(total: int, item: int):
    mh.reconfig_point('A')
    return total + item


def stage_b(total: int, item: int):
    mh.reconfig_point('B')
    return total + item * 10
"""

#: inputs terminated by -1; expected: sum(item) + 10*sum(item)
INPUTS = [3, 5, 2, -1]
EXPECTED = sum(i for i in INPUTS if i >= 0) * 11


def interrupt_after(reads: int):
    result = prepare_module(TWO_POINTS_SRC, "m")
    mh = MH("m")
    port = ScriptedPort(mh, {"inp": list(INPUTS)}, reconfig_after_reads=reads)
    mh.attach_port(port)
    run_module(result.source, mh)
    assert mh.divulged.is_set()
    return result, mh, port


class TestTwoPoints:
    def test_structure(self):
        result = prepare_module(TWO_POINTS_SRC, "m")
        assert set(result.reports) == {"main", "stage_a", "stage_b"}
        assert result.reports["stage_a"].reconfig_capture_blocks == 1
        assert result.reports["stage_b"].reconfig_capture_blocks == 1
        assert result.reports["main"].call_capture_blocks == 2
        assert result.recon_graph.point_labels() == ["A", "B"]

    @pytest.mark.parametrize("reads", [1, 2, 3])
    def test_interrupt_anywhere_resumes_exactly(self, reads):
        result, mh, port = interrupt_after(reads)
        clone = MH("m", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone_port = ScriptedPort(clone, dict(port.queues))
        clone.attach_port(clone_port)
        run_module(result.source, clone)
        assert clone_port.out == [("out", [EXPECTED])]

    def test_captured_point_label_identifies_which_point(self):
        # After read k the next capture happens at A (the first point
        # reached in the loop body).
        _result, mh, _port = interrupt_after(1)
        state = ProcessState.from_bytes(mh.outgoing_packet)
        assert state.reconfig_point == "A"
        assert state.stack.call_chain() == ["main", "stage_a"]

    def test_point_b_reachable_too(self):
        # Signal raised while stage_a executes is honoured at the *next*
        # point; starting the signal between A and B lands on B.  We
        # emulate by signalling inside stage_a's read... simpler: signal
        # immediately — the first point reached from a cold start is A;
        # from a restored state before B it is B.  Interrupt at A, then
        # interrupt the clone again: its next point is B.
        result, mh, port = interrupt_after(1)
        clone = MH("m", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone.request_reconfig()  # second reconfiguration, immediately
        clone_port = ScriptedPort(clone, dict(port.queues))
        clone.attach_port(clone_port)
        run_module(result.source, clone)
        assert clone.divulged.is_set()
        state = ProcessState.from_bytes(clone.outgoing_packet)
        assert state.reconfig_point == "B"

        final = MH("m", status="clone")
        final.incoming_packet = clone.outgoing_packet
        final_port = ScriptedPort(final, dict(clone_port.queues))
        final.attach_port(final_port)
        run_module(result.source, final)
        assert final_port.out == [("out", [EXPECTED])]
