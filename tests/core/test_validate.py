"""Tests for the supported-subset validator (repro.core.validate)."""

import ast

import pytest

from repro.core.callgraph import build_call_graph
from repro.core.recongraph import build_reconfiguration_graph
from repro.core.validate import (
    check_instrumented,
    check_module_level,
    require_valid,
)
from repro.errors import UnsupportedConstructError


def diagnostics_for(body: str) -> list:
    """Wrap a body into an instrumented procedure and validate it."""
    source = (
        "def main():\n"
        + "".join(f"    {line}\n" for line in body.split("\n"))
        + "    mh.reconfig_point('R')\n"
    )
    tree = ast.parse(source)
    call_graph = build_call_graph(tree)
    recon = build_reconfiguration_graph(call_graph)
    return check_instrumented(call_graph, recon)


def assert_rejected(body: str, fragment: str):
    diagnostics = diagnostics_for(body)
    assert diagnostics, f"expected a diagnostic for: {body!r}"
    assert any(fragment in str(d) for d in diagnostics), diagnostics


class TestBannedStatements:
    def test_try(self):
        assert_rejected("try:\n    pass\nexcept Exception:\n    pass", "try/except")

    def test_with(self):
        assert_rejected("with open('x') as f:\n    pass", "mh.files")

    def test_nested_def(self):
        assert_rejected("def inner():\n    pass", "nested procedure")

    def test_class(self):
        assert_rejected("class C:\n    pass", "class definitions")

    def test_global(self):
        assert_rejected("global x", "mh.statics")

    def test_nonlocal(self):
        # nonlocal outside a nested function is a syntax error, so check
        # the table instead.
        from repro.core.validate import _BANNED_STMTS

        assert ast.Nonlocal in _BANNED_STMTS

    def test_delete(self):
        assert_rejected("x = 1\ndel x", "frame layout")

    def test_import(self):
        assert_rejected("import os", "module level")

    def test_loop_else(self):
        assert_rejected("while False:\n    pass\nelse:\n    pass", "else-clauses")


class TestBannedExpressions:
    def test_lambda(self):
        assert_rejected("f = lambda x: x", "scopes invisible")

    def test_yield_makes_generator(self):
        # A yield turns main into a generator: structurally rejected.
        diagnostics = diagnostics_for("x = 1\nif False:\n    yield x")
        assert diagnostics

    def test_walrus(self):
        assert_rejected("if (x := 1):\n    pass", "walrus")


class TestForLoops:
    def test_range_ok(self):
        assert diagnostics_for("for i in range(3):\n    pass") == []

    def test_range_with_args_ok(self):
        assert diagnostics_for("for i in range(0, 10, 2):\n    pass") == []

    def test_arbitrary_iterable_rejected(self):
        assert_rejected("for x in [1, 2]:\n    pass", "range")

    def test_tuple_target_rejected(self):
        assert_rejected("for a, b in range(3):\n    pass", "single name")

    def test_range_keyword_rejected(self):
        assert_rejected("for i in range(stop=3):\n    pass", "range")


class TestInstrumentedCallShape:
    def make(self, main_body: str) -> list:
        source = (
            "def main():\n"
            + "".join(f"    {line}\n" for line in main_body.split("\n"))
            + "\n"
            "def f(x: int):\n"
            "    mh.reconfig_point('R')\n"
            "    return x\n"
        )
        tree = ast.parse(source)
        call_graph = build_call_graph(tree)
        recon = build_reconfiguration_graph(call_graph)
        return check_instrumented(call_graph, recon)

    def test_statement_call_ok(self):
        assert self.make("f(1)") == []

    def test_assignment_call_ok(self):
        assert self.make("x = f(1)") == []

    def test_nested_call_rejected(self):
        diagnostics = self.make("x = f(1) + 1")
        assert any("whole statement" in str(d) for d in diagnostics)

    def test_call_in_condition_rejected(self):
        diagnostics = self.make("if f(1):\n    pass")
        assert any("whole statement" in str(d) for d in diagnostics)

    def test_two_calls_one_stmt_rejected(self):
        diagnostics = self.make("x = f(f(1))")
        assert any("whole statement" in str(d) for d in diagnostics)

    def test_keyword_args_rejected(self):
        diagnostics = self.make("f(x=1)")
        assert any("positional" in str(d) for d in diagnostics)

    def test_starred_args_rejected(self):
        diagnostics = self.make("args = [1]\nf(*args)")
        assert any(
            "starred" in str(d) or "whole statement" in str(d)
            for d in diagnostics
        )

    def test_tuple_target_rejected(self):
        diagnostics = self.make("x, y = f(1), 2")
        assert diagnostics

    def test_call_to_uninstrumented_unrestricted(self):
        # Calls to helpers outside the reconfiguration graph are free.
        source = (
            "def main():\n"
            "    x = helper(1) + helper(2)\n"
            "    mh.reconfig_point('R')\n"
            "\n"
            "def helper(v):\n"
            "    return v\n"
        )
        tree = ast.parse(source)
        call_graph = build_call_graph(tree)
        recon = build_reconfiguration_graph(call_graph)
        assert check_instrumented(call_graph, recon) == []


class TestSignatures:
    def make(self, signature: str) -> list:
        source = (
            f"def main():\n    leaf(1)\n\n"
            f"def leaf{signature}:\n    mh.reconfig_point('R')\n"
        )
        tree = ast.parse(source)
        call_graph = build_call_graph(tree)
        recon = build_reconfiguration_graph(call_graph)
        return check_instrumented(call_graph, recon)

    def test_plain_ok(self):
        assert self.make("(x)") == []

    def test_default_ok(self):
        assert self.make("(x=0)") == []

    def test_varargs_rejected(self):
        assert any("fixed frame" in str(d) for d in self.make("(*args)"))

    def test_kwargs_rejected(self):
        assert any("fixed frame" in str(d) for d in self.make("(**kw)"))

    def test_kwonly_rejected(self):
        assert any("keyword-only" in str(d) for d in self.make("(x, *, y=1)"))


class TestModuleLevel:
    def test_async_def_rejected(self):
        tree = ast.parse("async def main():\n    pass\n")
        assert check_module_level(tree)

    def test_plain_module_ok(self):
        tree = ast.parse("import os\nX = 1\n\ndef main():\n    pass\n")
        assert check_module_level(tree) == []


class TestRequireValid:
    def test_raises_with_line(self):
        diagnostics = diagnostics_for("global x")
        with pytest.raises(UnsupportedConstructError) as info:
            require_valid(diagnostics)
        assert info.value.lineno > 0

    def test_empty_passes(self):
        require_valid([])

    def test_many_diagnostics_truncated(self):
        diagnostics = diagnostics_for("\n".join(["global x"] * 12))
        with pytest.raises(UnsupportedConstructError, match="more"):
            require_valid(diagnostics)
