"""Property-based tests of the reconfiguration-graph construction.

The paper's defining law (Section 3): the reconfiguration graph spans
exactly the procedures on paths from ``main`` to a procedure containing
a reconfiguration point.  We generate random call structures and check
the law, plus the numbering invariants, against the independent
ground truth computed from the generated call matrix with networkx.
"""

import ast

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.callgraph import build_call_graph
from repro.core.recongraph import RECONFIG_NODE, build_reconfiguration_graph
from repro.errors import ReconfigGraphError


def _truth_graph(edges, main_calls, count):
    truth = nx.DiGraph()
    truth.add_node("main")
    for index in range(count):
        truth.add_node(f"f{index}")
    for target in main_calls:
        truth.add_edge("main", f"f{target}")
    for caller, callee in edges:
        truth.add_edge(f"f{caller}", f"f{callee}")
    return truth


@st.composite
def random_programs(draw):
    """A random program: main + f0..f{n-1} with forward calls.

    Calls go only from lower to higher indices (plus optional direct
    self-recursion), so generated programs terminate trivially and the
    call matrix doubles as ground truth.
    """
    count = draw(st.integers(min_value=2, max_value=8))
    edges = set()
    for caller in range(count):
        callees = draw(
            st.lists(
                st.integers(min_value=caller + 1, max_value=count - 1),
                max_size=3,
            )
            if caller + 1 <= count - 1
            else st.just([])
        )
        for callee in callees:
            edges.add((caller, callee))
    main_calls = draw(
        st.lists(st.integers(min_value=0, max_value=count - 1), min_size=1,
                 max_size=3)
    )
    point_holders = draw(
        st.lists(st.integers(min_value=0, max_value=count - 1), min_size=1,
                 max_size=2, unique=True)
    )

    lines = ["def main():"]
    for target in main_calls:
        lines.append(f"    f{target}(0)")
    lines.append("")
    for index in range(count):
        lines.append(f"def f{index}(x: int):")
        body = []
        if index in point_holders:
            body.append(f"    mh.reconfig_point('P{index}')")
        for caller, callee in sorted(edges):
            if caller == index:
                body.append(f"    f{callee}(x + 1)")
        if not body:
            body.append("    return x")
        lines.extend(body)
        lines.append("")
    source = "\n".join(lines)
    return source, edges, main_calls, point_holders, count


@given(random_programs())
@settings(max_examples=120, deadline=None)
def test_node_set_law(program):
    source, edges, main_calls, point_holders, count = program
    tree = ast.parse(source)
    call_graph = build_call_graph(tree)

    truth = _truth_graph(edges, main_calls, count)
    reachable = {"main"} | nx.descendants(truth, "main")
    points = {f"f{i}" for i in point_holders}

    if points - reachable:
        # A point in dead code is a configuration error, by design.
        with pytest.raises(ReconfigGraphError, match="unreachable"):
            build_reconfiguration_graph(call_graph)
        return
    recon = build_reconfiguration_graph(call_graph)
    reaches_point = set()
    for node in truth.nodes:
        if node in points or any(
            nx.has_path(truth, node, point) for point in points
        ):
            reaches_point.add(node)

    expected_nodes = (reachable & reaches_point) | {"main"}
    assert set(recon.nodes) == expected_nodes

    # Numbering: consecutive from 1, one reconfig edge per reachable point.
    assert [e.number for e in recon.edges] == list(range(1, len(recon.edges) + 1))
    reachable_points = points & reachable
    assert len(recon.reconfig_edges()) == len(reachable_points)
    for edge in recon.reconfig_edges():
        assert edge.target == RECONFIG_NODE
        assert edge.source in expected_nodes

    # Every call edge of the reconfiguration graph joins two graph nodes
    # and corresponds to a real call site.
    for edge in recon.call_edges():
        assert edge.source in expected_nodes
        assert edge.target in expected_nodes
        assert edge.call_site is not None
        assert edge.call_site.callee == edge.target


@given(random_programs())
@settings(max_examples=60, deadline=None)
def test_every_possible_stack_is_instrumented(program):
    """Any stack alive at a capture is a path main -> ... -> point-holder;
    every node on every such path must be in the reconfiguration graph."""
    source, edges, main_calls, point_holders, count = program
    tree = ast.parse(source)
    call_graph = build_call_graph(tree)

    truth = _truth_graph(edges, main_calls, count)
    reachable = {"main"} | nx.descendants(truth, "main")
    if {f"f{i}" for i in point_holders} - reachable:
        return  # rejected configuration, covered by test_node_set_law
    recon = build_reconfiguration_graph(call_graph)

    for point in point_holders:
        holder = f"f{point}"
        if holder not in truth or not nx.has_path(truth, "main", holder):
            continue
        for path in nx.all_simple_paths(truth, "main", holder):
            for node in path:
                assert recon.is_instrumented(node), (path, node)
