"""Tests for frame layout analysis (repro.core.varinfo)."""

import ast

import pytest

from repro.core.varinfo import VarKind, analyze_frame
from repro.errors import TransformError


def layout_of(source: str):
    tree = ast.parse(source)
    return analyze_frame(tree.body[0])


class TestParams:
    def test_plain_params(self):
        layout = layout_of("def f(a, b):\n    pass\n")
        assert [(v.name, v.kind) for v in layout.variables] == [
            ("a", VarKind.PARAM),
            ("b", VarKind.PARAM),
        ]

    def test_annotated_chars(self):
        layout = layout_of("def f(a: int, b: float, c: str, d: bool):\n    pass\n")
        assert [v.fmt_char for v in layout.variables] == ["l", "F", "s", "b"]

    def test_ref_param(self):
        layout = layout_of("def f(rp: Ref):\n    pass\n")
        assert layout.variables[0].kind == VarKind.REF_PARAM

    def test_ref_param_typed_pointee(self):
        layout = layout_of("def f(rp: Ref[float]):\n    pass\n")
        var = layout.variables[0]
        assert var.kind == VarKind.REF_PARAM
        assert var.fmt_char == "F"

    def test_unknown_annotation_is_any(self):
        layout = layout_of("def f(x: list):\n    pass\n")
        assert layout.variables[0].fmt_char == "a"

    def test_paper_compute_fmt(self):
        # compute(num: int, n: int, rp: Ref) + local temper -> 'l' + lll?a
        layout = layout_of(
            "def compute(num: int, n: int, rp: Ref):\n"
            "    temper = None\n"
        )
        assert layout.fmt == "lllaa"
        assert layout.names() == ["num", "n", "rp", "temper"]


class TestLocals:
    def test_locals_in_first_binding_order(self):
        layout = layout_of(
            "def f():\n"
            "    b = 1\n"
            "    a = 2\n"
            "    b = a\n"
        )
        assert layout.local_names() == ["b", "a"]

    def test_augassign_binds(self):
        layout = layout_of("def f():\n    x = 0\n    x += 1\n")
        assert layout.local_names() == ["x"]

    def test_for_target_binds(self):
        layout = layout_of("def f():\n    for i in range(3):\n        pass\n")
        assert "i" in layout.local_names()

    def test_tuple_unpack_binds_all(self):
        layout = layout_of("def f():\n    a, b = 1, 2\n")
        assert layout.local_names() == ["a", "b"]

    def test_subscript_store_is_not_local(self):
        layout = layout_of("def f(d):\n    d['k'] = 1\n")
        assert layout.local_names() == []

    def test_attribute_store_is_not_local(self):
        layout = layout_of("def f(o):\n    o.attr = 1\n")
        assert layout.local_names() == []


class TestRefLocals:
    def test_ref_constructor_marks_ref_local(self):
        layout = layout_of("def f():\n    cell = Ref(0.0)\n")
        assert layout.variables[0].kind == VarKind.REF_LOCAL

    def test_mixed_binding_rejected(self):
        with pytest.raises(TransformError, match="separate names"):
            layout_of("def f():\n    x = Ref(0.0)\n    x = 1\n")

    def test_param_rebound_to_ref_rejected(self):
        with pytest.raises(TransformError, match="annotate"):
            layout_of("def f(x):\n    x = Ref(0.0)\n")


class TestCaptureRestoreExprs:
    def test_plain(self):
        layout = layout_of("def f(x):\n    pass\n")
        var = layout.variable("x")
        assert var.capture_expr() == "x"
        assert var.restore_stmt("_v[1]") == "x = _v[1]"

    def test_ref_param(self):
        layout = layout_of("def f(rp: Ref):\n    pass\n")
        var = layout.variable("rp")
        assert var.capture_expr() == "rp.get()"
        assert var.restore_stmt("_v[1]") == "rp.set(_v[1])"

    def test_ref_local(self):
        layout = layout_of("def f():\n    cell = Ref(0)\n")
        var = layout.variable("cell")
        assert var.capture_expr() == "mh.pack_ref(cell)"
        assert var.restore_stmt("_v[1]") == "cell = mh.unpack_ref(_v[1])"

    def test_unknown_name(self):
        layout = layout_of("def f():\n    pass\n")
        with pytest.raises(TransformError):
            layout.variable("ghost")


class TestFmtString:
    def test_leading_location_char(self):
        layout = layout_of("def f(a: int):\n    pass\n")
        assert layout.fmt.startswith("l")
        assert layout.fmt == "ll"

    def test_ref_local_is_any(self):
        layout = layout_of("def f():\n    cell = Ref(0)\n")
        assert layout.fmt == "la"

    def test_param_and_local_split(self):
        layout = layout_of("def f(a, b: Ref):\n    c = 1\n")
        assert layout.param_names() == ["a", "b"]
        assert layout.local_names() == ["c"]
