"""Diagnostics when capture cannot represent a value.

The abstract state can only carry representable values; a module that
parks an arbitrary Python object in a captured local gets a *located*
error naming the procedure, not a corrupt packet.
"""

import pytest

from repro.core import prepare_module
from repro.errors import CaptureError
from repro.runtime.mh import MH

from tests.core.helpers import ScriptedPort, run_module

UNENCODABLE_SRC = """\
def main():
    gadget = None
    gadget = object()
    leaf(1)
    mh.write('out', 'l', 1)


def leaf(x: int):
    mh.reconfig_point('R')
"""


class TestUnencodableLocals:
    def test_capture_error_names_procedure(self):
        result = prepare_module(UNENCODABLE_SRC, "m")
        mh = MH("m")
        port = ScriptedPort(mh, {})
        mh.attach_port(port)
        mh.request_reconfig()
        with pytest.raises(CaptureError, match="m.main"):
            run_module(result.source, mh)

    def test_no_partial_packet_divulged(self):
        result = prepare_module(UNENCODABLE_SRC, "m")
        mh = MH("m")
        mh.attach_port(ScriptedPort(mh, {}))
        mh.request_reconfig()
        with pytest.raises(CaptureError):
            run_module(result.source, mh)
        assert not mh.divulged.is_set()
        assert mh.outgoing_packet is None

    def test_runs_fine_without_reconfiguration(self):
        # The unencodable local is only a problem when captured.
        result = prepare_module(UNENCODABLE_SRC, "m")
        mh = MH("m")
        port = ScriptedPort(mh, {})
        mh.attach_port(port)
        run_module(result.source, mh)
        assert port.out == [("out", [1])]

    def test_pruning_rescues_dead_unencodables(self):
        # With liveness pruning, the dead gadget never enters the state.
        result = prepare_module(UNENCODABLE_SRC, "m", prune_dead_captures=True)
        mh = MH("m")
        port = ScriptedPort(mh, {})
        mh.attach_port(port)
        mh.request_reconfig()
        run_module(result.source, mh)
        assert mh.divulged.is_set()
