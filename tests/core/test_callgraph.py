"""Tests for static call graph construction (repro.core.callgraph)."""

import ast

import pytest

from repro.core.callgraph import build_call_graph, module_functions
from repro.errors import CallGraphError

from tests.core.helpers import COMPUTE_SRC, FIGURE6_SRC


def graph_of(source):
    return build_call_graph(ast.parse(source))


class TestBasicStructure:
    def test_nodes_are_functions(self):
        graph = graph_of(FIGURE6_SRC)
        assert set(graph.functions) == {"main", "a", "b", "helper"}

    def test_edge_per_call_site(self):
        # "if procedure main calls a in two different statements, there
        # are two edges from main to a"
        graph = graph_of(FIGURE6_SRC)
        assert len(graph.sites_between("main", "a")) == 2
        assert len(graph.sites_between("main", "b")) == 1
        assert len(graph.sites_between("a", "b")) == 1

    def test_runtime_calls_are_not_edges(self):
        graph = graph_of(COMPUTE_SRC)
        assert graph.callees("main") == ["compute"]
        # mh.read1 / mh.write never appear as procedures.
        assert "read1" not in graph.functions

    def test_recursion_self_edge(self):
        graph = graph_of(COMPUTE_SRC)
        assert "compute" in graph.callees("compute")

    def test_sites_sorted_by_position(self):
        graph = graph_of(FIGURE6_SRC)
        linenos = [s.lineno for s in graph.sites_from("main")]
        assert linenos == sorted(linenos)

    def test_duplicate_function_rejected(self):
        with pytest.raises(CallGraphError, match="defined twice"):
            graph_of("def f():\n    pass\n\ndef f():\n    pass\n")


class TestTopLevelDetection:
    def test_statement_call_is_top_level(self):
        graph = graph_of("def main():\n    f()\n\ndef f():\n    pass\n")
        (site,) = graph.sites_between("main", "f")
        assert site.top_level

    def test_assignment_call_is_top_level(self):
        graph = graph_of("def main():\n    x = f()\n\ndef f():\n    return 1\n")
        (site,) = graph.sites_between("main", "f")
        assert site.top_level

    def test_nested_call_is_not_top_level(self):
        graph = graph_of("def main():\n    x = f() + 1\n\ndef f():\n    return 1\n")
        (site,) = graph.sites_between("main", "f")
        assert not site.top_level

    def test_call_in_condition_not_top_level(self):
        graph = graph_of(
            "def main():\n    if f():\n        pass\n\ndef f():\n    return 1\n"
        )
        (site,) = graph.sites_between("main", "f")
        assert not site.top_level


class TestReachability:
    def test_reachable_from_main(self):
        graph = graph_of(FIGURE6_SRC)
        assert graph.reachable_from("main") == {"main", "a", "b", "helper"}

    def test_reaching_targets(self):
        graph = graph_of(FIGURE6_SRC)
        assert graph.reaching({"b"}) == {"main", "a", "b"}

    def test_dead_function_not_reachable(self):
        source = FIGURE6_SRC + "\n\ndef dead():\n    a(1)\n"
        graph = graph_of(source)
        assert "dead" not in graph.reachable_from("main")
        assert "dead" in graph.reaching({"a"})

    def test_callers(self):
        graph = graph_of(FIGURE6_SRC)
        assert graph.callers("b") == ["a", "main"]

    def test_paths_invariant(self):
        assert graph_of(FIGURE6_SRC).possible_stacks_are_paths()
        assert graph_of(COMPUTE_SRC).possible_stacks_are_paths()


class TestModuleFunctions:
    def test_order_preserved(self):
        functions = module_functions(ast.parse(FIGURE6_SRC))
        assert list(functions) == ["main", "a", "b", "helper"]

    def test_non_functions_ignored(self):
        functions = module_functions(ast.parse("X = 1\n\ndef f():\n    pass\n"))
        assert list(functions) == ["f"]
