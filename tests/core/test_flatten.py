"""Tests for control-flow flattening: semantic equivalence + resume.

The flattened module must behave *identically* to the original when no
reconfiguration is requested (the paper's transformed module is the same
program plus dormant blocks), and must capture/restore correctly when one
is.
"""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref

from tests.core.helpers import ScriptedPort, run_module

# A corpus of modules exercising every supported construct.  Each entry:
# (name, source, scripted queues, expected writes).  All have main() call
# leaf() which holds the reconfiguration point, so every function is
# instrumented and flattened.
CORPUS = [
    (
        "if-else-chain",
        """
def main():
    x = mh.read1('in')
    if x > 10:
        y = 'big'
    elif x > 5:
        y = 'mid'
    else:
        y = 'small'
    leaf(x)
    mh.write('out', 's', y)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [7]},
        [("out", ["mid"])],
    ),
    (
        "while-accumulate",
        """
def main():
    n = mh.read1('in')
    total = 0
    i = 0
    while i < n:
        total = total + i
        i = i + 1
    leaf(total)
    mh.write('out', 'l', total)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [5]},
        [("out", [10])],
    ),
    (
        "for-range-break-continue",
        """
def main():
    n = mh.read1('in')
    out = 0
    for i in range(n):
        if i == 2:
            continue
        if i == 7:
            break
        out = out + i
    leaf(out)
    mh.write('out', 'l', out)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [10]},
        [("out", [0 + 1 + 3 + 4 + 5 + 6])],
    ),
    (
        "nested-loops",
        """
def main():
    n = mh.read1('in')
    total = 0
    for i in range(n):
        j = 0
        while j < i:
            total = total + 1
            j = j + 1
    leaf(total)
    mh.write('out', 'l', total)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [5]},
        [("out", [10])],
    ),
    (
        "early-return",
        """
def main():
    x = mh.read1('in')
    y = classify(x)
    leaf(y)
    mh.write('out', 'l', y)

def classify(x):
    if x < 0:
        return -1
    if x == 0:
        return 0
    return 1

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [-5]},
        [("out", [-1])],
    ),
    (
        "value-returning-instrumented-call",
        """
def main():
    x = mh.read1('in')
    y = square(x)
    mh.write('out', 'l', y)

def square(x: int):
    mh.reconfig_point('R')
    return x * x
""",
        {"in": [9]},
        [("out", [81])],
    ),
    (
        "ref-out-params",
        """
def main():
    x = mh.read1('in')
    cell = Ref(0)
    fill(x, cell)
    mh.write('out', 'l', cell.get())

def fill(x: int, out: Ref):
    mh.reconfig_point('R')
    out.set(x * 3)
""",
        {"in": [4]},
        [("out", [12])],
    ),
    (
        "pass-and-docstring",
        '''
def main():
    """Module main with docstring."""
    x = mh.read1('in')
    pass
    leaf(x)
    mh.write('out', 'l', x)

def leaf(x: int):
    """Leaf."""
    mh.reconfig_point('R')
    pass
''',
        {"in": [1]},
        [("out", [1])],
    ),
    (
        "aug-assign-and-tuples",
        """
def main():
    x = mh.read1('in')
    a, b = x, x + 1
    a += b
    leaf(a)
    mh.write('out', 'l', a)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [10]},
        [("out", [21])],
    ),
    (
        "deeply-nested-break-continue",
        """
def main():
    n = mh.read1('in')
    total = 0
    for i in range(n):
        j = 0
        while True:
            j = j + 1
            if j > i:
                break
            if j % 2 == 0:
                continue
            total = total + j
        if total > 50:
            break
    leaf(total)
    mh.write('out', 'l', total)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [12]},
        [("out", [60])],
    ),
    (
        "elif-ladder-in-loop",
        """
def main():
    n = mh.read1('in')
    small = 0
    mid = 0
    big = 0
    for i in range(n):
        if i < 3:
            small = small + 1
        elif i < 7:
            mid = mid + 1
        elif i < 9:
            big = big + 1
        else:
            big = big + 10
    leaf(small)
    mh.write('out', 'l', small * 10000 + mid * 100 + big)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [12]},
        [("out", [3 * 10000 + 4 * 100 + (2 + 30)])],
    ),
    (
        "instrumented-calls-in-branches",
        """
def main():
    x = mh.read1('in')
    if x % 2 == 0:
        y = double(x)
    else:
        y = triple(x)
    mh.write('out', 'l', y)

def double(x: int):
    mh.reconfig_point('R1')
    return x * 2

def triple(x: int):
    mh.reconfig_point('R2')
    return x * 3
""",
        {"in": [7]},
        [("out", [21])],
    ),
    (
        "chain-of-instrumented-calls",
        """
def main():
    x = mh.read1('in')
    a = step1(x)
    b = step2(a)
    c = step3(b)
    mh.write('out', 'l', c)

def step1(x: int):
    y = step2(x)
    return y + 1

def step2(x: int):
    y = step3(x)
    return y + 1

def step3(x: int):
    mh.reconfig_point('R')
    return x + 1
""",
        {"in": [0]},
        [("out", [6])],
    ),
    (
        "string-and-comparison-logic",
        """
def main():
    n = mh.read1('in')
    label = ''
    i = 0
    while i < n and len(label) < 12:
        label = label + ('ab' if i % 2 == 0 else 'c')
        i = i + 1
    leaf(i)
    mh.write('out', 's', label)

def leaf(x: int):
    mh.reconfig_point('R')
""",
        {"in": [6]},
        [("out", ["abcabcabc"])],
    ),
]


@pytest.mark.parametrize("name,source,queues,expected", CORPUS, ids=[c[0] for c in CORPUS])
def test_flattened_behaviour_matches_original(name, source, queues, expected):
    """Without a reconfiguration request, transformed == original."""
    # Run the original (markers are no-ops).
    mh_orig = MH("m")
    port_orig = ScriptedPort(mh_orig, queues)
    mh_orig.attach_port(port_orig)
    run_module(source, mh_orig)

    # Run the transformed version.
    result = prepare_module(source, "m")
    mh_new = MH("m")
    port_new = ScriptedPort(mh_new, queues)
    mh_new.attach_port(port_new)
    run_module(result.source, mh_new)

    assert port_orig.out == expected
    assert port_new.out == expected


@pytest.mark.parametrize("name,source,queues,expected", CORPUS, ids=[c[0] for c in CORPUS])
def test_capture_restore_roundtrip_at_point(name, source, queues, expected):
    """Reconfiguring at R and resuming in a clone completes identically.

    The reconfig flag is raised before main starts, so the very first
    arrival at R captures; the clone must produce the same final writes.
    """
    result = prepare_module(source, "m")

    mh_old = MH("m")
    port_old = ScriptedPort(mh_old, queues)
    mh_old.attach_port(port_old)
    mh_old.request_reconfig()
    run_module(result.source, mh_old)
    assert mh_old.divulged.is_set()
    assert port_old.out == []  # interrupted before any write

    mh_clone = MH("m", status="clone")
    mh_clone.incoming_packet = mh_old.outgoing_packet
    # Remaining input: whatever the old module did not consume.
    remaining = dict(port_old.queues)
    port_clone = ScriptedPort(mh_clone, remaining)
    mh_clone.attach_port(port_clone)
    run_module(result.source, mh_clone)
    assert port_clone.out == expected
    assert mh_clone.getstatus() == "original"


class TestFlattenedSourceShape:
    def test_dispatch_loop_present(self):
        source = CORPUS[0][1]
        text = prepare_module(source, "m").source
        assert "_mh_pc" in text
        assert "while True:" in text

    def test_docstring_preserved(self):
        source = CORPUS[7][1]
        text = prepare_module(source, "m").source
        assert "Module main with docstring." in text

    def test_uninstrumented_functions_untouched(self):
        source = CORPUS[4][1]  # classify is not on a point path
        result = prepare_module(source, "m")
        assert "classify" not in result.reports
        assert "def classify(x):" in result.source

    def test_capture_blocks_reference_mh(self):
        text = prepare_module(CORPUS[0][1], "m").source
        assert "mh.capturestack" in text
        assert "mh.begin_reconfig_capture('R')" in text
        assert "mh.encode()" in text
