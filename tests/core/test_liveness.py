"""Tests for live-variable analysis (repro.core.liveness)."""

import ast

from repro.core.callgraph import build_call_graph
from repro.core.cfg import CFGBuilder
from repro.core.liveness import analyze_liveness
from repro.core.recongraph import build_reconfiguration_graph
from repro.core.varinfo import analyze_frame

from tests.core.helpers import COMPUTE_SRC


def liveness_for(source: str, name: str):
    tree = ast.parse(source)
    call_graph = build_call_graph(tree)
    recon = build_reconfiguration_graph(call_graph)
    fn = call_graph.functions[name]
    cfg = CFGBuilder(fn, recon).build()
    layout = analyze_frame(fn)
    return analyze_liveness(cfg, layout, recon), recon


class TestLivenessAtPoints:
    def test_dead_variable_detected(self):
        source = (
            "def main():\n"
            "    used = 1\n"
            "    dead = 2\n"
            "    mh.reconfig_point('R')\n"
            "    mh.write('out', 'l', used)\n"
        )
        report, recon = liveness_for(source, "main")
        edge = report.edge(recon.reconfig_edges()[0].number)
        assert "used" in edge.live
        assert "dead" in edge.dead_captured

    def test_all_live_when_all_used(self):
        source = (
            "def main():\n"
            "    a = 1\n"
            "    b = 2\n"
            "    mh.reconfig_point('R')\n"
            "    mh.write('out', 'l', a + b)\n"
        )
        report, recon = liveness_for(source, "main")
        edge = report.edge(recon.reconfig_edges()[0].number)
        assert edge.dead_captured == set()

    def test_variable_rewritten_before_use_is_dead(self):
        source = (
            "def main():\n"
            "    x = 1\n"
            "    mh.reconfig_point('R')\n"
            "    x = 2\n"
            "    mh.write('out', 'l', x)\n"
        )
        report, recon = liveness_for(source, "main")
        edge = report.edge(recon.reconfig_edges()[0].number)
        assert "x" in edge.dead_captured

    def test_loop_carried_variable_is_live(self):
        source = (
            "def main():\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        mh.reconfig_point('R')\n"
            "        total = total + i\n"
            "        i = i + 1\n"
            "    mh.write('out', 'l', total)\n"
        )
        report, recon = liveness_for(source, "main")
        edge = report.edge(recon.reconfig_edges()[0].number)
        assert {"total", "i"} <= edge.live


class TestLivenessAtCallEdges:
    def test_compute_rp_live_after_recursive_call(self):
        report, recon = liveness_for(COMPUTE_SRC, "compute")
        (call_edge,) = [e for e in recon.edges_from("compute") if e.kind == "call"]
        entry = report.edge(call_edge.number)
        # After the recursive call returns, rp and num are still read.
        assert "rp" in entry.live
        assert "num" in entry.live

    def test_main_response_live_after_first_call(self):
        report, recon = liveness_for(COMPUTE_SRC, "main")
        first = recon.edges_from("main")[0]
        entry = report.edge(first.number)
        assert "response" in entry.live

    def test_ref_method_call_counts_as_use(self):
        source = (
            "def main():\n"
            "    cell = Ref(0)\n"
            "    mh.reconfig_point('R')\n"
            "    cell.set(1)\n"
        )
        report, recon = liveness_for(source, "main")
        edge = report.edge(recon.reconfig_edges()[0].number)
        assert "cell" in edge.live


class TestReportShape:
    def test_total_dead_slots(self):
        source = (
            "def main():\n"
            "    dead1 = 1\n"
            "    dead2 = 2\n"
            "    mh.reconfig_point('R')\n"
        )
        report, _recon = liveness_for(source, "main")
        assert report.total_dead_slots() == 2

    def test_edge_lookup_error(self):
        report, _ = liveness_for(COMPUTE_SRC, "compute")
        try:
            report.edge(999)
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_transformer_populates_liveness(self):
        from repro.core import prepare_module

        result = prepare_module(COMPUTE_SRC, "compute")
        assert set(result.liveness) == {"main", "compute"}
        assert result.liveness["compute"].edges
