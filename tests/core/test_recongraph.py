"""Tests for the reconfiguration graph (repro.core.recongraph, Figure 6)."""

import ast

import pytest

from repro.core.callgraph import build_call_graph
from repro.core.recongraph import (
    RECONFIG_NODE,
    build_reconfiguration_graph,
    find_reconfig_points,
)
from repro.errors import ReconfigGraphError

from tests.core.helpers import COMPUTE_SRC, FIGURE6_SRC


def recon_of(source):
    call_graph = build_call_graph(ast.parse(source))
    return build_reconfiguration_graph(call_graph)


class TestPointDiscovery:
    def test_finds_labels(self):
        points = find_reconfig_points(build_call_graph(ast.parse(FIGURE6_SRC)))
        assert [(p.label, p.procedure) for p in points] == [
            ("R1", "a"),
            ("R2", "b"),
        ]

    def test_duplicate_label_rejected(self):
        source = (
            "def main():\n"
            "    mh.reconfig_point('R')\n"
            "    mh.reconfig_point('R')\n"
        )
        with pytest.raises(ReconfigGraphError, match="already defined"):
            find_reconfig_points(build_call_graph(ast.parse(source)))

    def test_non_literal_label_rejected(self):
        source = "def main():\n    lbl = 'R'\n    mh.reconfig_point(lbl)\n"
        with pytest.raises(ReconfigGraphError, match="literal"):
            find_reconfig_points(build_call_graph(ast.parse(source)))

    def test_empty_label_rejected(self):
        source = "def main():\n    mh.reconfig_point('')\n"
        with pytest.raises(ReconfigGraphError, match="non-empty"):
            find_reconfig_points(build_call_graph(ast.parse(source)))


class TestGraphConstruction:
    def test_monitor_edges_match_paper(self):
        # Section 2.1: main's two call sites are edges 1 and 2, the
        # recursive call is edge 3, the reconfiguration point is edge 4.
        recon = recon_of(COMPUTE_SRC)
        kinds = [(e.number, e.kind, e.source, e.target) for e in recon.edges]
        assert kinds == [
            (1, "call", "main", "compute"),
            (2, "call", "main", "compute"),
            (3, "call", "compute", "compute"),
            (4, "reconfig", "compute", RECONFIG_NODE),
        ]

    def test_numbering_is_consecutive_from_one(self):
        recon = recon_of(FIGURE6_SRC)
        assert [e.number for e in recon.edges] == list(
            range(1, len(recon.edges) + 1)
        )

    def test_helper_not_on_point_path_excluded(self):
        # helper is called by b but contains no point and reaches none:
        # "only nodes on paths starting at main and ending at a procedure
        # containing a reconfiguration point are of concern."
        recon = recon_of(FIGURE6_SRC)
        assert "helper" not in recon.nodes
        assert all(e.target != "helper" for e in recon.edges)

    def test_nodes_include_main_and_point_procs(self):
        recon = recon_of(FIGURE6_SRC)
        assert recon.nodes == ["main", "a", "b"]

    def test_unreachable_point_rejected(self):
        source = (
            "def main():\n    pass\n\n"
            "def orphan():\n    mh.reconfig_point('R')\n"
        )
        with pytest.raises(ReconfigGraphError, match="unreachable"):
            recon_of(source)

    def test_no_points_rejected(self):
        with pytest.raises(ReconfigGraphError, match="no reconfiguration points"):
            recon_of("def main():\n    pass\n")

    def test_no_main_rejected(self):
        source = "def f():\n    mh.reconfig_point('R')\n"
        with pytest.raises(ReconfigGraphError, match="no 'main'"):
            recon_of(source)

    def test_intermediate_node_included(self):
        # main -> middle -> leaf(R): middle is on the path and must be
        # instrumented even though it contains no point.
        source = (
            "def main():\n    middle()\n\n"
            "def middle():\n    leaf()\n\n"
            "def leaf():\n    mh.reconfig_point('R')\n"
        )
        recon = recon_of(source)
        assert recon.nodes == ["main", "middle", "leaf"]

    def test_edge_labels(self):
        recon = recon_of(COMPUTE_SRC)
        assert recon.edges[-1].label == "(4, R)"
        assert recon.edges[0].label.startswith("(1, S")


class TestQueries:
    def test_edges_from(self):
        recon = recon_of(COMPUTE_SRC)
        assert [e.number for e in recon.edges_from("main")] == [1, 2]
        assert [e.number for e in recon.edges_from("compute")] == [3, 4]

    def test_call_and_reconfig_edges(self):
        recon = recon_of(COMPUTE_SRC)
        assert len(recon.call_edges()) == 3
        assert len(recon.reconfig_edges()) == 1

    def test_edge_by_number(self):
        recon = recon_of(COMPUTE_SRC)
        assert recon.edge_by_number(4).kind == "reconfig"
        with pytest.raises(ReconfigGraphError):
            recon.edge_by_number(99)

    def test_edge_for_stmts(self):
        recon = recon_of(COMPUTE_SRC)
        call_edge = recon.edges[0]
        assert recon.edge_for_call_stmt(call_edge.call_site.stmt) is call_edge
        point_edge = recon.edges[-1]
        assert recon.edge_for_point_stmt(point_edge.point.stmt) is point_edge

    def test_describe_lists_edges(self):
        text = recon_of(COMPUTE_SRC).describe()
        assert "(4, R)" in text
        assert "main" in text

    def test_point_labels(self):
        assert recon_of(FIGURE6_SRC).point_labels() == ["R1", "R2"]

    def test_is_instrumented(self):
        recon = recon_of(FIGURE6_SRC)
        assert recon.is_instrumented("a")
        assert not recon.is_instrumented("helper")
