"""Tests for CFG construction (repro.core.cfg)."""

import ast

import pytest

from repro.core.callgraph import build_call_graph
from repro.core.cfg import CFGBuilder, CondGoto, Goto, ReturnTerm
from repro.core.recongraph import build_reconfiguration_graph
from repro.errors import FlattenError

from tests.core.helpers import COMPUTE_SRC


def cfg_for(source: str, name: str):
    tree = ast.parse(source)
    call_graph = build_call_graph(tree)
    recon = build_reconfiguration_graph(call_graph)
    return CFGBuilder(call_graph.functions[name], recon).build(), recon


SIMPLE = (
    "def main():\n"
    "    x = 1\n"
    "    mh.reconfig_point('R')\n"
    "    return x\n"
)


class TestBasicShapes:
    def test_straight_line(self):
        cfg, _ = cfg_for(SIMPLE, "main")
        kinds = [cfg.blocks[b].kind for b in cfg.block_ids()]
        assert "reconfig_capture" in kinds
        cfg.check()

    def test_if_makes_condgoto(self):
        source = (
            "def main():\n"
            "    x = 1\n"
            "    if x > 0:\n"
            "        x = 2\n"
            "    else:\n"
            "        x = 3\n"
            "    mh.reconfig_point('R')\n"
        )
        cfg, _ = cfg_for(source, "main")
        conds = [
            b for b in cfg.blocks.values() if isinstance(b.terminator, CondGoto)
        ]
        assert len(conds) == 1

    def test_while_loops_back(self):
        source = (
            "def main():\n"
            "    x = 0\n"
            "    while x < 3:\n"
            "        x = x + 1\n"
            "    mh.reconfig_point('R')\n"
        )
        cfg, _ = cfg_for(source, "main")
        # Some block's goto target must be a smaller (earlier) block id.
        assert any(
            isinstance(b.terminator, Goto) and b.terminator.target < b.id
            for b in cfg.blocks.values()
        )

    def test_return_terminator(self):
        cfg, _ = cfg_for(SIMPLE, "main")
        returns = [
            b for b in cfg.blocks.values() if isinstance(b.terminator, ReturnTerm)
        ]
        assert returns
        assert any(t.terminator.value is not None for t in returns)

    def test_implicit_return_added(self):
        source = "def main():\n    mh.reconfig_point('R')\n"
        cfg, _ = cfg_for(source, "main")
        assert any(
            isinstance(b.terminator, ReturnTerm) for b in cfg.blocks.values()
        )


class TestInstrumentedBlocks:
    def test_call_then_capture_block(self):
        cfg, recon = cfg_for(COMPUTE_SRC, "main")
        call_blocks = [b for b in cfg.blocks.values() if b.kind == "call"]
        capture_blocks = [b for b in cfg.blocks.values() if b.kind == "capture"]
        assert len(call_blocks) == 2  # edges 1 and 2
        assert len(capture_blocks) == 2
        for block in call_blocks:
            successor = cfg.blocks[block.terminator.target]
            assert successor.kind == "capture"
            assert successor.edge.number == block.edge.number

    def test_call_block_registered_for_edge(self):
        cfg, recon = cfg_for(COMPUTE_SRC, "main")
        for edge in recon.edges_from("main"):
            assert edge.number in cfg.call_block_for_edge

    def test_reconfig_block_and_resume_label(self):
        cfg, recon = cfg_for(COMPUTE_SRC, "compute")
        (reconfig_edge,) = [
            e for e in recon.edges_from("compute") if e.kind == "reconfig"
        ]
        assert reconfig_edge.number in cfg.resume_block_for_edge
        resume = cfg.resume_block_for_edge[reconfig_edge.number]
        # The block before the resume label is the reconfig capture block.
        predecessors = [
            b
            for b in cfg.blocks.values()
            if isinstance(b.terminator, Goto) and b.terminator.target == resume
        ]
        assert any(b.kind == "reconfig_capture" for b in predecessors)

    def test_compute_block_kinds(self):
        cfg, _ = cfg_for(COMPUTE_SRC, "compute")
        kinds = sorted(
            b.kind for b in cfg.blocks.values() if b.kind != "plain"
        )
        assert kinds == ["call", "capture", "reconfig_capture"]


class TestControlEdges:
    def test_break_outside_loop(self):
        # ast.parse accepts a stray break (the *compiler* rejects it);
        # the CFG builder must reject it with a located diagnostic.
        source = "def main():\n    break\n    mh.reconfig_point('R')\n"
        with pytest.raises(FlattenError, match="break outside loop"):
            cfg_for(source, "main")

    def test_continue_outside_loop(self):
        source = "def main():\n    continue\n    mh.reconfig_point('R')\n"
        with pytest.raises(FlattenError, match="continue outside loop"):
            cfg_for(source, "main")

    def test_break_and_continue_targets(self):
        source = (
            "def main():\n"
            "    x = 0\n"
            "    while x < 10:\n"
            "        x = x + 1\n"
            "        if x == 2:\n"
            "            continue\n"
            "        if x == 5:\n"
            "            break\n"
            "    mh.reconfig_point('R')\n"
        )
        cfg, _ = cfg_for(source, "main")
        cfg.check()

    def test_code_after_return_is_kept_unreachable(self):
        source = (
            "def main():\n"
            "    mh.reconfig_point('R')\n"
            "    return 1\n"
            "    x = 2\n"
        )
        cfg, _ = cfg_for(source, "main")
        cfg.check()

    def test_reachability_includes_resume_targets(self):
        cfg, _ = cfg_for(COMPUTE_SRC, "compute")
        reachable = cfg.reachable()
        for block_id in cfg.call_block_for_edge.values():
            assert block_id in reachable
        for block_id in cfg.resume_block_for_edge.values():
            assert block_id in reachable

    def test_check_catches_missing_target(self):
        cfg, _ = cfg_for(SIMPLE, "main")
        some_block = next(iter(cfg.blocks.values()))
        some_block.terminator = Goto(9999)
        with pytest.raises(FlattenError):
            cfg.check()

    def test_check_catches_unterminated(self):
        cfg, _ = cfg_for(SIMPLE, "main")
        next(iter(cfg.blocks.values())).terminator = None
        with pytest.raises(FlattenError):
            cfg.check()
