"""Tests for dummy-argument substitution (repro.core.dummy_args)."""

import ast

from repro.core.dummy_args import (
    count_substitutions,
    is_safe_argument,
    substitute_dummy_args,
)


def call_of(source: str) -> ast.Call:
    node = ast.parse(source, mode="eval").body
    assert isinstance(node, ast.Call)
    return node


def fn_of(source: str) -> ast.FunctionDef:
    return ast.parse(source).body[0]


class TestSafety:
    def test_name_safe(self):
        assert is_safe_argument(ast.parse("x", mode="eval").body)

    def test_constant_safe(self):
        assert is_safe_argument(ast.parse("42", mode="eval").body)

    def test_negative_constant_safe(self):
        assert is_safe_argument(ast.parse("-1", mode="eval").body)

    def test_ref_constructor_safe(self):
        assert is_safe_argument(ast.parse("Ref(0.0)", mode="eval").body)

    def test_ref_of_expression_unsafe(self):
        assert not is_safe_argument(ast.parse("Ref(a[i])", mode="eval").body)

    def test_arithmetic_unsafe(self):
        # n - 1 cannot fault, but the conservative rule dummies everything
        # that is not a name/constant/Ref — correctness over cleverness.
        assert not is_safe_argument(ast.parse("n - 1", mode="eval").body)

    def test_subscript_unsafe(self):
        # The paper's motivating case: a[i] with restored i can fault.
        assert not is_safe_argument(ast.parse("a[i]", mode="eval").body)

    def test_division_unsafe(self):
        assert not is_safe_argument(ast.parse("x / y", mode="eval").body)

    def test_nested_call_unsafe(self):
        assert not is_safe_argument(ast.parse("g(x)", mode="eval").body)


class TestSubstitution:
    def test_names_kept(self):
        call = call_of("f(num, n, rp)")
        new = substitute_dummy_args(call, None)
        assert ast.unparse(new) == "f(num, n, rp)"

    def test_expression_dummied_untyped(self):
        call = call_of("f(a[i])")
        new = substitute_dummy_args(call, None)
        assert ast.unparse(new) == "f(None)"

    def test_typed_dummies_from_annotations(self):
        # "The data types of these dummy arguments are determined by the
        # types declared in the parameter list of the procedure."
        callee = fn_of("def f(a: int, b: float, c: str, d: bool):\n    pass\n")
        call = call_of("f(x + 1, y * 2, s[0], not z)")
        new = substitute_dummy_args(call, callee)
        assert ast.unparse(new) == "f(0, 0.0, '', False)"

    def test_ref_annotation_dummy(self):
        callee = fn_of("def f(rp: Ref):\n    pass\n")
        call = call_of("f(cells[0])")
        new = substitute_dummy_args(call, callee)
        assert ast.unparse(new) == "f(Ref(None))"

    def test_paper_recursive_call(self):
        # compute(num, n - 1, rp): n-1 dummied to 0, rp (the pointer
        # chain) kept — exactly the paper's requirement.
        callee = fn_of("def compute(num: int, n: int, rp: Ref):\n    pass\n")
        call = call_of("compute(num, n - 1, rp)")
        new = substitute_dummy_args(call, callee)
        assert ast.unparse(new) == "compute(num, 0, rp)"

    def test_original_not_mutated(self):
        call = call_of("f(x + 1)")
        substitute_dummy_args(call, None)
        assert ast.unparse(call) == "f(x + 1)"

    def test_more_args_than_params(self):
        callee = fn_of("def f(a: int):\n    pass\n")
        call = call_of("f(x + 1, y + 2)")
        new = substitute_dummy_args(call, callee)
        assert ast.unparse(new) == "f(0, None)"


class TestCount:
    def test_counts(self):
        assert count_substitutions(call_of("f(a, 1, b + 1, c[0])")) == 2
        assert count_substitutions(call_of("f()")) == 0
