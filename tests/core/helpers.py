"""Shared helpers for core-transformation tests."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.runtime.refs import Ref
from repro.state.machine import MachineProfile

#: The paper's Figure 3 compute module, Python rendition (see apps.monitor).
COMPUTE_SRC = """\
def main():
    n = None
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        if mh.query_ifmsgs('sensor'):
            compute(1, 1, Ref(0.0))
        mh.sleep(2)


def compute(num: int, n: int, rp: Ref):
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
"""

#: The paper's Figure 6 sample program shape: main calls a twice and b once;
#: a calls b; points R1 in a, R2 in b.
FIGURE6_SRC = """\
def main():
    x = 0
    a(x)
    b(x)
    a(x + 1)


def a(x: int):
    mh.reconfig_point('R1')
    b(x)


def b(x: int):
    y = x * 2
    mh.reconfig_point('R2')
    helper(y)


def helper(y: int):
    return y + 1
"""


class ScriptedPort:
    """A message port driven by pre-loaded queues (no bus needed)."""

    def __init__(self, mh: MH, queues: Dict[str, List[object]],
                 reconfig_after_reads: Optional[int] = None):
        self.mh = mh
        self.queues = {k: list(v) for k, v in queues.items()}
        self.out: List[Tuple[str, List[object]]] = []
        self.reads = 0
        self.reconfig_after_reads = reconfig_after_reads
        self.stop_after_writes: Optional[int] = None

    def read(self, interface, timeout, stop_event):
        queue = self.queues.get(interface, [])
        if not queue:
            raise AssertionError(f"scripted read on empty {interface!r}")
        value = queue.pop(0)
        self.reads += 1
        if self.reconfig_after_reads is not None and self.reads == self.reconfig_after_reads:
            self.mh.request_reconfig()
        return [value]

    def write(self, interface, fmt, values):
        self.out.append((interface, list(values)))
        if self.stop_after_writes is not None and len(self.out) >= self.stop_after_writes:
            self.mh.stop()

    def query_ifmsgs(self, interface):
        return bool(self.queues.get(interface))


def run_module(source: str, mh: MH, extra: Optional[dict] = None):
    """Exec a (possibly transformed) module source and call its main()."""
    namespace = {"mh": mh, "Ref": Ref}
    if extra:
        namespace.update(extra)
    exec(compile(source, "<test module>", "exec"), namespace)
    return namespace["main"]()


def capture_compute_mid_recursion(
    n: int = 4,
    reconfig_after_reads: int = 3,
    machine: Optional[MachineProfile] = None,
    source: str = COMPUTE_SRC,
) -> Tuple[bytes, "ScriptedPort"]:
    """Run the compute module until it divulges mid-recursion."""
    result = prepare_module(source, "compute")
    mh = MH("compute", machine)
    sensor_values = list(range(10, 10 * (n + 1), 10))
    port = ScriptedPort(
        mh,
        {"display": [n], "sensor": sensor_values},
        reconfig_after_reads=reconfig_after_reads,
    )
    mh.attach_port(port)
    run_module(result.source, mh)
    assert mh.divulged.is_set(), "module did not divulge"
    return mh.outgoing_packet, port


def resume_compute(
    packet: bytes,
    remaining_sensor: List[object],
    machine: Optional[MachineProfile] = None,
    source: str = COMPUTE_SRC,
) -> "ScriptedPort":
    """Restore a captured compute clone and run it to its next response."""
    from repro.runtime.mh import ModuleStop

    result = prepare_module(source, "compute")
    mh = MH("compute", machine, status="clone")
    mh.incoming_packet = packet
    port = ScriptedPort(mh, {"display": [], "sensor": list(remaining_sensor)})
    port.stop_after_writes = 1
    mh.attach_port(port)
    try:
        run_module(result.source, mh)
    except ModuleStop:
        pass
    return port


def functions_of(source: str) -> Dict[str, ast.FunctionDef]:
    tree = ast.parse(source)
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
