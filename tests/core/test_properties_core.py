"""Property-based tests for the transformation (hypothesis).

Two properties drive out whole classes of flattener bugs:

1. *Transparency*: for randomly generated structured programs, the
   transformed module computes exactly what the original computes when no
   reconfiguration is requested.
2. *Continuity*: interrupting the recursive averager after a random
   number of reads and resuming a clone yields exactly the uninterrupted
   result — at any depth, on any machine pair.
"""

from hypothesis import given, settings, strategies as st

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.state.machine import MACHINES

from tests.core.helpers import (
    ScriptedPort,
    capture_compute_mid_recursion,
    resume_compute,
    run_module,
)

# ---------------------------------------------------------------------------
# Random structured program generation
# ---------------------------------------------------------------------------
#
# Programs are built from a small statement grammar over integer locals
# a, b, c; the leaf procedure holds the reconfiguration point.  Every
# generated program terminates: loops are bounded counters.

_expr = st.sampled_from(
    ["a", "b", "c", "a + 1", "b - a", "a * 2", "b % 7", "a + b + c", "-c"]
)


def _assign(var: str):
    return _expr.map(lambda e: [f"{var} = {e}"])


def _aug(var: str):
    return _expr.map(lambda e: [f"{var} += {e}"])


def _if(body_strategy):
    return st.tuples(_expr, body_strategy, body_strategy).map(
        lambda t: [f"if ({t[0]}) % 2 == 0:"]
        + [f"    {line}" for line in t[1]]
        + ["else:"]
        + [f"    {line}" for line in t[2]]
    )


def _while(body_strategy):
    # Bounded: loop on a fresh counter, at most 5 iterations.
    return body_strategy.map(
        lambda body: ["k = 0", "while k < 5:", "    k = k + 1"]
        + [f"    {line}" for line in body]
    )


def _for(body_strategy):
    return body_strategy.map(
        lambda body: ["for i in range(3):"] + [f"    {line}" for line in body]
    )


_simple = st.one_of(_assign("a"), _assign("b"), _aug("c"))

_blocks = st.recursive(
    _simple,
    lambda inner: st.one_of(_if(inner), _while(inner), _for(inner)),
    max_leaves=6,
)

_body = st.lists(_blocks, min_size=1, max_size=5).map(
    lambda blocks: [line for block in blocks for line in block]
)


def _build_module(body_lines):
    body = "".join(f"    {line}\n" for line in body_lines)
    return (
        "def main():\n"
        "    a = mh.read1('in')\n"
        "    b = 2\n"
        "    c = 0\n"
        f"{body}"
        "    leaf(a)\n"
        "    mh.write('out', 'l', a * 1000000 + b * 1000 + c % 997)\n"
        "\n"
        "def leaf(x: int):\n"
        "    mh.reconfig_point('R')\n"
    )


@given(_body, st.integers(min_value=-50, max_value=50))
@settings(max_examples=60, deadline=None)
def test_transformation_is_transparent(body_lines, seed):
    source = _build_module(body_lines)

    def run(text):
        mh = MH("m")
        port = ScriptedPort(mh, {"in": [seed]})
        mh.attach_port(port)
        run_module(text, mh)
        return port.out

    original = run(source)
    transformed = run(prepare_module(source, "m").source)
    assert transformed == original


@given(_body, st.integers(min_value=-50, max_value=50))
@settings(max_examples=40, deadline=None)
def test_capture_restore_is_transparent(body_lines, seed):
    # Capturing at R and restoring in a clone must also match the
    # original program's output exactly.
    source = _build_module(body_lines)
    result = prepare_module(source, "m")

    mh_plain = MH("m")
    port_plain = ScriptedPort(mh_plain, {"in": [seed]})
    mh_plain.attach_port(port_plain)
    run_module(source, mh_plain)

    mh_old = MH("m")
    port_old = ScriptedPort(mh_old, {"in": [seed]})
    mh_old.attach_port(port_old)
    mh_old.request_reconfig()
    run_module(result.source, mh_old)
    assert mh_old.divulged.is_set()

    mh_clone = MH("m", status="clone")
    mh_clone.incoming_packet = mh_old.outgoing_packet
    port_clone = ScriptedPort(mh_clone, dict(port_old.queues))
    mh_clone.attach_port(port_clone)
    run_module(result.source, mh_clone)

    assert port_clone.out == port_plain.out


@given(
    st.integers(min_value=1, max_value=40),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_mid_recursion_continuity_random_depth(n, data):
    reads = data.draw(st.integers(min_value=1, max_value=n))
    # The averager's partial sums are arbitrary doubles, so machines with
    # 32-bit floats correctly REFUSE such states (unit-tested elsewhere);
    # the continuity property quantifies over double-capable machines.
    machines = [m for m in MACHINES.values() if m.float_bits == 64]
    source_machine = data.draw(st.sampled_from(machines))
    target_machine = data.draw(st.sampled_from(machines))
    packet, port = capture_compute_mid_recursion(
        n=n, reconfig_after_reads=reads, machine=source_machine
    )
    clone_port = resume_compute(
        packet, port.queues["sensor"], machine=target_machine
    )
    expected = sum(range(10, 10 * (n + 1), 10)) / n
    (iface, values) = clone_port.out[0]
    assert iface == "display"
    assert abs(values[0] - expected) < 1e-9
