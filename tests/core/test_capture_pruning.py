"""Tests for liveness-based capture pruning (the paper's suggested
data-flow extension, implemented behind ``prune_dead_captures=True``)."""

import pytest

from repro.core import prepare_module
from repro.runtime.mh import MH
from repro.state.frames import ProcessState

from tests.core.helpers import (
    COMPUTE_SRC,
    ScriptedPort,
    run_module,
)

DEAD_HEAVY_SRC = """\
def main():
    big = None
    useful = None
    big = 'x' * 10000
    useful = len(big)
    work(useful)
    mh.write('out', 'l', useful)


def work(x: int):
    mh.reconfig_point('R')
"""


def capture_packet(result, queues=None, reconfig_immediately=True):
    mh = MH("m")
    port = ScriptedPort(mh, queues or {})
    mh.attach_port(port)
    if reconfig_immediately:
        mh.request_reconfig()
    run_module(result.source, mh)
    assert mh.divulged.is_set()
    return mh.outgoing_packet, port


def restore_packet(result, packet, queues=None):
    clone = MH("m", status="clone")
    clone.incoming_packet = packet
    port = ScriptedPort(clone, queues or {})
    clone.attach_port(port)
    run_module(result.source, clone)
    return port


class TestPruningShrinksState:
    def test_dead_heavy_variable_not_captured(self):
        unpruned = prepare_module(DEAD_HEAVY_SRC, "m")
        pruned = prepare_module(DEAD_HEAVY_SRC, "m", prune_dead_captures=True)

        packet_full, _ = capture_packet(unpruned)
        packet_small, _ = capture_packet(pruned)

        # 'big' is dead after the call to work(): pruning drops ~10kB.
        assert len(packet_full) > 10_000
        assert len(packet_small) < 1_000

    def test_pruned_restore_still_correct(self):
        pruned = prepare_module(DEAD_HEAVY_SRC, "m", prune_dead_captures=True)
        packet, _ = capture_packet(pruned)
        port = restore_packet(pruned, packet)
        assert port.out == [("out", [10000])]

    def test_pruned_frames_have_shorter_fmt(self):
        pruned = prepare_module(DEAD_HEAVY_SRC, "m", prune_dead_captures=True)
        packet, _ = capture_packet(pruned)
        state = ProcessState.from_bytes(packet)
        main_frame = next(r for r in state.stack if r.procedure == "main")
        # Location + 'useful' only ('big' pruned).
        assert len(main_frame.values) == 2


class TestPruningPreservesSemantics:
    @pytest.mark.parametrize("reads", [1, 2, 3, 4])
    def test_compute_module_pruned_roundtrip(self, reads):
        pruned = prepare_module(COMPUTE_SRC, "compute", prune_dead_captures=True)

        mh = MH("compute")
        port = ScriptedPort(
            mh,
            {"display": [4], "sensor": [10, 20, 30, 40]},
            reconfig_after_reads=reads,
        )
        mh.attach_port(port)
        run_module(pruned.source, mh)
        assert mh.divulged.is_set()

        from repro.runtime.mh import ModuleStop

        clone = MH("compute", status="clone")
        clone.incoming_packet = mh.outgoing_packet
        clone_port = ScriptedPort(clone, dict(port.queues))
        clone_port.stop_after_writes = 1
        clone.attach_port(clone_port)
        try:
            run_module(pruned.source, clone)
        except ModuleStop:
            pass
        assert clone_port.out == [("display", [25.0])]

    def test_pruned_and_unpruned_are_wire_incompatible_by_design(self):
        # Documented contract: choose pruning once per module lineage.
        unpruned = prepare_module(DEAD_HEAVY_SRC, "m")
        pruned = prepare_module(DEAD_HEAVY_SRC, "m", prune_dead_captures=True)
        packet, _ = capture_packet(unpruned)
        from repro.errors import RestoreError

        with pytest.raises((RestoreError, IndexError, Exception)):
            port = restore_packet(pruned, packet)
            # If it somehow restored, the result must still be right for
            # the incompatibility to be considered benign — it is not.
            assert port.out != [("out", [10000])]

    def test_ref_chain_survives_pruning(self):
        source = """\
def main():
    cell = None
    cell = Ref(0)
    fill(5, cell)
    mh.write('out', 'l', cell.get())


def fill(x: int, out: Ref):
    mh.reconfig_point('R')
    out.set(x * 7)
"""
        pruned = prepare_module(source, "m", prune_dead_captures=True)
        packet, _ = capture_packet(pruned)
        port = restore_packet(pruned, packet)
        assert port.out == [("out", [35])]
