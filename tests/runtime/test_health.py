"""Unit tests for the phi-style failure detector (runtime.health).

All tests drive an injected fake clock: verdicts are pure functions of
arrival timestamps, so no test here sleeps or spawns processes (the
live end, heartbeats over real links, is tests/bus/test_health_plane.py).
"""

import pytest

from repro.runtime.health import (
    STATUS_DEAD,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    STATUS_SUSPECT,
    STATUS_UNKNOWN,
    HealthMonitor,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def monitor(clock):
    return HealthMonitor(interval_hint=0.1, clock=clock)


def beat(monitor, clock, host="w0", n=1, interval=0.1, seq0=1):
    for i in range(n):
        monitor.record_heartbeat(host, seq0 + i, {"modules": {}})
        if i != n - 1:
            clock.advance(interval)


class TestPhiTransitions:
    def test_unregistered_host_is_unknown(self, monitor):
        assert monitor.status_of("nobody") == STATUS_UNKNOWN

    def test_registered_but_silent_is_unknown(self, monitor):
        monitor.register_host("w0", transport="worker")
        assert monitor.status_of("w0") == STATUS_UNKNOWN

    def test_on_schedule_is_healthy(self, monitor, clock):
        beat(monitor, clock, n=5, interval=0.1)
        clock.advance(0.1)  # exactly one interval late: phi == 1
        assert monitor.status_of("w0") == STATUS_HEALTHY

    def test_degrades_then_suspects_then_dies_with_silence(self, monitor, clock):
        beat(monitor, clock, n=5, interval=0.1)
        # mean interval is 0.1s; phi = age / 0.1
        clock.advance(0.3)  # phi 3
        assert monitor.status_of("w0") == STATUS_DEGRADED
        clock.advance(0.3)  # phi 6
        assert monitor.status_of("w0") == STATUS_SUSPECT
        clock.advance(0.5)  # phi 11
        assert monitor.status_of("w0") == STATUS_DEAD

    def test_slow_cadence_tolerates_proportionally_more(self, monitor, clock):
        beat(monitor, clock, n=5, interval=2.0)
        clock.advance(3.0)  # phi 1.5 — would be long dead at a 0.1s cadence
        assert monitor.status_of("w0") == STATUS_HEALTHY

    def test_single_beat_uses_interval_hint(self, monitor, clock):
        beat(monitor, clock, n=1)  # no inter-arrival samples yet
        clock.advance(0.15)  # phi = 0.15 / hint(0.1) = 1.5
        assert monitor.status_of("w0") == STATUS_HEALTHY
        clock.advance(0.8)
        assert monitor.status_of("w0") == STATUS_DEAD

    def test_recovery_after_silence(self, monitor, clock):
        beat(monitor, clock, n=5, interval=0.1)
        clock.advance(5.0)
        assert monitor.status_of("w0") == STATUS_DEAD
        beat(monitor, clock, n=1, seq0=6)
        assert monitor.status_of("w0") == STATUS_HEALTHY

    def test_dead_after_wall_override(self, clock):
        monitor = HealthMonitor(interval_hint=0.1, dead_after=1.0, clock=clock)
        beat(monitor, clock, n=5, interval=2.0)  # slow cadence: phi forgiving
        clock.advance(1.0)  # phi only 0.5, but the wall clock says dead
        assert monitor.status_of("w0") == STATUS_DEAD

    def test_thresholds_must_increase(self):
        with pytest.raises(ValueError):
            HealthMonitor(healthy_phi=4.0, degraded_phi=2.0, suspect_phi=8.0)


class TestCondemnation:
    def test_mark_dead_overrides_fresh_beats(self, monitor, clock):
        beat(monitor, clock, n=3)
        monitor.mark_dead("w0", reason="pipe closed")
        assert monitor.status_of("w0") == STATUS_DEAD
        assert monitor.snapshot()["hosts"]["w0"]["condemned"] == "pipe closed"

    def test_next_beat_uncondemns(self, monitor, clock):
        monitor.mark_dead("w0")
        beat(monitor, clock, n=1)
        assert monitor.status_of("w0") == STATUS_HEALTHY

    def test_reregister_gives_condemned_host_a_chance(self, monitor, clock):
        beat(monitor, clock, n=1)
        monitor.mark_dead("w0")
        monitor.register_host("w0", transport="worker")
        # un-condemned, but the stale beat still counts for age
        assert monitor.status_of("w0") in (STATUS_HEALTHY, STATUS_UNKNOWN)

    def test_mark_dead_on_unseen_host_creates_record(self, monitor):
        monitor.mark_dead("ghost")
        assert monitor.status_of("ghost") == STATUS_DEAD

    def test_forget(self, monitor, clock):
        beat(monitor, clock, n=1)
        monitor.forget("w0")
        assert monitor.status_of("w0") == STATUS_UNKNOWN
        assert "w0" not in monitor.hosts()


class TestSnapshot:
    def test_shape_and_module_join(self, monitor, clock):
        monitor.register_host("idle", transport="tcp")
        monitor.record_heartbeat(
            "w0",
            7,
            {
                "modules": {
                    "counter": {
                        "state": "running",
                        "queued": 3,
                        "queue_hwm": 9,
                        "divulging": False,
                        "last_delivery_age": 0.01,
                    }
                }
            },
        )
        snap = monitor.snapshot()
        assert set(snap) == {"hosts", "modules"}
        assert snap["hosts"]["idle"]["status"] == STATUS_UNKNOWN
        assert snap["hosts"]["idle"]["age_s"] is None
        w0 = snap["hosts"]["w0"]
        assert w0["status"] == STATUS_HEALTHY
        assert w0["beats"] == 1 and w0["last_seq"] == 7
        counter = snap["modules"]["counter"]
        assert counter["host"] == "w0"
        assert counter["host_status"] == STATUS_HEALTHY
        assert counter["queued"] == 3 and counter["queue_hwm"] == 9

    def test_module_table_follows_latest_beat(self, monitor, clock):
        monitor.record_heartbeat(
            "w0", 1, {"modules": {"a": {"state": "running", "queued": 1}}}
        )
        clock.advance(0.1)
        monitor.record_heartbeat(
            "w0", 2, {"modules": {"b": {"state": "stopped", "queued": 0}}}
        )
        modules = monitor.snapshot()["modules"]
        assert "a" not in modules and modules["b"]["state"] == "stopped"

    def test_malformed_payload_tolerated(self, monitor, clock):
        monitor.record_heartbeat("w0", 1, {"modules": "garbage"})
        monitor.record_heartbeat("w0", 2, {})
        assert monitor.status_of("w0") == STATUS_HEALTHY


class TestWaitForStatus:
    def test_returns_immediately_on_match(self, monitor, clock):
        beat(monitor, clock, n=1)
        assert (
            monitor.wait_for_status("w0", (STATUS_HEALTHY,), timeout=0.1)
            == STATUS_HEALTHY
        )

    def test_times_out_with_current_status(self, monitor, clock):
        status = monitor.wait_for_status("w0", (STATUS_DEAD,), timeout=0.0)
        assert status == STATUS_UNKNOWN
