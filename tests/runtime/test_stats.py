"""Tests for the MH observability counters."""

from repro.runtime.mh import MH

from tests.core.helpers import (
    capture_compute_mid_recursion,
    resume_compute,
)


class TestStats:
    def test_initial_zero(self):
        mh = MH("m")
        assert all(count == 0 for count in mh.stats.values())

    def test_signal_counted(self):
        mh = MH("m")
        mh.request_reconfig()
        mh.request_reconfig()
        assert mh.stats["signals"] == 2

    def test_capture_counts_frames_and_packets(self):
        mh = MH("m")
        mh.begin_reconfig_capture("P")
        mh.capture("f", "ll", 1, 10)
        mh.capture("main", "l", 2)
        mh.encode()
        assert mh.stats["frames_captured"] == 2
        assert mh.stats["packets_encoded"] == 1

    def test_restore_counts_frames(self):
        mh = MH("m")
        mh.begin_reconfig_capture("P")
        mh.capture("f", "ll", 1, 10)
        mh.capture("main", "l", 2)
        packet = mh.encode()
        clone = MH("m", status="clone")
        clone.incoming_packet = packet
        clone.decode()
        clone.restore("main")
        clone.restore("f")
        assert clone.stats["frames_restored"] == 2

    def test_end_to_end_module_counters(self):
        # The compute module: request + sensor reads counted; one packet
        # encoded at the interruption.
        packet, port = capture_compute_mid_recursion(n=4, reconfig_after_reads=3)
        assert port.reads == 3  # sanity: scripted port agrees
        clone_port = resume_compute(packet, port.queues["sensor"])
        assert clone_port.out  # resumed and answered
