"""Tests for file re-attachment hooks (repro.runtime.files)."""

import pytest

from repro.errors import RestoreError
from repro.runtime.files import (
    FileDescription,
    FileReattachRegistry,
    default_reattach,
)


class TestFileDescription:
    def test_roundtrip(self):
        description = FileDescription("log", "/tmp/x", "a", 42)
        assert FileDescription.from_abstract(description.to_abstract()) == description

    def test_malformed(self):
        with pytest.raises(RestoreError):
            FileDescription.from_abstract("nope")
        with pytest.raises(RestoreError):
            FileDescription.from_abstract({"name": "x"})


class TestRegistry:
    def test_capture_describes_position(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("hello world")
        registry = FileReattachRegistry()
        handle = registry.register("data", open(path, "r"))
        handle.read(5)
        captured = registry.capture()
        assert captured[0]["position"] == 5
        assert captured[0]["name"] == "data"
        registry.close_all()

    def test_restore_reopens_and_seeks(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("hello world")
        old = FileReattachRegistry()
        old.register("data", open(path, "r"))
        old.get("data").read(6)
        captured = old.capture()
        old.close_all()

        new = FileReattachRegistry()
        new.restore(captured)
        assert new.get("data").read() == "world"
        new.close_all()

    def test_write_mode_reopen_does_not_truncate(self, tmp_path):
        path = tmp_path / "out.txt"
        old = FileReattachRegistry()
        handle = old.register("out", open(path, "w"))
        handle.write("partial output ")
        captured = old.capture()
        old.close_all()

        new = FileReattachRegistry()
        new.restore(captured)
        new.get("out").write("continued")
        new.close_all()
        assert path.read_text() == "partial output continued"

    def test_custom_reattach_hook(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("abc")
        calls = []

        def hook(description):
            calls.append(description.name)
            return default_reattach(description)

        registry = FileReattachRegistry()
        registry.register("data", open(path, "r"), reattach=hook)
        captured = registry.capture()
        registry.restore(captured)
        assert calls == ["data"]
        registry.close_all()

    def test_get_unknown(self):
        with pytest.raises(RestoreError):
            FileReattachRegistry().get("nope")

    def test_names(self, tmp_path):
        path = tmp_path / "a"
        path.write_text("")
        registry = FileReattachRegistry()
        registry.register("a", open(path))
        assert registry.names() == ["a"]
        registry.close_all()
