"""Tests for the MH runtime (repro.runtime.mh): the capture/restore protocol."""

import threading

import pytest

from repro.errors import (
    CaptureError,
    RestoreError,
    RuntimeStateError,
)
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.refs import Ref
from repro.state.frames import ProcessState


def captured_mh(machine=None, depth=2):
    """An MH that has completed a capture of main -> compute^depth."""
    mh = MH("compute", machine)
    mh.begin_reconfig_capture("R")
    mh.capture("compute", "lllF", 4, 1, 0, 0.0)
    for level in range(depth - 1):
        mh.capture("compute", "lllF", 3, 1, level + 1, 0.0)
    mh.capture("main", "llF", 1, depth, 0.0)
    mh.encode()
    return mh


class TestFlags:
    def test_initial_flags(self):
        mh = MH("m")
        assert not mh.reconfig
        assert not mh.capturestack
        assert not mh.restoring

    def test_signal_handler_sets_flag_only(self):
        # Figure 4: void mh_catchreconfig() { mh_reconfig = 1; }
        mh = MH("m")
        mh.catch_reconfig()
        assert mh.reconfig
        assert not mh.capturestack

    def test_begin_reconfig_capture_flag_handoff(self):
        # Figure 7: the reconfig block clears its flag and arms capturestack.
        mh = MH("m")
        mh.catch_reconfig()
        mh.begin_reconfig_capture("R")
        assert not mh.reconfig
        assert mh.capturestack


class TestCaptureProtocol:
    def test_capture_then_encode(self, sparc):
        mh = captured_mh(sparc)
        assert mh.divulged.is_set()
        assert mh.outgoing_packet is not None
        state = ProcessState.from_bytes(mh.outgoing_packet)
        assert state.module == "compute"
        assert state.reconfig_point == "R"
        assert state.source_machine == "sparc-like"
        assert state.stack.call_chain()[0] == "main"

    def test_capture_requires_location(self):
        mh = MH("m")
        mh.begin_reconfig_capture("R")
        with pytest.raises(CaptureError):
            mh.capture("f", "")

    def test_capture_location_must_be_int(self):
        mh = MH("m")
        mh.begin_reconfig_capture("R")
        with pytest.raises(CaptureError):
            mh.capture("f", "lF", 1.5, 2.0)

    def test_capture_bad_format_is_loud(self):
        mh = MH("m")
        mh.begin_reconfig_capture("R")
        with pytest.raises(CaptureError, match="bad capture block"):
            mh.capture("f", "ll", 1, "not an int")

    def test_encode_outside_capture(self):
        mh = MH("m")
        with pytest.raises(CaptureError):
            mh.encode()

    def test_encode_clears_capturestack(self, sparc):
        mh = captured_mh(sparc)
        assert not mh.capturestack

    def test_statics_and_heap_travel(self):
        mh = MH("m")
        mh.statics["count"] = 42
        mh.heap["buffer"] = [1, 2, [3]]
        mh.begin_reconfig_capture("P")
        mh.capture("main", "l", 1)
        packet = mh.encode()

        clone = MH("m", status="clone")
        clone.incoming_packet = packet
        clone.decode()
        assert clone.statics["count"] == 42
        assert clone.heap["buffer"] == [1, 2, [3]]

    def test_heap_hooks_roundtrip(self):
        class Counter:
            def __init__(self, n):
                self.n = n

        mh = MH("m")
        mh.register_heap_hook("c", lambda c: c.n, lambda n: Counter(n))
        mh.heap["c"] = Counter(9)
        mh.begin_reconfig_capture("P")
        mh.capture("main", "l", 1)
        packet = mh.encode()

        clone = MH("m", status="clone")
        clone.register_heap_hook("c", lambda c: c.n, lambda n: Counter(n))
        clone.incoming_packet = packet
        clone.decode()
        assert isinstance(clone.heap["c"], Counter)
        assert clone.heap["c"].n == 9

    def test_divulge_callback(self):
        seen = []
        mh = MH("m")
        mh.set_divulge_callback(seen.append)
        mh.begin_reconfig_capture("P")
        mh.capture("main", "l", 1)
        mh.encode()
        assert len(seen) == 1 and isinstance(seen[0], bytes)


class TestRestoreProtocol:
    def test_full_roundtrip(self, sparc, vax):
        packet = captured_mh(sparc, depth=3).outgoing_packet
        clone = MH("compute", vax, status="clone")
        clone.incoming_packet = packet
        clone.decode()
        assert clone.restoring
        assert clone.restore("main") == [1, 3, 0.0]
        assert clone.restore("compute") == [3, 1, 2, 0.0]
        assert clone.restore("compute") == [3, 1, 1, 0.0]
        assert clone.restore("compute") == [4, 1, 0, 0.0]
        clone.end_restore()
        assert not clone.restoring
        assert clone.getstatus() == "original"

    def test_decode_without_packet(self):
        clone = MH("m", status="clone")
        with pytest.raises(RestoreError, match="no state packet"):
            clone.decode()

    def test_decode_wrong_module(self):
        packet = captured_mh().outgoing_packet
        clone = MH("other", status="clone")
        clone.incoming_packet = packet
        with pytest.raises(RestoreError, match="for module 'compute'"):
            clone.decode()

    def test_restore_before_decode(self):
        clone = MH("compute", status="clone")
        with pytest.raises(RestoreError, match="before decode"):
            clone.restore("main")

    def test_restore_procedure_mismatch(self):
        clone = MH("compute", status="clone")
        clone.incoming_packet = captured_mh().outgoing_packet
        clone.decode()
        with pytest.raises(RestoreError, match="mismatch"):
            clone.restore("compute")  # first frame is main's

    def test_end_restore_with_leftover_frames(self):
        clone = MH("compute", status="clone")
        clone.incoming_packet = captured_mh(depth=2).outgoing_packet
        clone.decode()
        clone.restore("main")
        with pytest.raises(RestoreError, match="unrestored"):
            clone.end_restore()

    def test_bad_restore_location(self):
        mh = MH("m")
        with pytest.raises(RestoreError, match="does not match any"):
            mh.bad_restore_location(99, "main")

    def test_bad_pc(self):
        mh = MH("m")
        with pytest.raises(RuntimeStateError, match="program counter"):
            mh.bad_pc(-1, "main")


class TestRefPacking:
    def test_pack_none(self):
        assert MH.pack_ref(None) is None

    def test_pack_live_cell(self):
        assert MH.pack_ref(Ref(2.5)) == (2.5,)

    def test_pack_cell_holding_none_distinct_from_missing(self):
        assert MH.pack_ref(Ref(None)) == (None,)

    def test_unpack_roundtrip(self):
        cell = MH.unpack_ref(MH.pack_ref(Ref(7)))
        assert isinstance(cell, Ref) and cell.get() == 7
        assert MH.unpack_ref(MH.pack_ref(None)) is None

    def test_unpack_malformed(self):
        with pytest.raises(RestoreError):
            MH.unpack_ref((1, 2))


class TestLifecycle:
    def test_running_and_stop(self):
        mh = MH("m")
        assert mh.running
        mh.stop()
        assert not mh.running
        with pytest.raises(ModuleStop):
            mh.check_stop()

    def test_sleep_scaled_to_zero_is_fast(self):
        import time

        mh = MH("m", sleep_policy=SleepPolicy(scale=0.0))
        start = time.monotonic()
        mh.sleep(100)
        assert time.monotonic() - start < 0.5

    def test_sleep_interrupted_by_stop(self):
        mh = MH("m", sleep_policy=SleepPolicy(scale=1.0))
        timer = threading.Timer(0.05, mh.stop)
        timer.start()
        with pytest.raises(ModuleStop):
            mh.sleep(30)
        timer.cancel()

    def test_messaging_without_port(self):
        mh = MH("m")
        with pytest.raises(RuntimeStateError, match="not attached"):
            mh.write("out", "i", 1)

    def test_reconfig_point_marker_is_noop(self):
        MH("m").reconfig_point("R")  # untransformed source must run

    def test_status(self):
        assert MH("m").getstatus() == "original"
        assert MH("m", status="clone").getstatus() == "clone"
