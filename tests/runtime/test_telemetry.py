"""Unit tests for the telemetry flight recorder itself.

Span parenting (thread-local and ambient), counters/gauges, the bounded
ring, JSON-lines export, and — most importantly — the disabled-mode
contract: module-level helpers must be no-ops that allocate nothing.
"""

from __future__ import annotations

import io
import json
import threading
import tracemalloc

import pytest

from repro.runtime import telemetry


@pytest.fixture
def recorder():
    rec = telemetry.enable(capacity=64)
    yield rec
    telemetry.disable()


class TestSpans:
    def test_nested_spans_parent_on_one_thread(self, recorder):
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert inner.parent == outer.sid
        spans = {s["name"]: s for s in recorder.spans()}
        assert spans["inner"]["parent"] == spans["outer"]["sid"]
        assert spans["outer"]["parent"] is None
        # inner closed first: the log is ordered by completion
        assert [s["name"] for s in recorder.spans()] == ["inner", "outer"]

    def test_span_records_duration_and_attrs(self, recorder):
        span = telemetry.span("work", module="compute")
        span.set(bytes=128).close()
        span.close()  # idempotent
        (record,) = recorder.spans(name="work")
        assert record["attrs"] == {"module": "compute", "bytes": 128}
        assert record["ms"] >= 0.0
        assert record["t1"] >= record["t0"]
        assert len(recorder.spans()) == 1

    def test_exception_marks_span_with_error(self, recorder):
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        (record,) = recorder.spans(name="doomed")
        assert record["attrs"]["error"] == "ValueError"

    def test_ambient_root_adopts_other_threads(self, recorder):
        """Spans on foreign threads parent to the in-flight replace root."""
        seen = {}

        def worker():
            with telemetry.span("mh.capture") as span:
                seen["parent"] = span.parent
                seen["recon"] = span.recon

        with telemetry.span("reconfig.replace", recon="rc-9999", ambient=True) as root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] == root.sid
        assert seen["recon"] == "rc-9999"
        # the ambient slot is restored once the root closes
        with telemetry.span("later") as orphan:
            assert orphan.parent is None
            assert orphan.recon is None

    def test_events_inherit_recon_from_ambient(self, recorder):
        with telemetry.span("reconfig.replace", recon="rc-0042", ambient=True):
            telemetry.event("fault.fired", site="mh.encode")
        records = recorder.events(recon="rc-0042")
        (record,) = [r for r in records if r["type"] == "event"]
        assert record["kind"] == "fault.fired"
        assert record["attrs"] == {"site": "mh.encode"}


class TestCounters:
    def test_counters_by_key_and_total(self, recorder):
        telemetry.count("bus.delivered", key="sensor.out")
        telemetry.count("bus.delivered", n=4, key="sensor.out")
        telemetry.count("bus.delivered", key="compute.avg")
        assert recorder.counter("bus.delivered", key="sensor.out") == 5
        assert recorder.counter("bus.delivered", key="compute.avg") == 1
        assert recorder.counter_total("bus.delivered") == 6
        assert recorder.counter("bus.delivered") == 0  # key=None is distinct

    def test_gauge_keeps_high_water_mark(self, recorder):
        telemetry.gauge_max("queue.hwm", 3, key="q")
        telemetry.gauge_max("queue.hwm", 9, key="q")
        telemetry.gauge_max("queue.hwm", 4, key="q")
        assert recorder.gauges()[("queue.hwm", "q")] == 9

    def test_snapshot_flattens_keys(self, recorder):
        telemetry.count("reconfig.commits")
        telemetry.count("bus.routed", n=2, key="sensor.out")
        telemetry.gauge_max("queue.hwm", 7, key="display.inp")
        snapshot = recorder.snapshot()
        assert snapshot["counters"] == {
            "bus.routed{sensor.out}": 2,
            "reconfig.commits": 1,
        }
        assert snapshot["gauges"] == {"queue.hwm{display.inp}": 7}

    def test_counters_survive_ring_overflow(self, recorder):
        for i in range(recorder.capacity * 2):
            telemetry.count("spam")
            telemetry.event("tick", i=i)
        assert len(recorder.events()) == recorder.capacity
        assert recorder.counter("spam") == recorder.capacity * 2
        # ring keeps the *newest* records
        assert recorder.events()[-1]["attrs"]["i"] == recorder.capacity * 2 - 1


class TestExport:
    def test_jsonl_round_trip_with_trailing_counters(self, recorder, tmp_path):
        with telemetry.span("stage.commit", recon="rc-0001"):
            pass
        telemetry.event("reconfig.abort", recon="rc-0002", stage="rebind")
        telemetry.count("reconfig.commits")
        path = tmp_path / "trace.jsonl"
        lines_written = recorder.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == lines_written == 3
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["span", "event", "counters"]
        assert records[-1]["counters"] == {"reconfig.commits": 1}

    def test_jsonl_recon_filter_and_file_target(self, recorder):
        with telemetry.span("stage.commit", recon="rc-0001"):
            pass
        with telemetry.span("stage.rollback", recon="rc-0002"):
            pass
        out = io.StringIO()
        recorder.export_jsonl(out, recon="rc-0002")
        records = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r.get("name") for r in records[:-1]] == ["stage.rollback"]

    def test_unjsonable_attrs_fall_back_to_repr(self, recorder):
        telemetry.event("odd", obj=object())
        out = io.StringIO()
        recorder.export_jsonl(out)
        assert "object object" in out.getvalue()


class TestDisabled:
    def test_helpers_are_noops(self):
        assert telemetry.recorder is None
        assert not telemetry.enabled()
        assert telemetry.span("anything", key="value") is telemetry.NOOP_SPAN
        telemetry.count("bus.delivered", key="x")  # must not raise
        telemetry.gauge_max("queue.hwm", 5)
        telemetry.event("fault.fired", site="mh.encode")
        with telemetry.span("nested") as span:
            assert span.set(a=1) is telemetry.NOOP_SPAN
            span.close()

    def test_disabled_guard_allocates_nothing(self):
        """The hot-site idiom must not allocate when telemetry is off."""
        assert telemetry.recorder is None

        def guarded_site():
            rec = telemetry.recorder
            if rec is not None:
                rec.count("never")

        guarded_site()  # warm up
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                guarded_site()
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "lineno")
        grown = sum(s.size_diff for s in stats if s.size_diff > 0)
        # tracemalloc itself causes some churn; anything under a couple of
        # objects' worth across 1000 calls means the guard is allocation-free
        assert grown < 4096, f"disabled guard allocated {grown} bytes"

    def test_reconfiguration_ids_flow_without_recorder(self):
        assert telemetry.recorder is None
        first = telemetry.next_reconfiguration_id()
        second = telemetry.next_reconfiguration_id()
        assert first != second
        assert first.startswith("rc-")
