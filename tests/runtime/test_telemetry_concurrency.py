"""Counter aggregation stays exact under concurrency.

The enabled-mode redesign keeps one logical counter in up to three
physical places at once: per-thread shard cells (``telemetry.count``),
in-queue delivery cells (``RecordingMessageQueue``), and remote flight
recorders in worker processes whose absolute totals flow back through a
bus-side aggregation source.  These tests pin the merge contract down:

- increments from any number of racing threads sum exactly (each thread
  owns its shard; the merge is a read-time sum);
- a ``worker:``-placed module's deliveries — counted *inside the worker
  process* — land in the same ``bus.delivered{queue}`` counter as
  bus-side shard increments, with no lost and no double counts;
- repeated reads are idempotent, because every source reports absolute
  totals rather than consuming deltas.
"""

from __future__ import annotations

import threading

import pytest

from repro.bus.bus import SoftwareBus
from repro.bus.interfaces import InterfaceDecl, Role
from repro.bus.message import Message
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.runtime import telemetry

from tests.conftest import wait_until

COLLECTOR_SOURCE = '''
def main():
    got = 0
    mh.statics["got"] = 0
    mh.init()
    while mh.running:
        mh.read1("inp")
        got = got + 1
        mh.statics["got"] = got
'''

FEEDER_SOURCE = '''
def main():
    mh.sleep(0.01)
'''


@pytest.fixture
def recorder():
    rec = telemetry.enable(capacity=4096)
    yield rec
    telemetry.disable()


class TestThreadShardedCounters:
    THREADS = 8
    PER_THREAD = 5000

    def test_racing_increments_sum_exactly(self, recorder):
        """N threads hammering one (name, key) lose nothing: each thread
        increments its own shard cell, so there is no read-modify-write
        window to race on."""
        start = threading.Barrier(self.THREADS)

        def hammer():
            start.wait()
            for _ in range(self.PER_THREAD):
                telemetry.count("app.ticks", key="shared")

        workers = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert (
            recorder.counter("app.ticks", key="shared")
            == self.THREADS * self.PER_THREAD
        )

    def test_reads_concurrent_with_writes_never_overshoot(self, recorder):
        """Merging while writers run returns a momentary total that is
        monotone and never exceeds what was actually written."""
        done = threading.Event()
        observed = []

        def reader():
            while not done.is_set():
                observed.append(recorder.counter("app.ticks", key="live"))

        def writer():
            for _ in range(self.PER_THREAD):
                telemetry.count("app.ticks", key="live")

        rt = threading.Thread(target=reader)
        writers = [threading.Thread(target=writer) for _ in range(4)]
        rt.start()
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        done.set()
        rt.join()
        total = 4 * self.PER_THREAD
        assert recorder.counter("app.ticks", key="live") == total
        assert all(value <= total for value in observed)
        assert observed == sorted(observed), "merged counter went backwards"

    def test_repeated_reads_are_idempotent(self, recorder):
        telemetry.count("app.once", n=3)
        telemetry.gauge_max("app.depth", 7.0)
        first = (recorder.counters(), recorder.gauges())
        second = (recorder.counters(), recorder.gauges())
        assert first == second
        assert recorder.counter_total("app.once") == 3


@pytest.mark.multiproc
class TestRemoteWorkerAggregation:
    MESSAGES = 40
    THREADS = 4
    PER_THREAD = 250

    def test_worker_deliveries_and_thread_counts_share_one_counter(self):
        """The ``bus.delivered{collector.inp}`` counter is fed from two
        processes at once — the worker's in-queue cells (flushed back via
        the remote snapshot source) and bus-side thread shards — and the
        merged total is exactly the sum of both."""
        telemetry.enable(capacity=4096)
        bus = SoftwareBus(sleep_scale=0.0, workers=1)
        try:
            recorder = telemetry.recorder
            bus.add_module(
                ModuleSpec(
                    name="collector",
                    inline_source=COLLECTOR_SOURCE,
                    interfaces=[
                        InterfaceDecl(name="inp", role=Role.USE, pattern="l")
                    ],
                ),
                instance="collector",
                placement="worker:0",
            )
            bus.add_module(
                ModuleSpec(
                    name="feeder",
                    inline_source=FEEDER_SOURCE,
                    interfaces=[
                        InterfaceDecl(name="out", role=Role.DEFINE, pattern="l")
                    ],
                ),
                instance="feeder",
            )
            bus.add_binding(BindingSpec("feeder", "out", "collector", "inp"))
            bus.start_module("collector")

            for value in range(self.MESSAGES):
                bus.route(
                    "feeder",
                    "out",
                    Message(
                        values=[value],
                        fmt="l",
                        source_instance="feeder",
                        source_interface="out",
                    ).validated(),
                )
            # The collector consuming every message fences the remote
            # counts: a message is counted (in-queue, in the worker) at
            # put time, strictly before the module can read it.
            wait_until(
                lambda: bus.statics_of("collector").get("got") == self.MESSAGES,
                timeout=60.0,
            )

            def hammer():
                for _ in range(self.PER_THREAD):
                    telemetry.count("bus.delivered", key="collector.inp")

            workers = [
                threading.Thread(target=hammer) for _ in range(self.THREADS)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()

            expected = self.MESSAGES + self.THREADS * self.PER_THREAD
            assert (
                recorder.counter("bus.delivered", key="collector.inp") == expected
            )
            # Idempotent: the remote source re-reads absolute totals, so a
            # second merge neither consumes nor double-adds them.
            assert (
                recorder.counter("bus.delivered", key="collector.inp") == expected
            )
            # The route side saw every send exactly once too.
            assert recorder.counter("bus.routed", key="feeder.out") == self.MESSAGES
        finally:
            bus.shutdown()
            telemetry.disable()
