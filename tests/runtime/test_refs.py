"""Tests for Ref out-parameter cells (repro.runtime.refs)."""

from repro.runtime.refs import Ref


class TestRef:
    def test_get_set(self):
        cell = Ref(0.0)
        cell.set(2.5)
        assert cell.get() == 2.5

    def test_default_none(self):
        assert Ref().get() is None

    def test_update_accumulates(self):
        # The paper's *rp = *rp + t/num idiom.
        cell = Ref(1.0)
        cell.update(0.5)
        cell.update(0.5)
        assert cell.get() == 2.0

    def test_equality_by_value(self):
        assert Ref(3) == Ref(3)
        assert Ref(3) != Ref(4)
        assert Ref(3) != 3

    def test_identity_hash(self):
        a, b = Ref(1), Ref(1)
        assert hash(a) != hash(b) or a is b

    def test_repr(self):
        assert repr(Ref(7)) == "Ref(7)"

    def test_pointer_chain_semantics(self):
        # A Ref passed down a call chain writes into the caller's frame.
        def callee(out: Ref) -> None:
            out.set(out.get() + 1)

        result = Ref(10)
        callee(result)
        callee(result)
        assert result.get() == 12
