"""repro — reproduction of Hofmeister & Purtilo (ICDCS 1993):
"Dynamic Reconfiguration in Distributed Systems: Adapting Software
Modules for Replacement".

Quickstart::

    from repro import parse_mil, SoftwareBus, move_module
    from repro.apps import build_monitor_configuration

    config = build_monitor_configuration()
    bus = SoftwareBus(sleep_scale=0.0)
    bus.add_host("alpha")
    bus.add_host("beta")
    bus.launch(config, default_host="alpha")
    ...
    report = move_module(bus, "compute", machine="beta")
    print(report.describe())

Layer map (see DESIGN.md):

- ``repro.core``     — the paper's contribution: automatic source
  transformation installing capture/restore blocks
- ``repro.state``    — abstract machine-independent process state
- ``repro.runtime``  — the per-module ``mh`` runtime
- ``repro.bus``      — POLYLITH-style software bus + MIL
- ``repro.reconfig`` — reconfiguration primitives and scripts
- ``repro.baselines``— comparison systems from the related-work section
"""

from repro.bus import (
    ApplicationSpec,
    BindingSpec,
    InstanceSpec,
    ModuleSpec,
    SoftwareBus,
    parse_mil,
    parse_module_spec,
)
from repro.core import prepare_module
from repro.errors import ReproError
from repro.reconfig import (
    ReconfigurationCoordinator,
    ReconfigurationReport,
    attach_module,
    detach_module,
    move_module,
    replace_module,
    replicate_module,
    upgrade_module,
)
from repro.runtime import MH, Ref
from repro.state import MACHINES, MachineProfile, ProcessState

__version__ = "1.0.0"

__all__ = [
    "ApplicationSpec",
    "BindingSpec",
    "InstanceSpec",
    "ModuleSpec",
    "SoftwareBus",
    "parse_mil",
    "parse_module_spec",
    "prepare_module",
    "ReproError",
    "ReconfigurationCoordinator",
    "ReconfigurationReport",
    "move_module",
    "replace_module",
    "replicate_module",
    "upgrade_module",
    "attach_module",
    "detach_module",
    "MH",
    "Ref",
    "MACHINES",
    "MachineProfile",
    "ProcessState",
    "__version__",
]
