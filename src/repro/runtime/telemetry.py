"""Flight recorder for reconfiguration: spans, counters, and an event log.

The paper's economic argument is that *preparing* a module for
replacement costs almost nothing at steady state ("the run-time cost is
merely that of periodically testing the flags") while reconfiguration
itself is a short, bounded interruption.  This module makes both halves
of that claim observable:

- **Trace spans.**  Every coordinator stage (``clone_build``,
  ``signal``, ``wait_point``, ``rebind``, ``start_clone``,
  ``health_check``, ``commit``/``rollback``), every MH
  capture/encode/decode/restore, every TCP frame, and every module load
  opens a :class:`Span` with monotonic timestamps and a parent link, so
  a whole ``replace()`` renders as one tree (``python -m
  repro.tools.stats trace.jsonl --tree``).
- **Counters and gauges.**  Bus messages routed/delivered/dropped per
  binding, queue-depth high-water marks, routing-cache rebuilds
  (= cache misses), fault-injection fires, retries, rollbacks.  The
  link plane adds per-host keys: ``link.batches`` /
  ``link.batched_messages`` (coalesced-delivery efficiency — messages
  per frame is their ratio), ``link.events_dropped`` (frames lost on a
  failing or injected-fault send, paired with one ``link.send_failed``
  event per failure streak), and ``host.deliver_miss`` (batch entries
  whose module was withdrawn between flush and dispatch).
- **A bounded ring-buffer event log** (completed spans + point events)
  with JSON-lines export keyed by a reconfiguration id, so a failed
  chaos run dumps the exact interleaving that killed it next to the
  ``FaultPlan`` schedule.

Overhead discipline
-------------------

The recorder is a single module-global, ``recorder``, which is ``None``
when telemetry is disabled (the default).  Hot code guards every
instrumentation site with::

    rec = telemetry.recorder
    if rec is not None:
        rec.count("tcp.frames_sent")

so the disabled cost is one attribute load plus one branch — the same
idiom as :mod:`repro.runtime.faults`.  The bus goes further: its
per-message accounting is compiled into the routing table and the queue
classes at enable time (see ``SoftwareBus._rebuild_routing`` and
``queues.RecordingMessageQueue``), so the disabled ``route()`` fast path
carries **zero** added instructions.  Consequence: enable telemetry
*before* launching an application (or touch the topology afterwards)
for bus counters to appear.  ``bench_o1_telemetry_overhead`` proves both
the disabled-mode (<3%) and enabled-mode (<10%) overhead bounds.

Enabled-mode cost model (see docs/telemetry.md for the full writeup):

- **Counters are per-thread shards.**  ``count()`` increments a plain
  dict owned by the calling thread — no lock, no contention — and reads
  (``counters()``/``counter()``/``snapshot()``) merge the shards lazily.
  External *sources* (``add_source``) contribute absolute totals the
  same way: the bus registers one that derives ``bus.routed`` from queue
  cells, and one that pulls counters back from remote ``ModuleHost``
  processes, so reads are always a fresh, idempotent aggregation.
- **Spans are pooled and sampled.**  Each thread keeps a small free
  list of preallocated ``Span`` objects, and when the recorder is
  created with ``sample=N > 1``, top-level spans *outside* any
  reconfiguration (per-message bus/MH/TCP spans) are recorded 1-in-N —
  the rest return noop spans without allocating, and drop their whole
  subtree with them (the sampler decides at tree tops, so a recorded
  child never dangles from a dropped parent).  Spans inside a
  ``reconfig.replace`` tree (ambient root set, or any local parent, or
  an explicit ``recon=``) are **always** recorded, so replace trees
  stay complete at any sample rate.
- **Events buffer per thread.**  Completed spans and point events are
  appended to a thread-local buffer (lock-free for the owner) and
  flushed in batches into the bounded ring under a flush lock; any read
  (``events()``/``spans()``/``export_jsonl``) force-flushes all buffers
  first, so exports and chaos artifacts observe everything.

Threading model
---------------

Span parenting is thread-local (nested spans on one thread form a
chain), with one escape hatch: a span opened with ``ambient=True``
advertises itself process-globally as the current reconfiguration root,
so spans opened by *other* threads with no local parent — the old
module's capture/encode, the clone's decode/restore, TCP frame
handlers — attach to the in-flight ``replace()`` tree and inherit its
reconfiguration id.  One reconfiguration at a time is in flight per
coordinator, matching the paper's sequential scripts.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Tuple, Union

__all__ = [
    "FlightRecorder",
    "Span",
    "NOOP_SPAN",
    "recorder",
    "enable",
    "disable",
    "enabled",
    "on_activation",
    "span",
    "count",
    "gauge_max",
    "event",
    "next_reconfiguration_id",
    "trace_context",
    "adopt_trace_context",
    "clear_trace_context",
]

#: Reconfiguration ids are process-unique and independent of whether a
#: recorder is installed: ``ReconfigurationAborted`` carries one even
#: when telemetry is off.
_recon_ids = itertools.count(1)


def next_reconfiguration_id() -> str:
    return "rc-%04d" % next(_recon_ids)


#: Per-thread span free-list bounds: seeded at thread registration so the
#: steady state allocates nothing, capped so a burst of leaked spans
#: cannot grow it without bound.
_POOL_SEED = 8
_POOL_MAX = 32


class Span:
    """A started span.  Closing it appends a record to the event log.

    Usable as a context manager (the common case) or held and closed
    manually (``mh.capture`` opens at ``begin_reconfig_capture`` and
    closes inside ``encode``, on the same module thread).

    Spans that close cleanly (still on top of their own thread's stack)
    are returned to that thread's free list and reused by the next
    ``span()`` call, so the per-message steady state is allocation-free.
    Holding a reference to a span after closing it is fine for reads,
    but a second ``close()`` after the object has been recycled would
    close the *new* span — the in-tree callers never do this (they close
    once, or close then immediately drop the reference).
    """

    __slots__ = (
        "_recorder",
        "sid",
        "parent",
        "name",
        "recon",
        "attrs",
        "thread",
        "t0",
        "t1",
        "l0",
        "_ambient_prev",
        "_restore_ambient",
    )

    def __init__(
        self,
        recorder: "FlightRecorder",
        name: str,
        *,
        recon: Optional[str] = None,
        parent: Optional[int] = None,
        ambient: bool = False,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self._start(recorder, name, recon, parent, ambient, attrs if attrs is not None else {})

    def _start(
        self,
        recorder: "FlightRecorder",
        name: str,
        recon: Optional[str],
        parent: Optional[int],
        ambient: bool,
        attrs: Dict[str, Any],
    ) -> None:
        """(Re)initialise every slot — also the pool-reuse entry point."""
        self._recorder = recorder
        self.sid = next(recorder._ids)
        self.name = name
        self.attrs = attrs
        self.thread = threading.current_thread().name
        self.t1 = None

        stack = recorder._stack()
        if parent is not None:
            self.parent = parent
        elif stack:
            self.parent = stack[-1].sid
        else:
            current = recorder._ambient
            self.parent = current[1] if current is not None else None

        if recon is not None:
            self.recon = recon
        elif stack:
            self.recon = stack[-1].recon
        else:
            current = recorder._ambient
            self.recon = current[0] if current is not None else None

        self._restore_ambient = ambient
        if ambient:
            self._ambient_prev = recorder._ambient
            recorder._ambient = (self.recon, self.sid)
        else:
            self._ambient_prev = None
        stack.append(self)
        # Lamport stamp at open: causally after whatever set the clock
        # (including an adopted cross-process trace context), so on every
        # parent->child edge of a merged tree child.l0 > parent.l0 holds
        # even when the two halves ran on machines with unrelated wall
        # clocks.  Only *recorded* spans tick (sampled-out tops never
        # reach _start), so the steady-state sampling fast path pays
        # nothing for it.
        self.l0 = recorder._tick()
        self.t0 = time.monotonic()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-flight; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def close(self) -> None:
        if self.t1 is not None:  # idempotent
            return
        self.t1 = time.monotonic()
        rec = self._recorder
        stack = rec._stack()
        clean = False
        if stack and stack[-1] is self:
            stack.pop()
            clean = True
        elif self in stack:  # closed out of order; be forgiving
            stack.remove(self)
        if self._restore_ambient:
            rec._ambient = self._ambient_prev
        rec._emit(
            {
                "type": "span",
                "sid": self.sid,
                "parent": self.parent,
                "name": self.name,
                "recon": self.recon,
                "thread": self.thread,
                "t0": self.t0,
                "t1": self.t1,
                "ms": (self.t1 - self.t0) * 1000.0,
                "l0": self.l0,
                "lamport": rec._tick(),
                "attrs": self.attrs,
            }
        )
        # Only a span popped cleanly off its *own* thread's stack is safe
        # to recycle: a leaked or cross-thread close may still be
        # referenced by someone who thinks it is theirs.
        if clean:
            pool = rec._pool()
            if len(pool) < _POOL_MAX:
                pool.append(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t1 is None else "closed"
        return f"<Span {self.name!r} sid={self.sid} parent={self.parent} {state}>"


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NoopSpan>"


NOOP_SPAN = _NoopSpan()


class _DroppedSpan(_NoopSpan):
    """A sampled-out *top-level* span.

    While it is open, every anonymous span its thread opens is dropped
    too (they get the shared :data:`NOOP_SPAN`), so the sampler decides
    whole trees: without this, a child of a dropped parent would look
    top-level itself, consume its own sampling tick, and — with uniform
    parent/child workloads — the tick parity could record *only*
    orphaned children while never recording a parent.
    """

    __slots__ = ("_tls", "_closed")

    def __init__(self, tls):
        self._tls = tls
        self._closed = False
        tls.dropped += 1

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tls.dropped -= 1

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DroppedSpan>"

_CounterKey = Tuple[str, Optional[str]]
#: An external aggregation source: returns ``(counters, gauges)`` as
#: *absolute totals* keyed ``(name, key)``.  Called outside the recorder
#: lock on every read; counters are summed in, gauges max-merged.
Source = Callable[[], Tuple[Dict[_CounterKey, int], Dict[_CounterKey, float]]]


def _shard_items(shard: Dict[_CounterKey, Any]) -> List[Tuple[_CounterKey, Any]]:
    """Snapshot a shard owned by another (still-running) thread.

    The owner inserts new keys without a lock, so a plain ``items()``
    iteration can raise ``RuntimeError: dictionary changed size``; retry
    until a consistent snapshot lands (insertions are rare — one per new
    (name, key) pair per thread — so this converges immediately).
    """
    while True:
        try:
            return list(shard.items())
        except RuntimeError:
            continue


class FlightRecorder:
    """Process-global trace-span + counter + event-log sink.

    The event log is a bounded ring (``capacity`` most recent records):
    old traffic falls off the back, the reconfiguration that just failed
    stays in.  Counters and gauges are unbounded but tiny (one slot per
    name/key pair per thread) and survive ring overflow.

    ``sample=N`` records 1-in-N of the top-level spans opened outside
    any reconfiguration; everything under a ``reconfig.replace`` root is
    always recorded (see module docstring).  ``sample=1`` (the default)
    records everything.
    """

    def __init__(self, capacity: int = 4096, sample: int = 1):
        self.capacity = capacity
        self.sample = max(1, int(sample))
        self._ids = itertools.count(1)
        #: Guards shard/source registration and slow-path reads only —
        #: never taken on the per-message hot path.
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        #: Flush granularity: small enough that a tiny ring still ends
        #: up holding the newest ``capacity`` records after overflow.
        self._flush_batch = min(32, max(1, capacity // 8))
        self._counter_shards: List[Dict[_CounterKey, int]] = []
        self._gauge_shards: List[Dict[_CounterKey, float]] = []
        self._buffers: List[List[Dict[str, Any]]] = []
        self._sources: List[Source] = []
        self._tls = threading.local()
        #: (recon_id, root span id) of the in-flight reconfiguration.
        #: A *negative* root id means the root lives in another process
        #: (an adopted trace context carries the bus-side span id); the
        #: merge flips the sign back — see :meth:`ingest_remote`.
        self._ambient: Optional[Tuple[Optional[str], int]] = None
        #: Lamport logical clock.  Wall clocks across processes are not
        #: comparable; this is the honest cross-process ordering.
        self._lamport = 0
        self._lamport_lock = threading.Lock()
        #: host name -> {remote sid -> local sid}, persistent across
        #: ingests so a parent shipped in a later batch than its child
        #: still lands on the same local id.
        self._remote_maps: Dict[str, Dict[int, int]] = {}
        self._health_provider: Optional[Callable[[], Dict[str, Any]]] = None

    # -- lamport clock -------------------------------------------------

    def _tick(self) -> int:
        """Advance and return the logical clock (a local event).

        Deliberately lock-free: under the GIL a racing pair of ticks can
        collapse into one (both read v, both write v+1), but a duplicate
        tick never breaks the ordering contract — parent/child on one
        thread are sequenced by program order, ambient children only
        ever attach to an already-ticked root, and every cross-process
        edge goes through the locked :meth:`observe_tick` max-merge,
        which emits a strictly larger value.  This runs on the recorded
        span open/close fast path, where a lock acquisition is the
        single most expensive instruction.
        """
        value = self._lamport + 1
        self._lamport = value
        return value

    def observe_tick(self, remote: int) -> int:
        """Merge a tick received from another process (Lamport receive).

        Locked (rare: context adoption and batch ingest, never the span
        fast path).  A concurrent lock-free ``_tick`` cannot regress the
        clock: both writes are strictly greater than the value each side
        read.
        """
        with self._lamport_lock:
            self._lamport = max(self._lamport, int(remote)) + 1
            return self._lamport

    # -- per-thread registration ---------------------------------------

    def _register_thread(self) -> Any:
        """First telemetry touch from a thread: allocate its shards."""
        tls = self._tls
        with self._lock:
            tls.counters = counters = {}
            tls.gauges = gauges = {}
            tls.buffer = buffer = []
            tls.stack = []
            tls.pool = [Span.__new__(Span) for _ in range(_POOL_SEED)]
            tls.sample_tick = 0
            tls.dropped = 0
            self._counter_shards.append(counters)
            self._gauge_shards.append(gauges)
            self._buffers.append(buffer)
        return tls

    def _stack(self) -> List[Span]:
        try:
            return self._tls.stack
        except AttributeError:
            return self._register_thread().stack

    def _pool(self) -> List[Span]:
        try:
            return self._tls.pool
        except AttributeError:
            return self._register_thread().pool

    # -- spans ---------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        recon: Optional[str] = None,
        parent: Optional[int] = None,
        ambient: bool = False,
        **attrs: Any,
    ) -> Union[Span, _NoopSpan]:
        """Open (and start) a span.  Close it to record it.

        May return ``NOOP_SPAN`` when sampling drops a top-level span.
        """
        return self._span(name, recon, parent, ambient, attrs)

    def _span(
        self,
        name: str,
        recon: Optional[str],
        parent: Optional[int],
        ambient: bool,
        attrs: Dict[str, Any],
    ) -> Union[Span, _NoopSpan]:
        tls = self._tls
        try:
            stack = tls.stack
        except AttributeError:
            tls = self._register_thread()
            stack = tls.stack
        if (
            self.sample > 1
            and not ambient
            and parent is None
            and recon is None
            and not stack
            and self._ambient is None
        ):
            if tls.dropped:
                # Anonymous descendant of a sampled-out span: dropped
                # with its tree, no tick consumed, not counted (only
                # tree tops land in telemetry.sampled_out).
                return NOOP_SPAN
            tick = tls.sample_tick + 1
            tls.sample_tick = tick
            if tick % self.sample:
                shard = tls.counters
                k = ("telemetry.sampled_out", name)
                shard[k] = shard.get(k, 0) + 1
                return _DroppedSpan(tls)
        pool = tls.pool
        if pool:
            span = pool.pop()
            span._start(self, name, recon, parent, ambient, attrs)
            return span
        return Span(self, name, recon=recon, parent=parent, ambient=ambient, attrs=attrs)

    # -- counters / gauges ---------------------------------------------

    def count(self, name: str, n: int = 1, key: Optional[str] = None) -> None:
        """Increment a counter: one dict op on this thread's shard."""
        try:
            shard = self._tls.counters
        except AttributeError:
            shard = self._register_thread().counters
        k = (name, key)
        shard[k] = shard.get(k, 0) + n

    def gauge_max(self, name: str, value: float, key: Optional[str] = None) -> None:
        """High-water-mark gauge: keeps the maximum value ever seen."""
        try:
            shard = self._tls.gauges
        except AttributeError:
            shard = self._register_thread().gauges
        k = (name, key)
        current = shard.get(k)
        if current is None or value > current:
            shard[k] = value

    def add_source(self, source: Source) -> None:
        """Register an external aggregation source (see :data:`Source`).

        Sources must return *absolute* totals — they are re-read in full
        on every merge, which makes reads idempotent (a remote host's
        counters are never "consumed", so repeated reads cannot double
        count and a missed read loses nothing).
        """
        with self._lock:
            self._sources.append(source)

    def _merged(self) -> Tuple[Dict[_CounterKey, int], Dict[_CounterKey, float]]:
        """Fresh aggregation of all shards + sources.

        Copies the registration lists under the lock, then walks them
        outside it: sources may take their own locks (the bus lock, a
        transport link), and must never be called with ours held.
        """
        with self._lock:
            counter_shards = list(self._counter_shards)
            gauge_shards = list(self._gauge_shards)
            sources = list(self._sources)
        counters: Dict[_CounterKey, int] = {}
        for shard in counter_shards:
            for k, v in _shard_items(shard):
                counters[k] = counters.get(k, 0) + v
        gauges: Dict[_CounterKey, float] = {}
        for shard in gauge_shards:
            for k, v in _shard_items(shard):
                current = gauges.get(k)
                if current is None or v > current:
                    gauges[k] = v
        for source in sources:
            try:
                extra_counters, extra_gauges = source()
            except Exception:
                continue  # a dead worker/link must not poison local reads
            for k, v in extra_counters.items():
                counters[k] = counters.get(k, 0) + v
            for k, v in extra_gauges.items():
                current = gauges.get(k)
                if current is None or v > current:
                    gauges[k] = v
        return counters, gauges

    def counters(self) -> Dict[_CounterKey, int]:
        return self._merged()[0]

    def gauges(self) -> Dict[_CounterKey, float]:
        return self._merged()[1]

    def counter(self, name: str, key: Optional[str] = None) -> int:
        return self._merged()[0].get((name, key), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all keys."""
        return sum(v for (n, _), v in self._merged()[0].items() if n == name)

    # -- events --------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        """Append to this thread's buffer; flush a batch when full.

        Only the owning thread appends to its buffer; the flush holds
        ``_flush_lock`` and moves a length-stable prefix (the owner only
        ever appends, so ``buffer[:n]`` + ``del buffer[:n]`` is exact —
        no record is lost or duplicated even if the owner appends more
        while another thread's read-flush is mid-transfer).
        """
        try:
            buffer = self._tls.buffer
        except AttributeError:
            buffer = self._register_thread().buffer
        buffer.append(record)
        if len(buffer) >= self._flush_batch:
            with self._flush_lock:
                n = len(buffer)
                self._events.extend(buffer[:n])
                del buffer[:n]

    def _flush_all(self) -> None:
        with self._lock:
            buffers = list(self._buffers)
        with self._flush_lock:
            for buffer in buffers:
                n = len(buffer)
                if n:
                    self._events.extend(buffer[:n])
                    del buffer[:n]

    def event(self, kind: str, *, recon: Optional[str] = None, **fields: Any) -> None:
        """Record a point event (fault fired, abort, crash, ...)."""
        if recon is None:
            stack = self._stack()
            if stack:
                recon = stack[-1].recon
            else:
                current = self._ambient
                recon = current[0] if current is not None else None
        self._emit(
            {
                "type": "event",
                "kind": kind,
                "recon": recon,
                "thread": threading.current_thread().name,
                "t": time.monotonic(),
                "lamport": self._tick(),
                "attrs": fields,
            }
        )

    def events(self, recon: Optional[str] = None) -> List[Dict[str, Any]]:
        """Ring contents, oldest-completion first across all threads."""
        self._flush_all()
        with self._flush_lock:
            records = list(self._events)
        records.sort(key=lambda r: r.get("t1") or r.get("t") or 0.0)
        if recon is not None:
            records = [r for r in records if r.get("recon") == recon]
        return records

    def spans(self, recon: Optional[str] = None, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Completed span records, optionally filtered."""
        records = [r for r in self.events(recon) if r["type"] == "span"]
        if name is not None:
            records = [r for r in records if r["name"] == name]
        return records

    # -- cross-process trace merge -------------------------------------

    def drain_records(self) -> List[Dict[str, Any]]:
        """Pop every buffered span/event record (remote-side shipping).

        A worker/daemon recorder calls this when the bus asks for a
        ``telemetry_snapshot``: records ship exactly once (counters stay
        put — they are absolute totals, re-read idempotently).  The bus
        recorder never drains itself.
        """
        self._flush_all()
        with self._flush_lock:
            records = list(self._events)
            self._events.clear()
        return records

    def ingest_remote(self, host: str, records: List[Dict[str, Any]]) -> int:
        """Merge records drained from another process into this ring.

        Remote span ids live in that process's id space; each gets a
        fresh local sid via a per-``host`` persistent map (so a parent
        arriving in a later batch than its child still joins up).
        Parent links are rewritten the same way, with one special case:
        a *negative* parent is "minus the bus-side sid" stamped by
        :func:`adopt_trace_context`, so flipping the sign reattaches the
        remote subtree to the local span that caused it.  Every record
        is tagged ``host`` for per-hop annotations, and the local
        Lamport clock absorbs the remote ticks.
        """
        if not records:
            return 0
        with self._lock:
            mapping = self._remote_maps.setdefault(host, {})
        max_tick = 0
        # First pass: allocate local sids for every remote sid referenced
        # (record sids *and* positive parents — ring order is completion
        # order, so a child record precedes its parent's).
        for record in records:
            if record.get("type") != "span":
                continue
            for remote_sid in (record.get("sid"), record.get("parent")):
                if isinstance(remote_sid, int) and remote_sid > 0 and remote_sid not in mapping:
                    mapping[remote_sid] = next(self._ids)
        merged: List[Dict[str, Any]] = []
        for record in records:
            rec = dict(record)
            rec["host"] = host
            for field in ("l0", "lamport"):
                tick = rec.get(field)
                if isinstance(tick, int) and tick > max_tick:
                    max_tick = tick
            if rec.get("type") == "span":
                rec["sid"] = mapping.get(rec.get("sid"), rec.get("sid"))
                parent = rec.get("parent")
                if isinstance(parent, int):
                    rec["parent"] = -parent if parent < 0 else mapping.get(parent)
            merged.append(rec)
        if max_tick:
            self.observe_tick(max_tick)
        with self._flush_lock:
            self._events.extend(merged)
        return len(merged)

    # -- health plane --------------------------------------------------

    def set_health_provider(
        self, provider: Optional[Callable[[], Dict[str, Any]]]
    ) -> None:
        """Install the callable behind ``snapshot()["health"]``.

        The bus registers its :class:`~repro.runtime.health.HealthMonitor`
        here when heartbeats are enabled, so exports and the stats CLI
        see liveness next to the counters without new plumbing.
        """
        self._health_provider = provider

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Counters + gauges with ``name{key}``-style string keys.

        Also carries a ``telemetry`` block recording how the numbers
        were produced (sample rate, shard/source counts), so exported
        artifacts are self-describing.
        """

        def flatten(table: Dict[_CounterKey, Any]) -> Dict[str, Any]:
            out: Dict[str, Any] = {}
            for (name, key), value in sorted(table.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")):
                out[name if key is None else f"{name}{{{key}}}"] = value
            return out

        counters, gauges = self._merged()
        with self._lock:
            meta = {
                "sample": self.sample,
                "capacity": self.capacity,
                "counter_shards": len(self._counter_shards),
                "sources": len(self._sources),
            }
        snap = {"counters": flatten(counters), "gauges": flatten(gauges), "telemetry": meta}
        provider = self._health_provider
        if provider is not None:
            try:
                snap["health"] = provider()
            except Exception:
                pass  # a wedged monitor must not poison counter reads
        return snap

    def export_jsonl(
        self, target: Union[str, "IO[str]"], recon: Optional[str] = None
    ) -> int:
        """Dump the event log (oldest first) as JSON lines.

        Ends with one ``{"type": "counters", ...}`` record holding the
        counter/gauge snapshot.  Returns the number of lines written.
        ``target`` is a path or an open text file.
        """
        records = self.events(recon)
        records.append({"type": "counters", **self.snapshot()})
        if hasattr(target, "write"):
            out = target
            close = False
        else:
            out = open(target, "w", encoding="utf-8")
            close = True
        try:
            for record in records:
                out.write(json.dumps(record, default=repr) + "\n")
        finally:
            if close:
                out.close()
        return len(records)


#: THE flight recorder, or ``None`` when telemetry is disabled.  Hot
#: paths read this exactly once per site: one attribute load + branch.
recorder: Optional[FlightRecorder] = None

#: Activation hooks: called with the new recorder on ``enable()`` and
#: with ``None`` on ``disable()``.  The queue layer uses this to swap
#: live queues to/from their recording class; registration is
#: import-time only (no unregistration — modules live as long as the
#: process).
_activation_hooks: List[Callable[[Optional[FlightRecorder]], None]] = []


def on_activation(hook: Callable[[Optional[FlightRecorder]], None]) -> Callable:
    """Register ``hook(recorder_or_None)`` to run at enable()/disable()."""
    _activation_hooks.append(hook)
    return hook


def enable(capacity: int = 4096, sample: int = 1) -> FlightRecorder:
    """Install (and return) a fresh recorder, replacing any current one.

    ``sample=N`` records 1-in-N top-level per-message spans (replace
    trees are always complete; see module docstring).  Enable *before*
    launching a bus so that per-message bus accounting is compiled into
    its routing table and queues (see module docstring).
    """
    global recorder
    recorder = rec = FlightRecorder(capacity=capacity, sample=sample)
    for hook in _activation_hooks:
        hook(rec)
    return rec


def disable() -> Optional[FlightRecorder]:
    """Uninstall the recorder; returns it so callers can still export."""
    global recorder
    current, recorder = recorder, None
    for hook in _activation_hooks:
        hook(None)
    return current


def enabled() -> bool:
    return recorder is not None


# -- module-level conveniences (each is a no-op when disabled) ---------


def span(
    name: str,
    *,
    recon: Optional[str] = None,
    parent: Optional[int] = None,
    ambient: bool = False,
    **attrs: Any,
) -> Union[Span, _NoopSpan]:
    rec = recorder
    if rec is None:
        return NOOP_SPAN
    return rec._span(name, recon, parent, ambient, attrs)


def count(name: str, n: int = 1, key: Optional[str] = None) -> None:
    rec = recorder
    if rec is not None:
        rec.count(name, n, key=key)


def gauge_max(name: str, value: float, key: Optional[str] = None) -> None:
    rec = recorder
    if rec is not None:
        rec.gauge_max(name, value, key=key)


def event(kind: str, *, recon: Optional[str] = None, **fields: Any) -> None:
    rec = recorder
    if rec is not None:
        rec.event(kind, recon=recon, **fields)


# -- cross-process trace context ---------------------------------------


def trace_context() -> Optional[Tuple[Optional[str], int, int]]:
    """The ``(recon_id, parent_span_id, lamport_tick)`` to propagate.

    ``None`` when telemetry is off or nothing trace-worthy is in flight
    (no open span on this thread, no ambient reconfiguration root) —
    which is also the wire format's backward-compatible absence.  The
    tick is taken at call time, i.e. at *send* time, so the receiver's
    clock lands causally after the sender's.
    """
    rec = recorder
    if rec is None:
        return None
    stack = rec._stack()
    if stack:
        top = stack[-1]
        return (top.recon, top.sid, rec._tick())
    current = rec._ambient
    if current is not None:
        return (current[0], current[1], rec._tick())
    return None


def adopt_trace_context(
    recon: Optional[str], parent_sid: int, tick: int
) -> None:
    """Receiver side: record subsequent spans under a remote parent.

    Sets the process-global ambient root to ``(recon, -parent_sid)`` —
    the sign marks "this sid belongs to the sending process", and
    ``FlightRecorder.ingest_remote`` flips it back when the records ship
    home — and merges the sender's Lamport tick so ordering stays
    honest.  No-op while telemetry is disabled.
    """
    rec = recorder
    if rec is None:
        return
    rec.observe_tick(tick)
    rec._ambient = (recon, -int(parent_sid))


def clear_trace_context() -> None:
    """Receiver side: drop the adopted ambient root (commit/rollback)."""
    rec = recorder
    if rec is not None:
        rec._ambient = None
