"""Flight recorder for reconfiguration: spans, counters, and an event log.

The paper's economic argument is that *preparing* a module for
replacement costs almost nothing at steady state ("the run-time cost is
merely that of periodically testing the flags") while reconfiguration
itself is a short, bounded interruption.  This module makes both halves
of that claim observable:

- **Trace spans.**  Every coordinator stage (``clone_build``,
  ``signal``, ``wait_point``, ``rebind``, ``start_clone``,
  ``health_check``, ``commit``/``rollback``), every MH
  capture/encode/decode/restore, every TCP frame, and every module load
  opens a :class:`Span` with monotonic timestamps and a parent link, so
  a whole ``replace()`` renders as one tree (``python -m
  repro.tools.stats trace.jsonl --tree``).
- **Counters and gauges.**  Bus messages routed/delivered/dropped per
  binding, queue-depth high-water marks, routing-cache rebuilds
  (= cache misses), fault-injection fires, retries, rollbacks.
- **A bounded ring-buffer event log** (completed spans + point events)
  with JSON-lines export keyed by a reconfiguration id, so a failed
  chaos run dumps the exact interleaving that killed it next to the
  ``FaultPlan`` schedule.

Overhead discipline
-------------------

The recorder is a single module-global, ``recorder``, which is ``None``
when telemetry is disabled (the default).  Hot code guards every
instrumentation site with::

    rec = telemetry.recorder
    if rec is not None:
        rec.count("bus.delivered", key=endpoint)

so the disabled cost is one attribute load plus one branch — the same
idiom as :mod:`repro.runtime.faults`.  The bus goes one step further:
its per-message counters are compiled into the routing table at rebuild
time (see ``SoftwareBus._rebuild_routing``), so the disabled ``route()``
fast path carries **zero** added instructions.  Consequence: enable
telemetry *before* launching an application (or touch the topology
afterwards) for bus counters to appear.  ``bench_o1_telemetry_overhead``
proves the disabled-mode overhead bound.

Threading model
---------------

Span parenting is thread-local (nested spans on one thread form a
chain), with one escape hatch: a span opened with ``ambient=True``
advertises itself process-globally as the current reconfiguration root,
so spans opened by *other* threads with no local parent — the old
module's capture/encode, the clone's decode/restore, TCP frame
handlers — attach to the in-flight ``replace()`` tree and inherit its
reconfiguration id.  One reconfiguration at a time is in flight per
coordinator, matching the paper's sequential scripts.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import IO, Any, Deque, Dict, List, Optional, Tuple, Union

__all__ = [
    "FlightRecorder",
    "Span",
    "NOOP_SPAN",
    "recorder",
    "enable",
    "disable",
    "enabled",
    "span",
    "count",
    "gauge_max",
    "event",
    "next_reconfiguration_id",
]

#: Reconfiguration ids are process-unique and independent of whether a
#: recorder is installed: ``ReconfigurationAborted`` carries one even
#: when telemetry is off.
_recon_ids = itertools.count(1)


def next_reconfiguration_id() -> str:
    return "rc-%04d" % next(_recon_ids)


class Span:
    """A started span.  Closing it appends a record to the event log.

    Usable as a context manager (the common case) or held and closed
    manually (``mh.capture`` opens at ``begin_reconfig_capture`` and
    closes inside ``encode``, on the same module thread).
    """

    __slots__ = (
        "_recorder",
        "sid",
        "parent",
        "name",
        "recon",
        "attrs",
        "thread",
        "t0",
        "t1",
        "_ambient_prev",
        "_restore_ambient",
    )

    def __init__(
        self,
        recorder: "FlightRecorder",
        name: str,
        *,
        recon: Optional[str] = None,
        parent: Optional[int] = None,
        ambient: bool = False,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self._recorder = recorder
        self.sid = next(recorder._ids)
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.thread = threading.current_thread().name
        self.t1: Optional[float] = None

        stack = recorder._stack()
        if parent is not None:
            self.parent: Optional[int] = parent
        elif stack:
            self.parent = stack[-1].sid
        else:
            current = recorder._ambient
            self.parent = current[1] if current is not None else None

        if recon is not None:
            self.recon: Optional[str] = recon
        elif stack:
            self.recon = stack[-1].recon
        else:
            current = recorder._ambient
            self.recon = current[0] if current is not None else None

        self._restore_ambient = ambient
        if ambient:
            self._ambient_prev = recorder._ambient
            recorder._ambient = (self.recon, self.sid)
        else:
            self._ambient_prev = None
        stack.append(self)
        self.t0 = time.monotonic()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-flight; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def close(self) -> None:
        if self.t1 is not None:  # idempotent
            return
        self.t1 = time.monotonic()
        rec = self._recorder
        stack = rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # closed out of order; be forgiving
            stack.remove(self)
        if self._restore_ambient:
            rec._ambient = self._ambient_prev
        rec._events.append(
            {
                "type": "span",
                "sid": self.sid,
                "parent": self.parent,
                "name": self.name,
                "recon": self.recon,
                "thread": self.thread,
                "t0": self.t0,
                "t1": self.t1,
                "ms": (self.t1 - self.t0) * 1000.0,
                "attrs": self.attrs,
            }
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t1 is None else "closed"
        return f"<Span {self.name!r} sid={self.sid} parent={self.parent} {state}>"


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NoopSpan>"


NOOP_SPAN = _NoopSpan()

_CounterKey = Tuple[str, Optional[str]]


class FlightRecorder:
    """Process-global trace-span + counter + event-log sink.

    The event log is a bounded ring (``capacity`` most recent records):
    old traffic falls off the back, the reconfiguration that just failed
    stays in.  Counters and gauges are unbounded but tiny (one slot per
    name/key pair) and survive ring overflow.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._counters: Dict[_CounterKey, int] = {}
        self._gauges: Dict[_CounterKey, float] = {}
        self._tls = threading.local()
        #: (recon_id, root span id) of the in-flight reconfiguration.
        self._ambient: Optional[Tuple[Optional[str], int]] = None

    # -- spans ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(
        self,
        name: str,
        *,
        recon: Optional[str] = None,
        parent: Optional[int] = None,
        ambient: bool = False,
        **attrs: Any,
    ) -> Span:
        """Open (and start) a span.  Close it to record it."""
        return Span(self, name, recon=recon, parent=parent, ambient=ambient, attrs=attrs)

    # -- counters / gauges ---------------------------------------------

    def count(self, name: str, n: int = 1, key: Optional[str] = None) -> None:
        k = (name, key)
        with self._lock:
            self._counters[k] = self._counters.get(k, 0) + n

    def gauge_max(self, name: str, value: float, key: Optional[str] = None) -> None:
        """High-water-mark gauge: keeps the maximum value ever seen."""
        k = (name, key)
        with self._lock:
            if value > self._gauges.get(k, float("-inf")):
                self._gauges[k] = value

    def counters(self) -> Dict[_CounterKey, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[_CounterKey, float]:
        with self._lock:
            return dict(self._gauges)

    def counter(self, name: str, key: Optional[str] = None) -> int:
        with self._lock:
            return self._counters.get((name, key), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all keys."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    # -- events --------------------------------------------------------

    def event(self, kind: str, *, recon: Optional[str] = None, **fields: Any) -> None:
        """Record a point event (fault fired, abort, crash, ...)."""
        if recon is None:
            stack = self._stack()
            if stack:
                recon = stack[-1].recon
            else:
                current = self._ambient
                recon = current[0] if current is not None else None
        self._events.append(
            {
                "type": "event",
                "kind": kind,
                "recon": recon,
                "thread": threading.current_thread().name,
                "t": time.monotonic(),
                "attrs": fields,
            }
        )

    def events(self, recon: Optional[str] = None) -> List[Dict[str, Any]]:
        records = list(self._events)
        if recon is not None:
            records = [r for r in records if r.get("recon") == recon]
        return records

    def spans(self, recon: Optional[str] = None, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Completed span records, optionally filtered."""
        records = [r for r in self.events(recon) if r["type"] == "span"]
        if name is not None:
            records = [r for r in records if r["name"] == name]
        return records

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Counters + gauges with ``name{key}``-style string keys."""

        def flatten(table: Dict[_CounterKey, Any]) -> Dict[str, Any]:
            out: Dict[str, Any] = {}
            for (name, key), value in sorted(table.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")):
                out[name if key is None else f"{name}{{{key}}}"] = value
            return out

        return {"counters": flatten(self.counters()), "gauges": flatten(self.gauges())}

    def export_jsonl(
        self, target: Union[str, "IO[str]"], recon: Optional[str] = None
    ) -> int:
        """Dump the event log (oldest first) as JSON lines.

        Ends with one ``{"type": "counters", ...}`` record holding the
        counter/gauge snapshot.  Returns the number of lines written.
        ``target`` is a path or an open text file.
        """
        records = self.events(recon)
        records.append({"type": "counters", **self.snapshot()})
        if hasattr(target, "write"):
            out = target
            close = False
        else:
            out = open(target, "w", encoding="utf-8")
            close = True
        try:
            for record in records:
                out.write(json.dumps(record, default=repr) + "\n")
        finally:
            if close:
                out.close()
        return len(records)


#: THE flight recorder, or ``None`` when telemetry is disabled.  Hot
#: paths read this exactly once per site: one attribute load + branch.
recorder: Optional[FlightRecorder] = None


def enable(capacity: int = 4096) -> FlightRecorder:
    """Install (and return) a fresh recorder, replacing any current one.

    Enable *before* launching a bus so that per-message bus counters are
    compiled into its routing table (see module docstring).
    """
    global recorder
    recorder = FlightRecorder(capacity=capacity)
    return recorder


def disable() -> Optional[FlightRecorder]:
    """Uninstall the recorder; returns it so callers can still export."""
    global recorder
    current, recorder = recorder, None
    return current


def enabled() -> bool:
    return recorder is not None


# -- module-level conveniences (each is a no-op when disabled) ---------


def span(
    name: str,
    *,
    recon: Optional[str] = None,
    parent: Optional[int] = None,
    ambient: bool = False,
    **attrs: Any,
) -> Union[Span, _NoopSpan]:
    rec = recorder
    if rec is None:
        return NOOP_SPAN
    return Span(rec, name, recon=recon, parent=parent, ambient=ambient, attrs=attrs)


def count(name: str, n: int = 1, key: Optional[str] = None) -> None:
    rec = recorder
    if rec is not None:
        rec.count(name, n, key=key)


def gauge_max(name: str, value: float, key: Optional[str] = None) -> None:
    rec = recorder
    if rec is not None:
        rec.gauge_max(name, value, key=key)


def event(kind: str, *, recon: Optional[str] = None, **fields: Any) -> None:
    rec = recorder
    if rec is not None:
        rec.event(kind, recon=recon, **fields)
