"""File re-attachment hooks.

Paper Section 1.2: "File descriptors are an essential part of the process
state, but this information is usually accessible only to the kernel ...
so we do not automatically capture them at this time.  At the present
time, the programmer must write code to ... regain access to files."

We reproduce that contract: the platform captures a *description* of each
registered file (path, mode, position) — which is all that is portable —
and the programmer-supplied reattach function reopens it in the clone.
A default reattach that reopens by path and seeks is provided, since that
is what most long-running modules need.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Callable, Dict, IO, List, Optional

from repro.errors import RestoreError


@dataclass
class FileDescription:
    """The abstract, machine-independent description of an open file."""

    name: str
    path: str
    mode: str
    position: int

    def to_abstract(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "mode": self.mode,
            "position": self.position,
        }

    @classmethod
    def from_abstract(cls, value: object) -> "FileDescription":
        if not isinstance(value, dict):
            raise RestoreError(f"malformed file description {value!r}")
        try:
            return cls(
                name=str(value["name"]),
                path=str(value["path"]),
                mode=str(value["mode"]),
                position=int(value["position"]),
            )
        except KeyError as missing:
            raise RestoreError(f"file description missing {missing}") from None


def default_reattach(description: FileDescription) -> IO:
    """Reopen by path and seek to the captured position."""
    mode = description.mode
    if "w" in mode and "+" not in mode and os.path.exists(description.path):
        # Reopening with 'w' would truncate the file the old module wrote;
        # switch to read/write-without-truncate, preserving the data.
        mode = mode.replace("w", "r+")
    handle = open(description.path, mode)
    handle.seek(description.position)
    return handle


class FileReattachRegistry:
    """Per-module registry of open files participating in reconfiguration."""

    def __init__(self):
        self._files: Dict[str, IO] = {}
        self._reattach: Dict[str, Callable[[FileDescription], IO]] = {}

    def register(
        self,
        name: str,
        handle: IO,
        reattach: Optional[Callable[[FileDescription], IO]] = None,
    ) -> IO:
        """Track an open file under ``name``; returns the handle unchanged."""
        self._files[name] = handle
        self._reattach[name] = reattach or default_reattach
        return handle

    def get(self, name: str) -> IO:
        try:
            return self._files[name]
        except KeyError:
            raise RestoreError(f"no registered file {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._files)

    # -- capture/restore -------------------------------------------------------

    def capture(self) -> List[dict]:
        """Describe every registered file abstractly (flushes first)."""
        descriptions = []
        for name, handle in self._files.items():
            try:
                handle.flush()
                position = handle.tell()
                path = getattr(handle, "name", "")
                mode = getattr(handle, "mode", "r")
            except (OSError, io.UnsupportedOperation, ValueError) as exc:
                raise RestoreError(f"cannot describe file {name!r}: {exc}") from exc
            descriptions.append(
                FileDescription(
                    name=name, path=str(path), mode=mode, position=position
                ).to_abstract()
            )
        return descriptions

    def restore(self, descriptions: List[dict]) -> None:
        """Reattach every described file via its registered hook.

        Hooks survive in the clone because the clone runs the same module
        source, whose prologue re-registers the same reattach functions.
        """
        for raw in descriptions:
            description = FileDescription.from_abstract(raw)
            hook = self._reattach.get(description.name, default_reattach)
            self._files[description.name] = hook(description)

    def close_all(self) -> None:
        for handle in self._files.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
        self._files.clear()
