"""Module-host health plane: heartbeats in, liveness verdicts out.

The paper's position is that the *system*, not the programmer, decides
when a module can be swapped — and "Reconfigurable State Machine
Replication from Non-Reconfigurable Building Blocks" (PAPERS.md) extends
that to fleets: you cannot health-gate a rolling replacement without a
failure-detection signal.  This module is that signal for our bus.

Every remote :class:`~repro.bus.transport.ModuleHost` publishes periodic
``heartbeat`` events over its existing link (no extra sockets): liveness
plus per-module queue depth, queue high-water mark, last-delivery age,
and whether a divulge is in flight.  The bus-side :class:`HealthMonitor`
turns the arrival stream into a per-host status using a phi-style
accrual detector (Hayashibara et al., simplified): the suspicion level
is the age of the newest heartbeat divided by the observed mean
inter-arrival time, so a host that beats every 50 ms is suspected after
a few hundred milliseconds of silence while a 5 s cadence tolerates
proportionally more.  Thresholds are configurable; the defaults map

- ``phi < 2``  -> ``healthy``   (on schedule)
- ``phi < 4``  -> ``degraded``  (late, still plausible)
- ``phi < 8``  -> ``suspect``   (missed several beats)
- otherwise    -> ``dead``      (give up)

plus a hard ``dead_after`` wall-clock override so a brand-new host that
beat once and vanished is still condemned.  ``coordinator.replace()``
consults the monitor as a pre-flight gate — refusing to target a
``suspect``/``dead`` host unless forced — and the verdict is recorded in
the :class:`~repro.reconfig.coordinator.ReconfigurationReport`.

The monitor never calls out: heartbeat events are pushed into
:meth:`record_heartbeat` by each transport's link dispatcher, and a
transport that notices a closed link calls :meth:`mark_dead` directly.
All verdicts are recomputed at read time from arrival timestamps, so a
wedged publisher cannot freeze the bus's view of it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "HealthMonitor",
    "STATUS_UNKNOWN",
    "STATUS_HEALTHY",
    "STATUS_DEGRADED",
    "STATUS_SUSPECT",
    "STATUS_DEAD",
]

STATUS_UNKNOWN = "unknown"
STATUS_HEALTHY = "healthy"
STATUS_DEGRADED = "degraded"
STATUS_SUSPECT = "suspect"
STATUS_DEAD = "dead"

#: How many inter-arrival samples feed the mean.  Small: the detector
#: should adapt within a second or two of a cadence change.
_WINDOW = 16


class _HostRecord:
    __slots__ = (
        "name",
        "transport",
        "interval_hint",
        "last_seen",
        "last_seq",
        "beats",
        "intervals",
        "modules",
        "condemned",
    )

    def __init__(self, name: str, transport: Optional[str], interval_hint: float):
        self.name = name
        self.transport = transport
        self.interval_hint = interval_hint
        self.last_seen: Optional[float] = None
        self.last_seq = 0
        self.beats = 0
        self.intervals: Deque[float] = deque(maxlen=_WINDOW)
        self.modules: Dict[str, Dict[str, Any]] = {}
        self.condemned: Optional[str] = None  # mark_dead reason

    def mean_interval(self) -> float:
        if self.intervals:
            return sum(self.intervals) / len(self.intervals)
        return self.interval_hint


class HealthMonitor:
    """Bus-side per-host/per-module liveness from heartbeat arrivals."""

    def __init__(
        self,
        *,
        interval_hint: float = 0.2,
        healthy_phi: float = 2.0,
        degraded_phi: float = 4.0,
        suspect_phi: float = 8.0,
        dead_after: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not healthy_phi < degraded_phi < suspect_phi:
            raise ValueError(
                "phi thresholds must increase: healthy < degraded < suspect"
            )
        self.interval_hint = float(interval_hint)
        self.healthy_phi = float(healthy_phi)
        self.degraded_phi = float(degraded_phi)
        self.suspect_phi = float(suspect_phi)
        #: Hard wall-clock condemnation, defaulting to the suspect
        #: threshold doubled so it only fires when phi would anyway.
        self.dead_after = dead_after
        self._clock = clock
        self._lock = threading.Lock()
        self._hosts: Dict[str, _HostRecord] = {}

    # -- ingestion -----------------------------------------------------

    def register_host(self, host: str, transport: Optional[str] = None) -> None:
        """Announce a host before its first beat (status ``unknown``)."""
        with self._lock:
            record = self._hosts.get(host)
            if record is None:
                self._hosts[host] = _HostRecord(
                    host, transport, self.interval_hint
                )
            elif transport is not None:
                record.transport = transport
                record.condemned = None  # re-registered: give it a chance

    def record_heartbeat(
        self, host: str, seq: int, payload: Dict[str, Any]
    ) -> None:
        """One heartbeat arrived (called from link dispatcher threads)."""
        now = self._clock()
        with self._lock:
            record = self._hosts.get(host)
            if record is None:
                record = self._hosts[host] = _HostRecord(
                    host, None, self.interval_hint
                )
            if record.last_seen is not None:
                delta = now - record.last_seen
                if delta > 0:
                    record.intervals.append(delta)
            record.last_seen = now
            record.last_seq = int(seq)
            record.beats += 1
            record.condemned = None  # it spoke: un-condemn
            modules = payload.get("modules")
            if isinstance(modules, dict):
                record.modules = {
                    str(name): dict(detail)
                    for name, detail in modules.items()
                    if isinstance(detail, dict)
                }

    def mark_dead(self, host: str, reason: str = "link closed") -> None:
        """Condemn a host out-of-band (its link closed, process exited)."""
        with self._lock:
            record = self._hosts.get(host)
            if record is None:
                record = self._hosts[host] = _HostRecord(
                    host, None, self.interval_hint
                )
            record.condemned = reason

    def forget(self, host: str) -> None:
        with self._lock:
            self._hosts.pop(host, None)

    # -- verdicts ------------------------------------------------------

    def _status_locked(self, record: _HostRecord, now: float) -> str:
        if record.condemned is not None:
            return STATUS_DEAD
        if record.last_seen is None:
            return STATUS_UNKNOWN
        age = now - record.last_seen
        if self.dead_after is not None and age >= self.dead_after:
            return STATUS_DEAD
        phi = age / max(record.mean_interval(), 1e-9)
        if phi < self.healthy_phi:
            return STATUS_HEALTHY
        if phi < self.degraded_phi:
            return STATUS_DEGRADED
        if phi < self.suspect_phi:
            return STATUS_SUSPECT
        return STATUS_DEAD

    def status_of(self, host: str) -> str:
        """Current verdict for one host (``unknown`` if never seen)."""
        now = self._clock()
        with self._lock:
            record = self._hosts.get(host)
            if record is None:
                return STATUS_UNKNOWN
            return self._status_locked(record, now)

    def hosts(self) -> List[str]:
        with self._lock:
            return sorted(self._hosts)

    def wait_for_status(
        self, host: str, statuses, timeout: float = 5.0, poll: float = 0.02
    ) -> str:
        """Block until ``host`` reaches one of ``statuses`` (test helper)."""
        deadline = self._clock() + timeout
        while True:
            status = self.status_of(host)
            if status in statuses:
                return status
            if self._clock() >= deadline:
                return status
            time.sleep(poll)

    def snapshot(self) -> Dict[str, Any]:
        """The ``telemetry.snapshot()["health"]`` block: hosts + modules."""
        now = self._clock()
        with self._lock:
            hosts: Dict[str, Any] = {}
            modules: Dict[str, Any] = {}
            for name, record in sorted(self._hosts.items()):
                status = self._status_locked(record, now)
                hosts[name] = {
                    "status": status,
                    "transport": record.transport,
                    "beats": record.beats,
                    "last_seq": record.last_seq,
                    "age_s": (
                        now - record.last_seen
                        if record.last_seen is not None
                        else None
                    ),
                    "mean_interval_s": (
                        record.mean_interval() if record.beats else None
                    ),
                    "condemned": record.condemned,
                }
                for mod_name, detail in sorted(record.modules.items()):
                    entry = dict(detail)
                    entry["host"] = name
                    entry["host_status"] = status
                    modules[mod_name] = entry
        return {"hosts": hosts, "modules": modules}
