"""Module-participation runtime (the paper's ``mh_*`` support library).

Transformed module sources call into a single :class:`~repro.runtime.mh.MH`
object named ``mh`` in their namespace.  It carries the three
reconfiguration flags (``reconfig``, ``capturestack``, ``restoring``), the
capture/restore/encode/decode operations generated code uses, and the
POLYLITH-style messaging operations (``read``, ``write``,
``query_ifmsgs``) that user code calls directly.
"""

from repro.runtime.refs import Ref
from repro.runtime.mh import MH, ModuleStop, SleepPolicy
from repro.runtime.files import FileReattachRegistry

__all__ = ["Ref", "MH", "ModuleStop", "SleepPolicy", "FileReattachRegistry"]
