"""Out-parameter cells standing in for C pointer parameters.

The paper's compute module takes ``double *rp`` and writes the result
through the pointer.  Python has no address-of, so reconfigurable modules
use :class:`Ref` cells for out-parameters.  The crucial property carries
over from the paper: a ``Ref`` passed down a call chain is a pointer into
the caller's frame, and during restoration the pointer chain is rebuilt
*by re-executing the calls* — the symbolic-pointer machinery is only
needed for static/heap targets, never for stack targets.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class Ref(Generic[T]):
    """A mutable cell used as an out-parameter (C's ``type *``).

    >>> response = Ref(0.0)
    >>> response.set(3.5)
    >>> response.get()
    3.5
    """

    __slots__ = ("_value",)

    def __init__(self, value: T = None):  # type: ignore[assignment]
        self._value = value

    def get(self) -> T:
        """Dereference: the paper's ``*rp``."""
        return self._value

    def set(self, value: T) -> None:
        """Assign through the pointer: the paper's ``*rp = ...``."""
        self._value = value

    def update(self, delta: T) -> None:
        """In-place accumulate: the paper's ``*rp = *rp + ...``."""
        self._value = self._value + delta  # type: ignore[operator]

    def __repr__(self) -> str:
        return f"Ref({self._value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and self._value == other._value

    def __hash__(self):  # Ref is mutable; identity hashing only.
        return id(self)
