"""Deterministic fault injection for reconfiguration transactions.

A :class:`FaultPlan` arms named *injection sites* threaded through the
platform's replacement path — the coordinator stages, the streamed state
move, clone preparation, capture/restore in the MH runtime, and TCP
framing.  Each armed site can

``crash``
    raise :class:`~repro.errors.InjectedFault` at the site,
``delay``
    sleep for a configured interval before the guarded operation, or
``drop``
    make the site lose its unit of work (a frame, a divulged packet)
    silently — :func:`fire` returns True and the caller skips the
    operation.

Sites fire exactly once by default (``times=1``); a schedule can arm a
site persistently (``times`` larger than the coordinator's retry budget)
to force an abort of an otherwise-retryable stage.  Plans are installed
process-globally with :func:`fault_plan` so faults reach module threads
and bus internals without any plumbing through call signatures; with no
plan installed every site is a no-op costing one attribute read.

Every firing is logged with a monotonically increasing sequence number,
and :meth:`FaultPlan.dump` writes the schedule plus the firing log as
JSON — the artifact CI uploads when a chaos run goes red, sufficient to
replay the failure with the same seed.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InjectedFault
from repro.runtime import telemetry

MODES = ("crash", "delay", "drop")

# Every injection site the platform declares, in path order.  Kept as a
# single tuple so the chaos suite can parametrize over the closed set and
# a typo in a schedule is caught by FaultPlan.schedule().
SITES = (
    "coordinator.clone_build",  # building the <instance>.new clone
    "coordinator.rebind",  # applying the prepared bind batch
    "coordinator.start_clone",  # starting the clone's thread
    "module.load",  # resolving/transforming clone source
    "bus.stream_divulge",  # divulged-packet hand-off (old module's thread)
    "mh.capture",  # entering the capture sequence at a point
    "mh.encode",  # after the state packet is built, before divulge
    "mh.decode",  # clone parsing the incoming packet
    "mh.restore",  # clone popping a captured frame
    "tcp.send_frame",  # one outbound wire frame
    "tcp.recv_frame",  # one inbound wire frame
)


@dataclass
class FaultAction:
    """One armed fault: what happens at ``site``, and when."""

    site: str
    mode: str
    delay: float = 0.005
    after: int = 0  # skip this many hits of the site before firing
    times: int = 1  # how many firings before the action is spent
    fired: int = 0

    def spent(self) -> bool:
        return self.fired >= self.times

    def to_abstract(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "mode": self.mode,
            "delay": self.delay,
            "after": self.after,
            "times": self.times,
            "fired": self.fired,
        }


def _ambient_seed() -> Optional[int]:
    """The chaos seed of the surrounding run (``REPRO_CHAOS_SEED``).

    Plans built from an explicit schedule used to dump ``seed: null``,
    which made their artifacts non-replayable when the schedule itself
    was derived from seeded randomness (hypothesis, the chaos matrix).
    Recording the ambient seed keeps every dumped artifact replayable.
    """
    raw = os.environ.get("REPRO_CHAOS_SEED", "")
    try:
        return int(raw) if raw else None
    except ValueError:
        return None


class FaultPlan:
    """A deterministic schedule of faults over the injection sites."""

    def __init__(self, name: str = "faultplan", seed: Optional[int] = None):
        self.name = name
        self.seed = seed if seed is not None else _ambient_seed()
        self._actions: List[FaultAction] = []
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.log: List[Dict[str, object]] = []

    # -- construction ------------------------------------------------------

    def schedule(
        self,
        site: str,
        mode: str,
        delay: float = 0.005,
        after: int = 0,
        times: int = 1,
    ) -> "FaultPlan":
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}")
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}")
        self._actions.append(
            FaultAction(site=site, mode=mode, delay=delay, after=after, times=times)
        )
        return self

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.2,
        sites: Sequence[str] = SITES,
        modes: Sequence[str] = MODES,
        delay: float = 0.01,
        max_after: int = 1,
    ) -> "FaultPlan":
        """Arm each site independently with probability ``rate``.

        The same seed always produces the same schedule, so a red chaos
        run is replayable from its uploaded artifact alone.
        """
        rng = random.Random(seed)
        plan = cls(name=f"seeded-{seed}", seed=seed)
        for site in sites:
            if rng.random() < rate:
                plan.schedule(
                    site,
                    rng.choice(list(modes)),
                    delay=delay,
                    after=rng.randint(0, max_after),
                )
        return plan

    # -- firing ------------------------------------------------------------

    def fire(self, site: str) -> bool:
        """Called by an instrumented site.  Returns True for ``drop``."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            action = None
            for candidate in self._actions:
                if (
                    candidate.site == site
                    and not candidate.spent()
                    and hit >= candidate.after
                ):
                    action = candidate
                    break
            if action is None:
                return False
            action.fired += 1
            self.log.append(
                {
                    "seq": len(self.log),
                    "site": site,
                    "mode": action.mode,
                    "hit": hit,
                    "thread": threading.current_thread().name,
                }
            )
            mode, delay = action.mode, action.delay
        telemetry.count("faults.fired", key=site)
        telemetry.event("fault.fired", site=site, mode=mode, hit=hit)
        if mode == "crash":
            raise InjectedFault(site, "crash")
        if mode == "delay":
            time.sleep(delay)
            return False
        return True  # drop

    def fired(self, site: Optional[str] = None) -> int:
        with self._lock:
            return sum(
                1 for entry in self.log if site is None or entry["site"] == site
            )

    # -- artifacts ---------------------------------------------------------

    @classmethod
    def from_abstract(cls, value: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_abstract` output.

        Fresh firing state: the rebuilt plan starts with an empty log and
        unfired actions, so a schedule shipped to a worker process arms
        the same faults there that it would arm locally.
        """
        seed = value.get("seed")
        plan = cls(
            name=str(value.get("name", "faultplan")),
            seed=int(seed) if seed is not None else None,  # type: ignore[call-overload]
        )
        for action in value.get("schedule", []):  # type: ignore[union-attr]
            plan.schedule(
                str(action["site"]),
                str(action["mode"]),
                delay=float(action["delay"]),  # type: ignore[arg-type]
                after=int(action["after"]),  # type: ignore[call-overload]
                times=int(action["times"]),  # type: ignore[call-overload]
            )
        return plan

    def to_abstract(self) -> Dict[str, object]:
        with self._lock:
            return {
                "name": self.name,
                "seed": self.seed,
                "schedule": [action.to_abstract() for action in self._actions],
                "log": list(self.log),
            }

    def dump(self, path: str) -> None:
        """Write the schedule + firing log as JSON (the CI artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_abstract(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_install_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    return _active


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block.

    Plans do not nest: installing while another plan is active is almost
    certainly two tests interfering, so it is an error.
    """
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError(
                f"fault plan {_active.name!r} is already installed"
            )
        _active = plan
    try:
        yield plan
    finally:
        with _install_lock:
            _active = None


def install(plan: FaultPlan) -> None:
    """Non-contextmanager installation (remote module hosts).

    A worker process arms a plan on command from the bus and disarms it
    on a later command — there is no enclosing ``with`` block to scope
    it.  The no-nesting rule still holds.
    """
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError(f"fault plan {_active.name!r} is already installed")
        _active = plan


def uninstall() -> None:
    """Disarm whatever :func:`install` armed (idempotent)."""
    global _active
    with _install_lock:
        _active = None


def fire(site: str) -> bool:
    """Site hook: no-op (False) unless a plan armed this site.

    Returns True when the site's unit of work should be dropped; raises
    :class:`InjectedFault` for a crash; sleeps for a delay.
    """
    plan = _active
    if plan is None:
        return False
    return plan.fire(site)


def fire_hard(site: str) -> None:
    """Site hook for operations with no meaningful drop: drop ⇒ crash."""
    if fire(site):
        raise InjectedFault(site, "drop")


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures."""

    attempts: int = 3
    backoff: float = 0.01
    multiplier: float = 2.0

    def delays(self) -> List[float]:
        """Sleep lengths between attempts (``attempts - 1`` entries)."""
        out: List[float] = []
        delay = self.backoff
        for _ in range(max(0, self.attempts - 1)):
            out.append(delay)
            delay *= self.multiplier
        return out
