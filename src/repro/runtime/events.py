"""Interruptible events: stop flags that wake condition waiters.

A module blocked in :meth:`repro.bus.queues.MessageQueue.get` parks on
the queue's condition variable.  A plain :class:`threading.Event` can
only be *polled* from there — the historical implementation woke every
50 ms to check it, adding up to 50 ms of latency to every blocking read.
:class:`InterruptibleEvent` removes the poll: condition variables
subscribe while they wait, and :meth:`set` notifies every subscriber, so
a stop request interrupts a blocked read immediately.

Lock ordering: :meth:`set` snapshots the subscriber list under the
registry lock and *releases it* before acquiring any condition's lock,
while subscribers acquire the registry lock nested inside their
condition's lock — the two paths never hold both at once in opposite
order, so they cannot deadlock.
"""

from __future__ import annotations

import threading
from typing import List


class InterruptibleEvent(threading.Event):
    """A :class:`threading.Event` that wakes subscribed condition waiters.

    ``subscribe``/``unsubscribe`` are duck-typed by
    :class:`~repro.bus.queues.MessageQueue`: any stop event exposing them
    gets immediate wakeups; a plain ``Event`` is still honoured, but only
    re-checked when a message arrives or the read's own deadline expires.
    """

    def __init__(self) -> None:
        super().__init__()
        self._subscribers: List[threading.Condition] = []
        self._subscribers_lock = threading.Lock()

    def subscribe(self, condition: threading.Condition) -> None:
        """Register a condition to be notified when the event is set."""
        with self._subscribers_lock:
            self._subscribers.append(condition)

    def unsubscribe(self, condition: threading.Condition) -> None:
        with self._subscribers_lock:
            try:
                self._subscribers.remove(condition)
            except ValueError:
                pass

    def set(self) -> None:
        super().set()
        with self._subscribers_lock:
            subscribers = list(self._subscribers)
        for condition in subscribers:
            with condition:
                condition.notify_all()
