"""The ``MH`` runtime: flags, capture/restore, and messaging.

This is the reproduction of the paper's ``mh_*`` support library (Figure
4): the three reconfiguration flags, ``mh_capture``/``mh_restore``,
``mh_encode``/``mh_decode``, the reconfiguration signal handler, and the
POLYLITH message primitives ``mh_read``/``mh_write``/``mh_query_ifmsgs``.
Exactly one :class:`MH` instance named ``mh`` lives in each module's
namespace; both hand-written module code and transformer-generated code
call into it.

Capture protocol (generated code, cf. Figure 7)::

    if mh.reconfig:                     # block at reconfiguration edge (j, R)
        mh.begin_reconfig_capture("R")
        mh.capture("compute", "lllF", j, num, n, rp.get())
        return
    ...
    if mh.capturestack:                 # block at call edge (i, Si)
        mh.capture("main", "llF", i, n, response)
        mh.encode()                     # only in main
        return

Restore protocol (generated code, cf. Figure 8)::

    if mh.getstatus() == "clone":       # prologue of main
        mh.restoring = True
        mh.decode()
    if mh.restoring:
        _vals = mh.restore("compute")
        location = _vals[0]; num = _vals[1]; ...
        # dispatch on location; at the reconfiguration edge:
        mh.end_restore()
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    CaptureError,
    FormatError,
    InjectedFault,
    RestoreError,
    RuntimeStateError,
)
from repro.runtime import faults, telemetry
from repro.runtime.events import InterruptibleEvent
from repro.runtime.files import FileReattachRegistry
from repro.state.frames import ActivationRecord, ProcessState, StackState
from repro.state.heap import HeapCodec, HeapImage
from repro.state.machine import MachineProfile


class ModuleStop(BaseException):
    """Raised inside a module's thread of control when the platform stops it.

    Derives from ``BaseException`` so module code catching ``Exception``
    cannot accidentally swallow a shutdown request.
    """


class SleepPolicy:
    """Controls how ``mh.sleep`` passes time.

    The paper's modules sleep in wall-clock seconds (``sleep(2)``); tests
    and benchmarks set ``scale`` below 1.0 (usually 0.0) so the same module
    source runs at full speed.  Sleeps always wake immediately on stop.
    """

    def __init__(self, scale: float = 1.0):
        self.scale = scale

    def sleep(self, seconds: float, interrupt: threading.Event) -> None:
        delay = seconds * self.scale
        if delay <= 0:
            # Still yield the GIL so peer module threads make progress.
            time.sleep(0)
            return
        interrupt.wait(delay)


class MH:
    """Per-module reconfiguration runtime and bus access point."""

    def __init__(
        self,
        module: str,
        machine: Optional[MachineProfile] = None,
        status: str = "original",
        sleep_policy: Optional[SleepPolicy] = None,
    ):
        self.module = module
        self.machine = machine
        self._status = status

        # --- the paper's three flags (Figure 4) ---
        self.reconfig = False  # set by the reconfiguration signal handler
        self.capturestack = False  # triggers AR-stack capture blocks
        self.restoring = False  # triggers restore blocks in the clone

        # --- capture/restore state ---
        self._captured = StackState()
        self._active_point: str = ""
        self._restore_stack: Optional[StackState] = None
        self._last_restored_fmt: str = ""
        self.incoming_packet: Optional[bytes] = None
        self.outgoing_packet: Optional[bytes] = None
        self.divulged = threading.Event()
        self.restored = threading.Event()  # set by end_restore (clone health)
        # Platform hook fired right after ``restored`` is set.  Remote
        # module hosts use it to push a "restored" event to the bus
        # process, whose coordinator health-checks the clone without
        # polling across the process boundary.  Survives prepare_revival
        # (a revived module's restore completion is equally interesting).
        self.on_restored: Optional[Callable[[], None]] = None
        self._divulge_callback: Optional[Callable[[bytes], None]] = None
        self._failure_callback: Optional[Callable[[BaseException], None]] = None
        self._divulge_lock = threading.Lock()
        # A fault at the capture sites cannot raise through module code
        # (the capture blocks return unconditionally once entered, the
        # stack is already unwinding) — it suppresses the divulge instead:
        # the packet is still built into outgoing_packet so the
        # coordinator can revive the module from it during rollback.
        self._suppress_divulge = False
        self.divulge_failed: Optional[BaseException] = None
        # Set when a withdrawn reconfiguration abandons an in-flight
        # divulge; the module's thread self-revives instead of exiting.
        self._divulge_abandoned = False
        # Telemetry spans held across calls on the same module thread:
        # capture opens at begin_reconfig_capture and closes in encode;
        # restore opens at the end of decode and closes in end_restore.
        self._capture_span = telemetry.NOOP_SPAN
        self._restore_span = telemetry.NOOP_SPAN

        # --- module attributes from the MIL spec (read-only config) ---
        self.config: Dict[str, str] = {}

        # --- abstract data areas (paper Section 1.2) ---
        self.statics: Dict[str, object] = {}
        self.heap: Dict[str, object] = {}
        self._heap_codec = HeapCodec()
        self._heap_hooks: Dict[
            str, Tuple[Callable[[object], object], Callable[[object], object]]
        ] = {}
        self.files = FileReattachRegistry()

        # --- observability (counters, not behaviour) ---
        self.stats: Dict[str, int] = {
            "signals": 0,
            "frames_captured": 0,
            "packets_encoded": 0,
            "frames_restored": 0,
            "messages_sent": 0,
            "messages_received": 0,
        }

        # --- lifecycle ---
        # Interruptible so a stop request wakes reads blocked on empty
        # message queues without any polling (see repro.bus.queues).
        self._stop_event = InterruptibleEvent()
        self._sleep_policy = sleep_policy or SleepPolicy()
        self._port = None  # duck-typed message port attached by the bus

    # ------------------------------------------------------------------
    # Status and lifecycle
    # ------------------------------------------------------------------

    def getstatus(self) -> str:
        """The paper's ``mh_getstatus()``: ``"original"`` or ``"clone"``."""
        return self._status

    @property
    def running(self) -> bool:
        """Loop condition for module main loops (``while mh.running:``)."""
        return not self._stop_event.is_set()

    def stop(self) -> None:
        """Ask the module's thread of control to exit (platform side)."""
        self._stop_event.set()

    def check_stop(self) -> None:
        """Raise :class:`ModuleStop` if a stop was requested."""
        if self._stop_event.is_set():
            raise ModuleStop(self.module)

    def sleep(self, seconds: float) -> None:
        """The paper's ``sleep(2)``, stop-aware and test-scalable."""
        self.check_stop()
        self._sleep_policy.sleep(seconds, self._stop_event)
        self.check_stop()

    # ------------------------------------------------------------------
    # Reconfiguration signal (the paper's SIGHUP handler)
    # ------------------------------------------------------------------

    def catch_reconfig(self, *_ignored) -> None:
        """Signal handler body: ``mh_catchreconfig`` just sets the flag."""
        self.reconfig = True
        self.stats["signals"] += 1

    def request_reconfig(self) -> None:
        """Platform-side alias used by the bus control channel."""
        self.catch_reconfig()

    # ------------------------------------------------------------------
    # Capture (Figure 7)
    # ------------------------------------------------------------------

    def begin_reconfig_capture(self, point: str) -> None:
        """Executed at a reconfiguration-point capture block.

        Mirrors Figure 7: clear ``reconfig``, set ``capturestack`` so the
        blocks installed at call edges fire as each frame returns.
        """
        self.reconfig = False
        try:
            if faults.fire("mh.capture"):
                self._suppress_divulge = True  # drop: the divulge is lost
        except InjectedFault as exc:
            self._suppress_divulge = True
            self.divulge_failed = exc
        self.capturestack = True
        self._active_point = point
        self._captured = StackState()
        self._capture_span = telemetry.span(
            "mh.capture", module=self.module, point=point
        )

    def capture(self, procedure: str, fmt: str, *values: object) -> None:
        """The paper's ``mh_capture(fmt, location, vars...)``.

        The first value is always the integer resume location.  Frames
        arrive top-of-stack first, exactly as the returning capture
        blocks emit them.
        """
        if not values:
            raise CaptureError("capture requires at least the location value")
        location = values[0]
        if not isinstance(location, int) or isinstance(location, bool):
            raise CaptureError(f"first captured value must be int location, got {location!r}")
        try:
            record = ActivationRecord(
                procedure=procedure, location=location, fmt=fmt, values=list(values)
            )
        except FormatError as exc:
            raise CaptureError(
                f"bad capture block in {self.module}.{procedure}: {exc}"
            ) from exc
        self._captured.push_captured(record)
        self.stats["frames_captured"] += 1

    def encode(self) -> bytes:
        """The paper's ``mh_encode()``: package state and divulge it.

        Runs in main's capture block, after the bottom-most frame is
        captured.  Serializes with the *source* machine profile so
        representability problems surface here, at the old module.
        """
        if not self.capturestack:
            raise CaptureError("encode() called outside a capture sequence")
        with telemetry.span("mh.encode", module=self.module) as enc_span:
            heap_image = self._capture_heap()
            state = ProcessState(
                module=self.module,
                stack=self._captured,
                statics=dict(self.statics),
                heap={
                    "image": heap_image.to_abstract(),
                    "files": self.files.capture(),
                },
                reconfig_point=self._active_point,
                source_machine=self.machine.name if self.machine else "",
                status="clone",
            )
            packet = state.to_bytes(self.machine)
            enc_span.set(bytes=len(packet), frames=len(self._captured))
        self._capture_span.set(
            bytes=len(packet), frames=len(self._captured)
        ).close()
        self._capture_span = telemetry.NOOP_SPAN
        self.outgoing_packet = packet
        self.stats["packets_encoded"] += 1
        telemetry.count("mh.packets_encoded", key=self.module)
        self.capturestack = False
        suppressed = self._suppress_divulge
        failure = self.divulge_failed
        try:
            if faults.fire("mh.encode"):
                suppressed = True  # drop: packet built but never divulged
        except InjectedFault as exc:
            suppressed, failure = True, exc
        if suppressed:
            self._suppress_divulge = False
            self.divulge_failed = failure
            telemetry.event(
                "mh.divulge_suppressed",
                module=self.module,
                cause=type(failure).__name__ if failure is not None else "drop",
            )
            with self._divulge_lock:
                on_failure = self._failure_callback
            if failure is not None and on_failure is not None:
                on_failure(failure)
            return packet
        with self._divulge_lock:
            callback = self._divulge_callback
        self.divulged.set()
        if callback is not None:
            callback(packet)
        return packet

    def _capture_heap(self) -> HeapImage:
        roots: Dict[str, object] = {}
        for name, value in self.heap.items():
            hook = self._heap_hooks.get(name)
            roots[name] = hook[0](value) if hook else value
        return self._heap_codec.capture(roots)

    # ------------------------------------------------------------------
    # Restore (Figure 8)
    # ------------------------------------------------------------------

    def decode(self) -> None:
        """The paper's ``mh_decode()``: parse the incoming state packet.

        Deserializes with the *target* machine profile, rebuilds the heap
        and statics, and stages the activation-record stack so successive
        :meth:`restore` calls pop frames outermost-first.
        """
        if faults.fire("mh.decode"):
            self.incoming_packet = None  # drop: the state packet is lost
        if self.incoming_packet is None:
            raise RestoreError(f"module {self.module!r} is a clone but has no state packet")
        with telemetry.span(
            "mh.decode", module=self.module, bytes=len(self.incoming_packet)
        ):
            state = ProcessState.from_bytes(self.incoming_packet, self.machine)
            if state.module != self.module:
                raise RestoreError(
                    f"state packet is for module {state.module!r}, this is {self.module!r}"
                )
            # Frames parse lazily; force them through the target-machine check
            # here, before any state is installed, so an unrepresentable value
            # refuses the whole packet with nothing half-restored.
            state.stack.materialize()
            self._restore_stack = state.stack
            self._active_point = state.reconfig_point
            self.statics.update(state.statics)
            heap_blob = state.heap
            image_raw = heap_blob.get("image") if isinstance(heap_blob, dict) else None
            if image_raw is not None:
                restored = self._heap_codec.restore(HeapImage.from_abstract(image_raw))
                for name, value in restored.items():
                    hook = self._heap_hooks.get(name)
                    self.heap[name] = hook[1](value) if hook else value
            files_raw = heap_blob.get("files") if isinstance(heap_blob, dict) else None
            if files_raw:
                self.files.restore(list(files_raw))
        telemetry.count("mh.packets_decoded", key=self.module)
        self._restore_span = telemetry.span("mh.restore", module=self.module)
        self.restoring = True

    def restore(self, procedure: str) -> List[object]:
        """The paper's ``mh_restore``: pop and return one frame's values.

        Returns the captured values with the resume location first.  The
        procedure-name check catches a rebuilt call chain that diverged
        from the captured one (which would indicate a transformer bug or
        a version-mismatched replacement).
        """
        if self._restore_stack is None:
            raise RestoreError("restore() called before decode()")
        if faults.fire("mh.restore"):
            # drop: one captured frame is lost; the procedure-name check
            # below refuses the now-misaligned chain and the clone crashes.
            self._restore_stack.pop_for_restore()
        record = self._restore_stack.pop_for_restore()
        if record.procedure != procedure:
            raise RestoreError(
                f"restore mismatch: rebuilding {procedure!r} but captured frame "
                f"is for {record.procedure!r}"
            )
        self._last_restored_fmt = record.fmt
        self.stats["frames_restored"] += 1
        return list(record.values)

    def expect_frame_fmt(self, fmt: str, procedure: str) -> None:
        """Generated restore code cross-checks the captured frame format.

        Catches replacements whose frame layout diverged from the
        captured state (a version mismatch, or mixing pruned and
        unpruned module lineages) before any variable is misassigned.
        """
        if self._last_restored_fmt != fmt:
            raise RestoreError(
                f"{self.module}.{procedure}: captured frame format "
                f"{self._last_restored_fmt!r} does not match this module "
                f"version's expected format {fmt!r} — incompatible "
                f"replacement"
            )

    def end_restore(self) -> None:
        """Executed at the reconfiguration edge's restore code (Figure 8).

        Clears ``restoring`` and re-arms the reconfiguration signal — the
        clone is from this instant an ordinary reconfigurable module.
        """
        self.restoring = False
        span = self._restore_span
        self._restore_span = telemetry.NOOP_SPAN
        if self._restore_stack is not None and len(self._restore_stack):
            span.set(error="RestoreError").close()
            raise RestoreError(
                f"{len(self._restore_stack)} frame(s) left unrestored — the "
                f"rebuilt call chain is shallower than the captured stack"
            )
        self._restore_stack = None
        self._status = "original"
        # Close the span *before* signalling completion: on a remote host
        # the on_restored hook pushes "restored" to the bus, whose
        # coordinator may commit and issue the final telemetry flush
        # immediately — an open span at that instant would miss the ship
        # and orphan its children in the merged tree.
        span.set(frames=self.stats["frames_restored"]).close()
        self.restored.set()
        hook = self.on_restored
        if hook is not None:
            try:
                hook()
            except Exception:  # noqa: BLE001 - hooks must not crash the module
                pass

    # ------------------------------------------------------------------
    # Helpers used by transformer-generated code
    # ------------------------------------------------------------------

    @staticmethod
    def pack_ref(cell) -> Optional[tuple]:
        """Capture form of a Ref-typed local: ``None`` stays ``None`` (the
        cell was never created), a live cell becomes a 1-tuple of its
        pointee, so ``Ref(None)`` and "no cell yet" stay distinguishable."""
        if cell is None:
            return None
        return (cell.get(),)

    @staticmethod
    def unpack_ref(packed: Optional[tuple]):
        """Restore form of :meth:`pack_ref`."""
        if packed is None:
            return None
        from repro.runtime.refs import Ref

        if isinstance(packed, tuple) and len(packed) == 1:
            return Ref(packed[0])
        raise RestoreError(f"malformed packed Ref value {packed!r}")

    def bad_pc(self, pc: object, procedure: str) -> None:
        """Dispatch-loop fell off the block table: a transformer bug."""
        raise RuntimeStateError(
            f"{self.module}.{procedure}: invalid program counter {pc!r} in "
            f"flattened dispatch loop"
        )

    def bad_restore_location(self, location: object, procedure: str) -> None:
        """Captured location has no edge at this node: version mismatch."""
        raise RestoreError(
            f"{self.module}.{procedure}: captured resume location "
            f"{location!r} does not match any reconfiguration edge — the "
            f"replacement module's reconfiguration graph differs from the "
            f"captured one"
        )

    # ------------------------------------------------------------------
    # Heap hooks (paper: programmer-written heap capture/restore)
    # ------------------------------------------------------------------

    def register_heap_hook(
        self,
        name: str,
        capture: Callable[[object], object],
        restore: Callable[[object], object],
    ) -> None:
        """Attach programmer capture/restore routines to heap root ``name``."""
        self._heap_hooks[name] = (capture, restore)

    # ------------------------------------------------------------------
    # Messaging (POLYLITH primitives)
    # ------------------------------------------------------------------

    def attach_port(self, port) -> None:
        """Platform side: connect this runtime to the software bus."""
        self._port = port

    def set_divulge_callback(
        self,
        callback: Optional[Callable[[bytes], None]] = None,
        on_failure: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        """Platform side: where :meth:`encode` delivers the state packet.

        The bus's streamed state move installs its delivery hook here so
        the packet reaches the clone on the divulging thread, with no
        coordinator wakeup in between; ``None`` detaches the hook (used
        when a timed-out reconfiguration is withdrawn).  ``on_failure``
        is invoked instead of the callback when the divulge fails on the
        module's thread, so the waiter aborts without burning its full
        deadline.
        """
        with self._divulge_lock:
            self._divulge_callback = callback
            self._failure_callback = on_failure
            if callback is not None:
                self._divulge_abandoned = False

    def abandon_divulge(self) -> None:
        """Withdraw an in-flight streamed move (rollback path).

        After this, a capture that already raced past the signal check
        divulges to nobody — the module's thread detects the abandoned
        packet via :meth:`reclaim_abandoned_divulge` and resumes from it
        instead of exiting.
        """
        with self._divulge_lock:
            self._divulge_abandoned = True
            self._divulge_callback = None
            self._failure_callback = None

    def reclaim_abandoned_divulge(self) -> Optional[bytes]:
        """Module-thread side of :meth:`abandon_divulge` (one-shot)."""
        with self._divulge_lock:
            if self._divulge_abandoned and self.outgoing_packet is not None:
                self._divulge_abandoned = False
                return self.outgoing_packet
            return None

    def prepare_revival(self, packet: bytes) -> None:
        """Reset the reconfiguration machinery to restore from ``packet``.

        Used when an aborted replacement resumes the old module from its
        own captured state: the module restarts exactly like a clone,
        but in place, with its queues and bindings untouched.
        """
        with self._divulge_lock:
            self.incoming_packet = packet
            self.outgoing_packet = None
            self._status = "clone"
            self.reconfig = False
            self.capturestack = False
            self.restoring = False
            self._captured = StackState()
            self._restore_stack = None
            self.divulged.clear()
            self.restored.clear()
            self._suppress_divulge = False
            self.divulge_failed = None
            self._divulge_abandoned = False
            self._divulge_callback = None
            self._failure_callback = None
        # Spans from the interrupted capture/restore must not leak into
        # the revival's restore sequence.
        self._capture_span.close()
        self._capture_span = telemetry.NOOP_SPAN
        self._restore_span.close()
        self._restore_span = telemetry.NOOP_SPAN

    def init(self, *_args) -> None:
        """The paper's ``mh_init``: kept for source-level fidelity (no-op)."""

    def _require_port(self):
        if self._port is None:
            raise RuntimeStateError(
                f"module {self.module!r} is not attached to a software bus"
            )
        return self._port

    def write(self, interface: str, fmt: str, *values: object) -> None:
        """The paper's ``mh_write(interface, fmt, ..., value)``."""
        self.check_stop()
        self._require_port().write(interface, fmt, list(values))
        self.stats["messages_sent"] += 1

    def read(self, interface: str, timeout: Optional[float] = None) -> List[object]:
        """The paper's ``mh_read``: block for the next message's values."""
        self.check_stop()
        values = self._require_port().read(interface, timeout, self._stop_event)
        self.check_stop()
        self.stats["messages_received"] += 1
        return values

    def read1(self, interface: str, timeout: Optional[float] = None) -> object:
        """Read a single-value message (the common case in the examples)."""
        values = self.read(interface, timeout)
        if len(values) != 1:
            raise RuntimeStateError(
                f"read1 on {interface!r} got {len(values)} values"
            )
        return values[0]

    def read_msg(self, interface: str, timeout: Optional[float] = None):
        """Read the next message returning ``(values, sender_instance)``.

        Servers with several bound clients use the sender to address
        their reply (see :meth:`write_to`).
        """
        self.check_stop()
        port = self._require_port()
        reader = getattr(port, "read_msg", None)
        if reader is None:
            raise RuntimeStateError(
                f"module {self.module!r}: port does not support read_msg"
            )
        values, sender = reader(interface, timeout, self._stop_event)
        self.check_stop()
        return values, sender

    def write_to(
        self, interface: str, destination: str, fmt: str, *values: object
    ) -> None:
        """Directed send: deliver only to the named bound peer.

        The POLYLITH client/server pattern implies replies return to the
        requester; on a multi-client binding a plain :meth:`write` would
        broadcast, so servers reply with ``write_to(iface, sender, ...)``.
        """
        self.check_stop()
        port = self._require_port()
        writer = getattr(port, "write_to", None)
        if writer is None:
            raise RuntimeStateError(
                f"module {self.module!r}: port does not support write_to"
            )
        writer(interface, destination, fmt, list(values))

    def query_ifmsgs(self, interface: str) -> bool:
        """The paper's ``mh_query_ifmsgs``: any message pending?"""
        self.check_stop()
        return bool(self._require_port().query_ifmsgs(interface))

    # ------------------------------------------------------------------
    # Source-level markers (consumed by the transformer)
    # ------------------------------------------------------------------

    def reconfig_point(self, label: str) -> None:
        """Marks a reconfiguration point in *untransformed* source.

        The transformer replaces this statement with the capture block and
        resume label; when untransformed source runs directly (modules are
        runnable before preparation), it is a no-op.
        """
