"""A replicated-free key-value shard with live migration.

A third application domain for the platform: a stateful service whose
state lives in the *heap* (paper Section 1.2's "user-allocated data")
rather than in activation records.  ``shard`` answers GET/PUT requests
against ``mh.heap['store']``; moving the shard to another machine must
carry the whole store, plus any requests queued at the moment of the
move.

The client drives a deterministic script of operations and records every
reply, so tests can assert exactly which PUTs happened before/after a
migration and that no reply was lost.
"""

from __future__ import annotations

from repro.bus.mil import parse_mil
from repro.bus.spec import Configuration

#: Requests are (op, key, value) tuples; replies are (key, value) tuples.
SHARD_SOURCE = '''\
def main():
    op = None
    key = None
    value = None
    request = None
    mh.heap['store'] = mh.heap.get('store', {})
    mh.statics['serves'] = mh.statics.get('serves', 0)
    mh.init()
    while mh.running:
        mh.reconfig_point('Q')
        request = mh.read('requests')
        op = request[0]
        key = request[1]
        value = request[2]
        if op == 'put':
            mh.heap['store'][key] = value
            mh.write('replies', '(ss)', (key, value))
        else:
            mh.write('replies', '(ss)', (key, mh.heap['store'].get(key, '<missing>')))
        mh.statics['serves'] = mh.statics['serves'] + 1
'''

CLIENT_SOURCE = '''\
def main():
    ops = []
    for spec in mh.config.get('script', '').split(';'):
        if spec:
            ops.append(spec.split(','))
    replies = []
    mh.statics['replies'] = replies
    interval = float(mh.config.get('interval', '0.05'))
    mh.init()
    i = 0
    while mh.running and i < len(ops):
        op = ops[i]
        mh.write('requests', 'sss', op[0], op[1], op[2] if len(op) > 2 else '')
        reply = mh.read('replies')
        replies.append((reply[0][0], reply[0][1]))
        i = i + 1
        mh.sleep(interval)
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(1)
'''

KVSTORE_MIL = '''\
module shard {
  use interface requests pattern = {string string string} ::
  define interface replies ::
  reconfiguration point = {Q} ::
}

module client {
  define interface requests pattern = {string string string} ::
  use interface replies ::
}

application kvstore {
  instance shard
  instance client
  bind "client requests" "shard requests"
  bind "shard replies" "client replies"
}
'''


def default_script(puts: int = 10) -> str:
    """A deterministic mixed PUT/GET script: put k_i=v_i then get k_i."""
    parts = []
    for i in range(puts):
        parts.append(f"put,k{i},v{i}")
        parts.append(f"get,k{i}")
    return ";".join(parts)


def expected_replies(puts: int = 10):
    replies = []
    for i in range(puts):
        replies.append((f"k{i}", f"v{i}"))  # put echo
        replies.append((f"k{i}", f"v{i}"))  # get result
    return replies


def build_kvstore_configuration(
    puts: int = 10, interval: float = 0.02
) -> Configuration:
    config = parse_mil(KVSTORE_MIL)
    config.modules["shard"].inline_source = SHARD_SOURCE
    config.modules["client"].inline_source = CLIENT_SOURCE
    config.modules["client"].attributes.update(
        script=default_script(puts), interval=str(interval)
    )
    return config
