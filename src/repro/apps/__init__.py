"""Reusable example applications built on the public API.

- :mod:`repro.apps.monitor` — the paper's Monitor example (Section 2):
  sensor, display, and the recursive compute module with reconfiguration
  point ``R``.
- :mod:`repro.apps.pipeline` — a long-running text-processing pipeline
  used by the live-upgrade example.
- :mod:`repro.apps.workers` — a work-queue application used by the
  migration/replication examples.
"""

from repro.apps.monitor import (
    COMPUTE_SOURCE,
    DISPLAY_SOURCE,
    MONITOR_MIL,
    SENSOR_SOURCE,
    build_monitor_configuration,
)
from repro.apps.pipeline import build_pipeline_configuration
from repro.apps.kvstore import build_kvstore_configuration
from repro.apps.philosophers import build_philosophers_configuration

__all__ = [
    "COMPUTE_SOURCE",
    "DISPLAY_SOURCE",
    "SENSOR_SOURCE",
    "MONITOR_MIL",
    "build_monitor_configuration",
    "build_pipeline_configuration",
    "build_kvstore_configuration",
    "build_philosophers_configuration",
]
