"""The evolving philosophers problem (Kramer & Magee, the paper's [6]).

The canonical dynamic-change-management scenario: dining philosophers
whose membership changes while dinner is in progress.  Here the fork
manager (``table``) is a multi-client server; each philosopher thinks,
acquires both forks atomically (retrying on denial, so no deadlock),
eats, and releases.

The reconfiguration point sits in the *thinking* phase — precisely
Kramer & Magee's application-level consistency condition: a philosopher
is replaceable only when it holds no forks and has no outstanding
request, so the rest of the dinner is undisturbed by the change.  Meal
counts live in ``mh.statics`` and survive replacement.
"""

from __future__ import annotations

from typing import List

from repro.bus.mil import parse_mil
from repro.bus.spec import BindingSpec, Configuration, InstanceSpec

TABLE_SOURCE = '''\
def main():
    forks = {}
    mh.statics['grants'] = 0
    mh.statics['denials'] = 0
    mh.init()
    while mh.running:
        request, sender = mh.read_msg('requests')
        action = request[0]
        left = request[1]
        right = request[2]
        if action == 'acquire':
            if forks.get(left) is None and forks.get(right) is None:
                forks[left] = sender
                forks[right] = sender
                mh.statics['grants'] = mh.statics['grants'] + 1
                mh.write_to('requests', sender, 'b', True)
            else:
                mh.statics['denials'] = mh.statics['denials'] + 1
                mh.write_to('requests', sender, 'b', False)
        else:
            if forks.get(left) == sender:
                forks[left] = None
            if forks.get(right) == sender:
                forks[right] = None
'''

PHILOSOPHER_SOURCE = '''\
def main():
    left = None
    right = None
    meals = None
    granted = None
    left = int(mh.config['left'])
    right = int(mh.config['right'])
    think = float(mh.config.get('think', '0.02'))
    meals = mh.statics.get('meals', 0)
    mh.init()
    while mh.running:
        mh.reconfig_point('THINKING')
        mh.sleep(think)
        granted = False
        while not granted:
            mh.write('table', 'sll', 'acquire', left, right)
            granted = mh.read1('table')
            if not granted:
                mh.sleep(think)
        mh.sleep(think)
        mh.write('table', 'sll', 'release', left, right)
        meals = meals + 1
        mh.statics['meals'] = meals
'''

PHILOSOPHERS_MIL = '''\
module table {
  server interface requests pattern = {string long long} returns {boolean} ::
}

module philosopher {
  client interface table pattern = {string long long} accepts {boolean} ::
  reconfiguration point = {THINKING} ::
}
'''


def build_philosophers_configuration(
    count: int = 3, think: float = 0.02
) -> Configuration:
    """A dinner of ``count`` philosophers around one table."""
    config = parse_mil(PHILOSOPHERS_MIL)
    config.modules["table"].inline_source = TABLE_SOURCE
    config.modules["philosopher"].inline_source = PHILOSOPHER_SOURCE

    from repro.bus.spec import ApplicationSpec

    app = ApplicationSpec(name="dinner")
    app.instances.append(InstanceSpec(instance="table", module="table"))
    for i in range(count):
        app.instances.append(
            InstanceSpec(
                instance=f"phil{i}",
                module="philosopher",
                attributes={
                    "left": str(i),
                    "right": str((i + 1) % count),
                    "think": str(think),
                },
            )
        )
        app.bindings.append(
            BindingSpec(f"phil{i}", "table", "table", "requests")
        )
    config.application = app
    return config


def meal_counts(bus) -> List[int]:
    counts = []
    for name in sorted(bus.instances()):
        if name.startswith("phil"):
            counts.append(bus.get_module(name).mh.statics.get("meals", 0))
    return counts
