"""The Monitor example (paper Section 2, Figures 1-3).

Three modules: ``sensor`` produces temperature values at regular
intervals; ``display`` requests a computed value and displays it; upon
request, ``compute`` averages a group of temperature values — with a
deliberately *recursive* implementation and the reconfiguration point
``R`` inside the recursive procedure, "in order to best illustrate the
mechanism used to capture the activation record stack".

``COMPUTE_SOURCE`` is the Python rendition of Figure 3; feeding it to
:func:`repro.core.prepare_module` yields the Figure 4 analogue.
"""

from __future__ import annotations

from repro.bus.mil import parse_mil
from repro.bus.spec import Configuration

#: Figure 3 — the original compute module.  It loops forever; requests on
#: the "display" interface trigger a recursive average of n values read
#: from the "sensor" interface; with no request pending it discards one
#: buffered value by trivially averaging a group of one.
COMPUTE_SOURCE = '''\
def main():
    n = None
    idle = float(mh.config.get('idle_interval', '2'))
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        if mh.query_ifmsgs('sensor'):
            compute(1, 1, Ref(0.0))
        mh.sleep(idle)


def compute(num: int, n: int, rp: Ref):
    """Recursively average n temperatures into *rp (Figure 3)."""
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
'''

#: A compute variant without the buffer-discard branch: every sensor value
#: lands in exactly one displayed average, which makes integration tests
#: and the FIG1 benchmark fully deterministic.
COMPUTE_NODISCARD_SOURCE = '''\
def main():
    n = None
    idle = float(mh.config.get('idle_interval', '2'))
    response: Ref = None
    mh.init()
    while mh.running:
        while mh.query_ifmsgs('display'):
            n = mh.read1('display')
            response = Ref(0.0)
            compute(n, n, response)
            mh.write('display', 'F', response.get())
        mh.sleep(idle)


def compute(num: int, n: int, rp: Ref):
    temper = None
    if n <= 0:
        rp.set(0.0)
        return
    compute(num, n - 1, rp)
    mh.reconfig_point('R')
    temper = mh.read1('sensor')
    rp.set(rp.get() + float(temper) / float(num))
'''

#: The sensor produces consecutive integer "temperatures" at intervals.
#: ``start``/``limit`` attributes make runs reproducible.
SENSOR_SOURCE = '''\
def main():
    t = int(mh.config.get('start', '1'))
    limit = int(mh.config.get('limit', '1000000000'))
    interval = float(mh.config.get('interval', '1'))
    mh.init()
    while mh.running and t <= limit:
        mh.write('out', 'i', t)
        t = t + 1
        mh.sleep(interval)
    while mh.running:
        mh.sleep(1)
'''

#: The display sends ``requests`` requests for averages of ``group_size``
#: values and records every response in ``mh.statics['displayed']``.
DISPLAY_SOURCE = '''\
def main():
    total = int(mh.config.get('requests', '6'))
    group = int(mh.config.get('group_size', '4'))
    interval = float(mh.config.get('interval', '2'))
    displayed = []
    mh.statics['displayed'] = displayed
    mh.init()
    while mh.running and len(displayed) < total:
        mh.write('temper', 'i', group)
        value = mh.read1('temper')
        displayed.append(value)
        mh.sleep(interval)
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(1)
'''

#: Figure 2 — the configuration specification, in our MIL syntax.  The
#: only reconfiguration-related change is compute's declaration of point R
#: (exactly the paper's claim about Figure 2).
MONITOR_MIL = '''\
module display {
  source = "display.py" ::
  client interface temper pattern = {integer} accepts {-float} ::
}

module compute {
  source = "compute.py" ::
  server interface display pattern = {'integer} returns {float} ::
  use interface sensor pattern = {-integer} ::
  reconfiguration point = {R} ::
}

module sensor {
  source = "sensor.py" ::
  define interface out pattern = {integer} ::
}

module monitor {
  instance display
  instance compute
  instance sensor
  bind "display temper" "compute display"
  bind "sensor out" "compute sensor"
}
'''


def build_monitor_configuration(
    requests: int = 6,
    group_size: int = 4,
    sensor_start: int = 1,
    sensor_limit: int = 10_000_000,
    interval: float = 0.01,
    discard: bool = True,
) -> Configuration:
    """Parse the Figure 2 configuration and attach inline sources.

    ``discard=False`` swaps in the no-discard compute variant for fully
    deterministic runs; all pacing attributes are plumbed through module
    attributes so tests can run at full speed.
    """
    config = parse_mil(MONITOR_MIL)
    config.modules["compute"].inline_source = (
        COMPUTE_SOURCE if discard else COMPUTE_NODISCARD_SOURCE
    )
    config.modules["sensor"].inline_source = SENSOR_SOURCE
    config.modules["sensor"].attributes.update(
        start=str(sensor_start), limit=str(sensor_limit), interval=str(interval)
    )
    config.modules["display"].inline_source = DISPLAY_SOURCE
    config.modules["display"].attributes.update(
        requests=str(requests), group_size=str(group_size), interval=str(interval)
    )
    config.modules["compute"].attributes.update(idle_interval=str(interval))
    return config
