"""A long-running conversion pipeline used by the live-upgrade example.

``producer -> worker -> sink``: the producer emits Celsius readings, the
worker converts them to Fahrenheit and forwards, the sink records them.
The worker is reconfigurable (point ``P`` at the top of its service
loop), and — deliberately — version 1 ships with a wrong conversion
formula.  The live-upgrade example replaces it with version 2 *without
stopping the pipeline*: every reading is converted exactly once, readings
before the upgrade with the old formula, after with the new, and the
worker's running ``count`` static carries across the replacement.

This is the paper's "software maintenance" motivation for dynamic
reconfiguration, made concrete.
"""

from __future__ import annotations

from repro.bus.mil import parse_mil
from repro.bus.spec import Configuration

PRODUCER_SOURCE = '''\
def main():
    first = int(mh.config.get('first', '0'))
    count = int(mh.config.get('count', '20'))
    interval = float(mh.config.get('interval', '0.5'))
    i = 0
    mh.init()
    while mh.running and i < count:
        mh.write('out', 'i', first + i)
        i = i + 1
        mh.sleep(interval)
    mh.statics['done'] = True
    while mh.running:
        mh.sleep(1)
'''

#: Version 1: wrong formula (doubles instead of 9/5).
WORKER_V1_SOURCE = '''\
def main():
    c = None
    f = None
    mh.init()
    while mh.running:
        mh.reconfig_point('P')
        c = mh.read1('inp')
        f = to_fahrenheit(c)
        mh.statics['count'] = mh.statics.get('count', 0) + 1
        mh.write('out', 'F', f)


def to_fahrenheit(c):
    return float(c * 2 + 32)
'''

#: Version 2: the maintenance fix.  Only the helper changed, so the
#: reconfiguration graph and frame layouts are identical to v1 and the
#: captured state restores cleanly into the new version.
WORKER_V2_SOURCE = WORKER_V1_SOURCE.replace(
    "return float(c * 2 + 32)", "return float(c * 9 / 5 + 32)"
)

SINK_SOURCE = '''\
def main():
    values = []
    mh.statics['values'] = values
    mh.init()
    while mh.running:
        values.append(mh.read1('inp'))
'''

PIPELINE_MIL = '''\
module producer {
  define interface out pattern = {integer} ::
}

module worker {
  use interface inp pattern = {integer} ::
  define interface out pattern = {double} ::
  reconfiguration point = {P} ::
}

module sink {
  use interface inp pattern = {double} ::
}

application pipeline {
  instance producer
  instance worker
  instance sink
  bind "producer out" "worker inp"
  bind "worker out" "sink inp"
}
'''


def v1_formula(c: int) -> float:
    return float(c * 2 + 32)


def v2_formula(c: int) -> float:
    return float(c * 9 / 5 + 32)


def build_pipeline_configuration(
    count: int = 20, first: int = 0, interval: float = 0.02
) -> Configuration:
    """Parse the pipeline MIL and attach inline sources (worker = v1)."""
    config = parse_mil(PIPELINE_MIL)
    config.modules["producer"].inline_source = PRODUCER_SOURCE
    config.modules["producer"].attributes.update(
        count=str(count), first=str(first), interval=str(interval)
    )
    config.modules["worker"].inline_source = WORKER_V1_SOURCE
    config.modules["sink"].inline_source = SINK_SOURCE
    return config
