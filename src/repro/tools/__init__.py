"""Command-line tools.

- ``python -m repro.tools.prepare``  — transform a module source file
  (Figure 3 in, Figure 4 out)
- ``python -m repro.tools.graph``    — print a module's reconfiguration
  graph, Figure-6 style, or as Graphviz dot
- ``python -m repro.tools.runapp``   — launch a MIL application from
  files and optionally perform a scripted move
"""
