"""CLI: prepare a module source for reconfiguration.

Usage::

    python -m repro.tools.prepare INPUT.py [-o OUTPUT.py] [--module NAME]
        [--entry MAIN] [--prune] [--report]

Reads a module source containing ``mh.reconfig_point(...)`` markers and
writes the reconfigurable source (stdout by default).  ``--report``
prints the transformation summary (reconfiguration graph, block counts,
frame formats, liveness) to stderr instead of transforming quietly.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import prepare_module
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-prepare",
        description="Prepare a module for dynamic reconfiguration "
        "(Hofmeister & Purtilo, ICDCS 1993).",
    )
    parser.add_argument("input", help="module source file (Figure-3 style)")
    parser.add_argument(
        "-o", "--output", help="write transformed source here (default: stdout)"
    )
    parser.add_argument("--module", default=None, help="module name")
    parser.add_argument("--entry", default="main", help="entry procedure")
    parser.add_argument(
        "--prune",
        action="store_true",
        help="enable liveness-based capture pruning",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the transformation summary to stderr",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.input, "r", encoding="utf-8") as handle:
        source = handle.read()
    module_name = args.module or args.input.rsplit("/", 1)[-1].removesuffix(".py")
    try:
        result = prepare_module(
            source,
            module_name=module_name,
            entry=args.entry,
            prune_dead_captures=args.prune,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.report:
        print(result.describe(), file=sys.stderr)
        if result.liveness:
            print("liveness at capture edges:", file=sys.stderr)
            for name, liveness in result.liveness.items():
                for edge in liveness.edges:
                    print(
                        f"  {name} edge {edge.edge_number}: "
                        f"live={sorted(edge.live)} "
                        f"dead={sorted(edge.dead_captured)}",
                        file=sys.stderr,
                    )
    if not result.is_reconfigurable:
        print(
            "note: no reconfiguration points found; source unchanged",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.source)
    else:
        sys.stdout.write(result.source)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
