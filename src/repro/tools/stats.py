"""Render a telemetry event-log dump (``telemetry.export_jsonl``).

::

    python -m repro.tools.stats trace.jsonl            # table + counters
    python -m repro.tools.stats trace.jsonl --tree     # + span trees
    python -m repro.tools.stats trace.jsonl --recon rc-0001

Prints a per-stage latency breakdown (aggregated over span names), the
point events, and a Prometheus-style text exposition of the counter and
gauge snapshot the dump ends with.  ``--tree`` additionally renders each
reconfiguration's span tree with indentation, which is the fastest way
to see where the milliseconds of a ``replace()`` went.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

_METRIC_RE = re.compile(r"[^a-zA-Z0-9_]")


def load_records(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
    return records


def split_records(
    records: List[Dict[str, Any]], recon: Optional[str] = None
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], Dict[str, Any]]:
    """-> (spans, events, last counters record)."""
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    counters: Dict[str, Any] = {}
    for record in records:
        kind = record.get("type")
        if kind == "counters":
            counters = record
            continue
        if recon is not None and record.get("recon") != recon:
            continue
        if kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
    return spans, events, counters


def latency_table(spans: List[Dict[str, Any]]) -> str:
    """Per-span-name latency breakdown, widest total first."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(float(span["ms"]))
    if not by_name:
        return "(no spans)"
    rows = sorted(
        ((name, ms) for name, ms in by_name.items()),
        key=lambda item: -sum(item[1]),
    )
    width = max(len("span"), max(len(name) for name in by_name))
    lines = [
        f"{'span':<{width}}  {'count':>5}  {'total_ms':>9}  "
        f"{'mean_ms':>8}  {'max_ms':>8}"
    ]
    for name, samples in rows:
        total = sum(samples)
        lines.append(
            f"{name:<{width}}  {len(samples):>5}  {total:>9.3f}  "
            f"{total / len(samples):>8.3f}  {max(samples):>8.3f}"
        )
    return "\n".join(lines)


def render_tree(spans: List[Dict[str, Any]]) -> str:
    """Indented span trees (one per root), children in start order."""
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    sids = {span["sid"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent not in sids:
            parent = None  # parent fell off the ring; promote to root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["t0"])

    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        recon = span.get("recon")
        tag = f" [{recon}]" if depth == 0 and recon else ""
        lines.append(
            f"{'  ' * depth}{span['name']}{tag}  {span['ms']:.3f}ms"
            f"  ({span['thread']}){('  ' + detail) if detail else ''}"
        )
        for child in children.get(span["sid"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def render_events(events: List[Dict[str, Any]]) -> str:
    lines: List[str] = []
    for record in events:
        attrs = record.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        recon = record.get("recon")
        lines.append(
            f"{record['kind']:<24} {recon or '-':<8} "
            f"({record['thread']}){('  ' + detail) if detail else ''}"
        )
    return "\n".join(lines) if lines else "(no events)"


def telemetry_meta_line(counters: Dict[str, Any]) -> str:
    """One comment line describing how the snapshot was recorded.

    Snapshots carry a ``telemetry`` block (sample rate, ring capacity,
    shard/source counts) so a dump from a production bus running
    ``sample=16`` is not misread as a complete trace.  Returns "" for
    dumps from before the block existed.
    """
    meta = counters.get("telemetry")
    if not isinstance(meta, dict):
        return ""
    parts = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    return f"# recorded with {parts}"


def _metric_name(flat_key: str, suffix: str) -> str:
    """``bus.delivered{compute.inp}`` -> ``repro_bus_delivered_total{key="compute.inp"}``.

    ``bus.delivered`` keys are *receiving queue* names (the queues count
    their own puts); ``bus.routed`` keys are sending endpoints."""
    if "{" in flat_key:
        name, _, label = flat_key.partition("{")
        label = label.rstrip("}")
        return f"repro_{_METRIC_RE.sub('_', name)}{suffix}{{key=\"{label}\"}}"
    return f"repro_{_METRIC_RE.sub('_', flat_key)}{suffix}"


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition of a ``FlightRecorder.snapshot()``."""
    lines: List[str] = []
    for flat_key, value in snapshot.get("counters", {}).items():
        lines.append(f"{_metric_name(flat_key, '_total')} {value}")
    for flat_key, value in snapshot.get("gauges", {}).items():
        lines.append(f"{_metric_name(flat_key, '')} {value}")
    return "\n".join(lines) if lines else "(no counters)"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stats",
        description="Per-stage latency table + Prometheus-style counters "
        "from a telemetry JSON-lines dump.",
    )
    parser.add_argument("trace", help="path to a telemetry .jsonl dump")
    parser.add_argument(
        "--recon", help="only spans/events of this reconfiguration id"
    )
    parser.add_argument(
        "--tree", action="store_true", help="also render the span tree(s)"
    )
    args = parser.parse_args(argv)

    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    spans, events, counters = split_records(records, recon=args.recon)
    print(f"# span latency breakdown ({args.trace})")
    print(latency_table(spans))
    if args.tree:
        print()
        print("# span tree")
        print(render_tree(spans))
    print()
    print("# events")
    print(render_events(events))
    print()
    print("# counters")
    meta = telemetry_meta_line(counters)
    if meta:
        print(meta)
    print(prometheus_text(counters))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
