"""Render a telemetry event-log dump (``telemetry.export_jsonl``).

::

    python -m repro.tools.stats trace.jsonl            # table + counters
    python -m repro.tools.stats trace.jsonl --tree     # + span trees
    python -m repro.tools.stats trace.jsonl --recon rc-0001

Prints a per-stage latency breakdown (aggregated over span names), the
point events, and a Prometheus-style text exposition of the counter and
gauge snapshot the dump ends with.  ``--tree`` additionally renders each
reconfiguration's span tree with indentation, which is the fastest way
to see where the milliseconds of a ``replace()`` went.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

_METRIC_RE = re.compile(r"[^a-zA-Z0-9_]")


def load_records(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
    return records


def split_records(
    records: List[Dict[str, Any]], recon: Optional[str] = None
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], Dict[str, Any]]:
    """-> (spans, events, last counters record)."""
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    counters: Dict[str, Any] = {}
    for record in records:
        kind = record.get("type")
        if kind == "counters":
            counters = record
            continue
        if recon is not None and record.get("recon") != recon:
            continue
        if kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
    return spans, events, counters


def latency_table(spans: List[Dict[str, Any]]) -> str:
    """Per-span-name latency breakdown, widest total first."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(float(span["ms"]))
    if not by_name:
        return "(no spans)"
    rows = sorted(
        ((name, ms) for name, ms in by_name.items()),
        key=lambda item: -sum(item[1]),
    )
    width = max(len("span"), max(len(name) for name in by_name))
    lines = [
        f"{'span':<{width}}  {'count':>5}  {'total_ms':>9}  "
        f"{'mean_ms':>8}  {'max_ms':>8}"
    ]
    for name, samples in rows:
        total = sum(samples)
        lines.append(
            f"{name:<{width}}  {len(samples):>5}  {total:>9.3f}  "
            f"{total / len(samples):>8.3f}  {max(samples):>8.3f}"
        )
    return "\n".join(lines)


def _span_order(span: Dict[str, Any]):
    """Sibling sort key: Lamport tick when stamped, else start time.

    Wall clocks across processes are not comparable, so a merged tree
    orders by the logical clock (``l0``, stamped at span open); spans
    from pre-Lamport dumps fall back to ``t0`` — within one dump the
    spans are uniformly one or the other, so the key stays consistent.
    """
    l0 = span.get("l0")
    return (0, l0, span.get("t0", 0.0)) if l0 is not None else (1, span.get("t0", 0.0), 0.0)


def render_tree(spans: List[Dict[str, Any]]) -> str:
    """Indented span trees (one per root), children in Lamport order.

    Cross-process spans (merged back from worker/daemon recorders) carry
    a ``host`` tag rendered as ``@host`` — the per-hop process
    annotation that shows where each piece of a replace actually ran.
    """
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    sids = {span["sid"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent not in sids:
            parent = None  # parent fell off the ring; promote to root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=_span_order)

    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        recon = span.get("recon")
        tag = f" [{recon}]" if depth == 0 and recon else ""
        host = span.get("host")
        where = f"{span['thread']}@{host}" if host else str(span["thread"])
        lines.append(
            f"{'  ' * depth}{span['name']}{tag}  {span['ms']:.3f}ms"
            f"  ({where}){('  ' + detail) if detail else ''}"
        )
        for child in children.get(span["sid"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def render_events(events: List[Dict[str, Any]]) -> str:
    lines: List[str] = []
    for record in events:
        attrs = record.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        recon = record.get("recon")
        lines.append(
            f"{record['kind']:<24} {recon or '-':<8} "
            f"({record['thread']}){('  ' + detail) if detail else ''}"
        )
    return "\n".join(lines) if lines else "(no events)"


def telemetry_meta_line(counters: Dict[str, Any]) -> str:
    """One comment line describing how the snapshot was recorded.

    Snapshots carry a ``telemetry`` block (sample rate, ring capacity,
    shard/source counts) so a dump from a production bus running
    ``sample=16`` is not misread as a complete trace.  Returns "" for
    dumps from before the block existed.
    """
    meta = counters.get("telemetry")
    if not isinstance(meta, dict):
        return ""
    parts = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    return f"# recorded with {parts}"


def render_health(health: Dict[str, Any]) -> str:
    """Host/module health tables from ``snapshot()["health"]``."""
    hosts = health.get("hosts") or {}
    modules = health.get("modules") or {}
    if not hosts:
        return "(no hosts under health monitoring)"
    width = max(len("host"), max(len(name) for name in hosts))
    lines = [
        f"{'host':<{width}}  {'status':<9}  {'beats':>6}  "
        f"{'age_s':>7}  {'interval_s':>10}"
    ]
    for name in sorted(hosts):
        info = hosts[name]
        age = info.get("age_s")
        mean = info.get("mean_interval_s")
        lines.append(
            f"{name:<{width}}  {info.get('status', '?'):<9}  "
            f"{info.get('beats', 0):>6}  "
            f"{(f'{age:.3f}' if age is not None else '-'):>7}  "
            f"{(f'{mean:.3f}' if mean is not None else '-'):>10}"
        )
    if modules:
        mwidth = max(len("module"), max(len(name) for name in modules))
        lines.append("")
        lines.append(
            f"{'module':<{mwidth}}  {'host':<{width}}  {'state':<10}  "
            f"{'queued':>6}  {'hwm':>5}  {'divulging':<9}"
        )
        for name in sorted(modules):
            info = modules[name]
            lines.append(
                f"{name:<{mwidth}}  {info.get('host', '?'):<{width}}  "
                f"{info.get('state', '?'):<10}  {info.get('queued', 0):>6}  "
                f"{info.get('queue_hwm', 0):>5}  "
                f"{str(bool(info.get('divulging'))).lower():<9}"
            )
    return "\n".join(lines)


def exposition_meta(counters: Dict[str, Any]) -> Dict[str, Any]:
    """The ``benchmarks/_meta.py``-shaped environment block for exposition.

    Mirrors ``bench_meta()`` (schema/cpus/sample/python/platform) without
    importing the benchmarks package — ``tools/stats`` ships inside the
    library, the benchmarks live at the repo root.  ``sample`` comes from
    the dump's own ``telemetry`` block when present, so the exposition
    says how the numbers were recorded, not how this host would record.
    """
    telemetry = counters.get("telemetry")
    sample = telemetry.get("sample") if isinstance(telemetry, dict) else None
    return {
        "schema": "repro-bench-meta/1",
        "cpus": os.cpu_count(),
        "sample": sample,
        "python": _platform.python_version(),
        "platform": sys.platform,
    }


def stats_json(
    spans: List[Dict[str, Any]],
    events: List[Dict[str, Any]],
    counters: Dict[str, Any],
) -> Dict[str, Any]:
    """Machine-readable summary for CI artifact diffing (``--json``)."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(float(span["ms"]))
    latency = {
        name: {
            "count": len(samples),
            "total_ms": round(sum(samples), 6),
            "mean_ms": round(sum(samples) / len(samples), 6),
            "max_ms": round(max(samples), 6),
        }
        for name, samples in by_name.items()
    }
    recons = sorted(
        {r["recon"] for r in spans + events if r.get("recon")}
    )
    out: Dict[str, Any] = {
        "meta": exposition_meta(counters),
        "recons": recons,
        "span_count": len(spans),
        "event_count": len(events),
        "latency": latency,
        "counters": counters.get("counters", {}),
        "gauges": counters.get("gauges", {}),
    }
    if isinstance(counters.get("health"), dict):
        out["health"] = counters["health"]
    return out


def _metric_name(flat_key: str, suffix: str) -> str:
    """``bus.delivered{compute.inp}`` -> ``repro_bus_delivered_total{key="compute.inp"}``.

    ``bus.delivered`` keys are *receiving queue* names (the queues count
    their own puts); ``bus.routed`` keys are sending endpoints."""
    if "{" in flat_key:
        name, _, label = flat_key.partition("{")
        label = label.rstrip("}")
        return f"repro_{_METRIC_RE.sub('_', name)}{suffix}{{key=\"{label}\"}}"
    return f"repro_{_METRIC_RE.sub('_', flat_key)}{suffix}"


#: Status -> numeric value for the ``repro_health_host_status`` gauge.
_HEALTH_LEVELS = {"healthy": 0, "unknown": 1, "degraded": 2, "suspect": 3, "dead": 4}


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition of a ``FlightRecorder.snapshot()``.

    Leads with a ``repro_meta_info`` info-style metric (the
    ``benchmarks/_meta.py`` block as labels) so scraped numbers stay
    comparable across containers; health, when present in the snapshot,
    becomes per-host up/status gauges.
    """
    lines: List[str] = []
    meta = exposition_meta(snapshot)
    labels = ",".join(
        f'{key}="{meta[key]}"' for key in sorted(meta) if meta[key] is not None
    )
    lines.append("# HELP repro_meta_info Recording environment (info-style; value is always 1).")
    lines.append("# TYPE repro_meta_info gauge")
    lines.append(f"repro_meta_info{{{labels}}} 1")
    for flat_key, value in snapshot.get("counters", {}).items():
        lines.append(f"{_metric_name(flat_key, '_total')} {value}")
    for flat_key, value in snapshot.get("gauges", {}).items():
        lines.append(f"{_metric_name(flat_key, '')} {value}")
    health = snapshot.get("health")
    if isinstance(health, dict) and health.get("hosts"):
        lines.append("# HELP repro_health_host_up 1 when the host's status is healthy.")
        lines.append("# TYPE repro_health_host_up gauge")
        hosts = health["hosts"]
        for name in sorted(hosts):
            status = str(hosts[name].get("status", "unknown"))
            up = 1 if status == "healthy" else 0
            lines.append(f'repro_health_host_up{{host="{name}"}} {up}')
        lines.append(
            "# HELP repro_health_host_status 0=healthy 1=unknown 2=degraded 3=suspect 4=dead."
        )
        lines.append("# TYPE repro_health_host_status gauge")
        for name in sorted(hosts):
            status = str(hosts[name].get("status", "unknown"))
            level = _HEALTH_LEVELS.get(status, 1)
            lines.append(f'repro_health_host_status{{host="{name}"}} {level}')
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stats",
        description="Per-stage latency table + Prometheus-style counters "
        "from a telemetry JSON-lines dump.",
    )
    parser.add_argument("trace", help="path to a telemetry .jsonl dump")
    parser.add_argument(
        "--recon", help="only spans/events of this reconfiguration id"
    )
    parser.add_argument(
        "--tree", action="store_true", help="also render the span tree(s)"
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="also render host/module health tables from the snapshot",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of tables",
    )
    args = parser.parse_args(argv)

    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    spans, events, counters = split_records(records, recon=args.recon)
    if args.json:
        print(json.dumps(stats_json(spans, events, counters), sort_keys=True))
        return 0
    print(f"# span latency breakdown ({args.trace})")
    print(latency_table(spans))
    if args.tree:
        print()
        print("# span tree")
        print(render_tree(spans))
    if args.health:
        print()
        print("# health")
        health = counters.get("health")
        if isinstance(health, dict):
            print(render_health(health))
        else:
            print("(dump carries no health snapshot; was bus.enable_health() on?)")
    print()
    print("# events")
    print(render_events(events))
    print()
    print("# counters")
    meta = telemetry_meta_line(counters)
    if meta:
        print(meta)
    print(prometheus_text(counters))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
