"""CLI: print a module's call graph and reconfiguration graph.

Usage::

    python -m repro.tools.graph INPUT.py [--dot] [--entry MAIN]

Default output is the Figure-6-style text listing; ``--dot`` emits
Graphviz source with the reconfiguration-graph subset highlighted.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import List

from repro.core.callgraph import StaticCallGraph, build_call_graph
from repro.core.recongraph import (
    RECONFIG_NODE,
    ReconfigurationGraph,
    build_reconfiguration_graph,
    find_reconfig_points,
)
from repro.errors import ReproError


def to_dot(call_graph: StaticCallGraph, recon: ReconfigurationGraph) -> str:
    """Render both graphs as one Graphviz digraph.

    Instrumented procedures are drawn bold; the synthetic ``reconfig``
    node is a doublecircle; reconfiguration-graph edges carry their
    ``(i, Si)`` labels while plain call-graph edges stay grey.
    """
    lines: List[str] = ["digraph reconfiguration {", "  rankdir=TB;"]
    instrumented = set(recon.procedures()) if recon else set()
    for name in call_graph.functions:
        if name in instrumented:
            lines.append(f'  "{name}" [style=bold];')
        else:
            lines.append(f'  "{name}" [color=grey];')
    if recon:
        lines.append(f'  "{RECONFIG_NODE}" [shape=doublecircle];')
    recon_sites = set()
    if recon:
        for edge in recon.edges:
            if edge.kind == "call":
                assert edge.call_site is not None
                recon_sites.add(id(edge.call_site.call))
                lines.append(
                    f'  "{edge.source}" -> "{edge.target}" '
                    f'[label="({edge.number}, S{edge.lineno})"];'
                )
            else:
                lines.append(
                    f'  "{edge.source}" -> "{RECONFIG_NODE}" '
                    f'[label="({edge.number}, {edge.point.label})"];'
                )
    for site in call_graph.sites:
        if id(site.call) not in recon_sites:
            lines.append(
                f'  "{site.caller}" -> "{site.callee}" [color=grey];'
            )
    lines.append("}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-graph",
        description="Show a module's static call graph and reconfiguration "
        "graph (Figure 6).",
    )
    parser.add_argument("input", help="module source file")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--dot", action="store_true", help="emit Graphviz dot")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.input, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source)
        call_graph = build_call_graph(tree)
        points = find_reconfig_points(call_graph)
        recon = None
        if points:
            recon = build_reconfiguration_graph(
                call_graph, points, entry=args.entry
            )
    except (ReproError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.dot:
        print(to_dot(call_graph, recon))
        return 0

    print("static call graph:")
    for name in call_graph.functions:
        callees = call_graph.callees(name)
        arrow = f" -> {', '.join(callees)}" if callees else ""
        print(f"  {name}{arrow}")
    if recon is None:
        print("no reconfiguration points.")
    else:
        print()
        print(recon.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
