"""CLI: launch a MIL application and optionally script a move.

Usage::

    python -m repro.tools.runapp CONFIG.mil [--sources DIR]
        [--hosts alpha:sparc-like beta:vax-like]
        [--move INSTANCE:MACHINE:AFTER_SECONDS] [--run-for SECONDS]
        [--stats] [--trace-out trace.jsonl]

Module specs whose ``source`` is a relative path are loaded from
``--sources`` (default: the configuration file's directory).  The bus
trace is printed on exit.  ``--stats`` enables the telemetry flight
recorder for the run and prints the counter snapshot on exit
(Prometheus text exposition); ``--trace-out`` additionally dumps the
event log as JSON lines for ``python -m repro.tools.stats``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bus.bus import SoftwareBus
from repro.bus.mil import parse_mil
from repro.errors import ReproError
from repro.reconfig.scripts import move_module
from repro.runtime import telemetry
from repro.state.machine import MACHINES
from repro.tools.stats import prometheus_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-runapp",
        description="Launch a POLYLITH-style application from a MIL file.",
    )
    parser.add_argument("config", help="MIL configuration file")
    parser.add_argument("--sources", default=None, help="module source dir")
    parser.add_argument(
        "--hosts",
        nargs="*",
        default=["local:modern-64"],
        help="host:architecture pairs (architectures: %s)"
        % ", ".join(sorted(MACHINES)),
    )
    parser.add_argument(
        "--move",
        default=None,
        help="INSTANCE:MACHINE:AFTER_SECONDS — perform a live move",
    )
    parser.add_argument("--run-for", type=float, default=5.0)
    parser.add_argument("--sleep-scale", type=float, default=1.0)
    parser.add_argument(
        "--stats",
        action="store_true",
        help="enable the telemetry flight recorder; print the counter "
        "snapshot on exit",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="with --stats: dump the telemetry event log (JSON lines) "
        "to this path on exit",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    recorder = telemetry.enable() if args.stats or args.trace_out else None
    with open(args.config, "r", encoding="utf-8") as handle:
        text = handle.read()
    sources_dir = args.sources or os.path.dirname(os.path.abspath(args.config))
    try:
        config = parse_mil(text)
        for spec in config.modules.values():
            if spec.source and not spec.inline_source:
                path = spec.source
                if not os.path.isabs(path):
                    path = os.path.join(sources_dir, path)
                with open(path, "r", encoding="utf-8") as handle:
                    spec.inline_source = handle.read()
        bus = SoftwareBus(sleep_scale=args.sleep_scale)
        default_host = None
        for pair in args.hosts:
            host, _, architecture = pair.partition(":")
            bus.add_host(host, MACHINES.get(architecture or "modern-64"))
            default_host = default_host or host
        bus.launch(config, default_host=default_host or "local")
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    deadline = time.monotonic() + args.run_for
    move_at = None
    move_instance = move_machine = ""
    if args.move:
        move_instance, move_machine, after = args.move.split(":")
        move_at = time.monotonic() + float(after)

    try:
        while time.monotonic() < deadline:
            bus.check_health()
            if move_at is not None and time.monotonic() >= move_at:
                report = move_module(bus, move_instance, machine=move_machine)
                print(report.describe())
                move_at = None
            time.sleep(0.05)
    finally:
        bus.shutdown()
        print("trace:")
        for line in bus.trace:
            print(f"  {line}")
        if recorder is not None:
            telemetry.disable()
            if args.trace_out:
                recorder.export_jsonl(args.trace_out)
                print(f"telemetry event log written to {args.trace_out}")
            print("telemetry counters:")
            for line in prometheus_text(recorder.snapshot()).splitlines():
                print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
