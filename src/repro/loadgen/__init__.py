"""Load generation + reconfiguration-under-load measurement harness.

See ``docs/load-harness.md`` for the generator models, the histogram
accuracy bounds, and how to read the windowed JSON this package emits.
"""

from repro.loadgen.distributions import UniformKeys, ZipfianKeys
from repro.loadgen.driver import (
    classify_sample,
    max_stalls,
    run_under_load,
    segment_windows,
    summarize_windows,
)
from repro.loadgen.generators import (
    ClosedLoopGenerator,
    GeneratorError,
    LatencyLog,
    OpenLoopGenerator,
)
from repro.loadgen.histogram import (
    LatencyHistogram,
    bucket_high,
    bucket_index,
    bucket_low,
)
from repro.loadgen.workloads import (
    FanoutMonitorWorkload,
    KvZipfianWorkload,
    LoadInvariantError,
    LoadWorkload,
    PipelineWorkload,
    ReplaceOutcome,
)

__all__ = [
    "ClosedLoopGenerator",
    "FanoutMonitorWorkload",
    "GeneratorError",
    "KvZipfianWorkload",
    "LatencyHistogram",
    "LatencyLog",
    "LoadInvariantError",
    "LoadWorkload",
    "OpenLoopGenerator",
    "PipelineWorkload",
    "ReplaceOutcome",
    "UniformKeys",
    "ZipfianKeys",
    "bucket_high",
    "bucket_index",
    "bucket_low",
    "classify_sample",
    "max_stalls",
    "run_under_load",
    "segment_windows",
    "summarize_windows",
]
