"""Open- and closed-loop load generators.

Two generator models, because they answer different questions about a
reconfiguration stall:

- **Closed loop** — each session keeps exactly one request in flight
  (send, wait for the reply, repeat).  Latency here measures *service
  responsiveness*: while the replaced module is between divulge and
  restore, the sessions routed to it simply wait, and their next sample
  absorbs the whole stall.  Throughput self-throttles, as a pool of
  synchronous clients would.
- **Open loop** — requests are issued on a fixed schedule regardless of
  completions, and each sample's latency is measured from its
  *scheduled* send time.  This is the coordinated-omission-honest
  model: requests that pile up behind a stalled module are charged the
  queueing delay they actually suffered, so a 50 ms replace under a
  300 ops/s schedule shows up as ~15 samples with elevated latency, not
  one.

Sessions are provided by the workloads (`workloads.py`); the generators
only own threads, pacing, and the shared :class:`LatencyLog`.  A crash
in any generator thread is captured and re-raised at ``stop()`` — load
harness failures must be loud, never a silently idle thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

#: One latency sample: (session id, send time, completion time), both
#: timestamps from ``time.monotonic()`` on the load-generator side.
Sample = Tuple[int, float, float]


class LatencyLog:
    """Thread-safe append-only sample log shared by all sessions."""

    def __init__(self) -> None:
        self._samples: List[Sample] = []
        self._lock = threading.Lock()

    def add(self, session: int, t_send: float, t_recv: float) -> None:
        with self._lock:
            self._samples.append((session, t_send, t_recv))

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def snapshot(self) -> List[Sample]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class GeneratorError(RuntimeError):
    """A load-generator thread died; carries the original failure."""


class _ThreadPool:
    """Shared stop/join/crash bookkeeping for both generator kinds."""

    def __init__(self) -> None:
        self.stop_event = threading.Event()
        self._threads: List[threading.Thread] = []
        self._failures: List[BaseException] = []
        self._lock = threading.Lock()

    def spawn(self, target: Callable[[], None], name: str) -> None:
        def run() -> None:
            try:
                target()
            except BaseException as exc:  # noqa: BLE001 - re-raised at stop()
                with self._lock:
                    self._failures.append(exc)

        thread = threading.Thread(target=run, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def stop(self, join_timeout: float) -> None:
        self.stop_event.set()
        deadline = time.monotonic() + join_timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        wedged = [t.name for t in self._threads if t.is_alive()]
        failures = list(self._failures)
        if failures:
            raise GeneratorError(
                f"load generator thread failed: {failures[0]!r}"
            ) from failures[0]
        if wedged:
            raise GeneratorError(f"load generator threads wedged: {wedged}")

    def check(self) -> None:
        with self._lock:
            if self._failures:
                raise GeneratorError(
                    f"load generator thread failed: {self._failures[0]!r}"
                ) from self._failures[0]


class ClosedLoopGenerator:
    """One thread per session; each keeps one request in flight.

    ``sessions`` must provide ``roundtrip() -> None`` (send one request
    and block for its reply) and an integer ``sid``.  The sample's send
    time is taken immediately before the send, so a reply delayed by a
    replace is charged to the operation that waited for it.
    """

    def __init__(self, sessions, log: LatencyLog, think_s: float = 0.0):
        self.sessions = list(sessions)
        self.log = log
        self.think_s = think_s
        self._pool = _ThreadPool()

    def start(self) -> None:
        for session in self.sessions:
            self._pool.spawn(
                lambda s=session: self._drive(s), f"closed-loop-{session.sid}"
            )

    def _drive(self, session) -> None:
        stop = self._pool.stop_event
        log = self.log
        while not stop.is_set():
            t_send = time.monotonic()
            session.roundtrip()
            log.add(session.sid, t_send, time.monotonic())
            if self.think_s:
                time.sleep(self.think_s)

    def check(self) -> None:
        self._pool.check()

    def stop(self, join_timeout: float = 60.0) -> None:
        self._pool.stop(join_timeout)


class OpenLoopGenerator:
    """A paced sender plus a collector, decoupled per session.

    ``sessions`` must provide ``send(t_scheduled) -> None`` (non-blocking
    issue, remembering the scheduled timestamp for matching),
    ``recv(timeout) -> Optional[float]`` (block for the next completion
    and return the matched request's scheduled send time, or ``None`` on
    timeout), ``pending() -> int``, and ``sid``.

    The sender never skips a scheduled request: when it falls behind
    (e.g. the scheduler was starved during a stall) it issues the
    backlog immediately, preserving the open-loop arrival count.
    """

    def __init__(self, sessions, rate_per_s: float, log: LatencyLog):
        if rate_per_s <= 0:
            raise ValueError(f"open-loop rate must be positive, got {rate_per_s}")
        self.sessions = list(sessions)
        self.rate_per_s = float(rate_per_s)
        self.log = log
        self._pool = _ThreadPool()
        self._senders_done = threading.Event()

    def start(self) -> None:
        for session in self.sessions:
            self._pool.spawn(
                lambda s=session: self._send_paced(s),
                f"open-loop-send-{session.sid}",
            )
            self._pool.spawn(
                lambda s=session: self._collect(s),
                f"open-loop-recv-{session.sid}",
            )

    def _send_paced(self, session) -> None:
        done = self._senders_done
        interval = len(self.sessions) / self.rate_per_s
        start = time.monotonic()
        issued = 0
        while not done.is_set():
            scheduled = start + issued * interval
            now = time.monotonic()
            if scheduled > now:
                if done.wait(min(scheduled - now, 0.05)):
                    break
                continue
            session.send(scheduled)
            issued += 1

    def _collect(self, session) -> None:
        stop = self._pool.stop_event
        log = self.log
        while True:
            t_scheduled = session.recv(timeout=0.25)
            if t_scheduled is not None:
                log.add(session.sid, t_scheduled, time.monotonic())
            elif self._senders_done.is_set() and session.pending() == 0:
                return
            elif stop.is_set() and self._senders_done.is_set():
                return  # drain deadline passed with requests still missing

    def check(self) -> None:
        self._pool.check()

    def drain(self, timeout: float = 30.0) -> None:
        """Stop the schedule, then wait for every issued request to finish."""
        self._senders_done.set()  # collectors may now exit once drained
        deadline = time.monotonic() + timeout
        for session in self.sessions:
            while session.pending() and time.monotonic() < deadline:
                time.sleep(0.01)
        self._pool.check()

    def stop(self, join_timeout: float = 60.0) -> None:
        self._senders_done.set()
        self._pool.stop(join_timeout)
