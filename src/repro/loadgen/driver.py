"""Fire replace() mid-run and segment latency into honest windows.

The driver owns the experiment clock: warm the workload up, clear the
sample log, run a measured interval, fire one or more replaces at evenly
spaced offsets inside it, drain, then split every sample into three
windows:

``before``
    Completed strictly before the first replace started — steady-state
    baseline.
``during``
    Overlapped any part of the replace span (sent before the last
    replace ended and completed after the first began).  This is the
    window SLOs care about: it absorbs the divulge/restore stall, the
    rebind rename window, and the queue drain afterwards.
``after``
    Sent strictly after the last replace committed — proves the system
    returns to baseline instead of limping.

Alongside percentiles we report **max stall** per window: the longest
gap between consecutive completions of any single session.  Percentiles
can hide a stall (a 50 ms freeze under thousands of fast samples barely
moves p99); the stall metric cannot — if any session went silent for the
length of the replace, it shows up verbatim.

The segmentation and stall arithmetic are pure functions over sample
tuples so `tests/loadgen/test_windows.py` can pin their semantics
without spinning up a bus.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.loadgen.generators import Sample
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.workloads import LoadWorkload, ReplaceOutcome

WINDOWS = ("before", "during", "after")


def classify_sample(
    t_send: float, t_recv: float, t_first_start: float, t_last_end: float
) -> str:
    """Window of one sample relative to the replace span (pure)."""
    if t_recv < t_first_start:
        return "before"
    if t_send > t_last_end:
        return "after"
    return "during"


def segment_windows(
    samples: Sequence[Sample], t_first_start: float, t_last_end: float
) -> Dict[str, List[Sample]]:
    """Split samples into before/during/after of the replace span."""
    windows: Dict[str, List[Sample]] = {name: [] for name in WINDOWS}
    for sample in samples:
        _, t_send, t_recv = sample
        windows[classify_sample(t_send, t_recv, t_first_start, t_last_end)].append(
            sample
        )
    return windows


def max_stalls(
    samples: Sequence[Sample],
    t_measure_start: float,
    t_first_start: float,
    t_last_end: float,
) -> Dict[str, float]:
    """Longest completion gap of any single session, per window (seconds).

    For each session the completion times are walked in order, starting
    the clock at ``t_measure_start`` (a session that never completes
    anything until after the replace has stalled since measurement
    began, not since its own first sample).  Each gap is attributed to
    the window containing its *end* — the completion that finally
    arrived is the one that waited.  The open-ended gap after a
    session's last completion is not counted; quiesce timing is not a
    stall.
    """
    by_session: Dict[int, List[float]] = {}
    for sid, _, t_recv in samples:
        by_session.setdefault(sid, []).append(t_recv)
    stalls = {name: 0.0 for name in WINDOWS}
    for completions in by_session.values():
        completions.sort()
        previous = t_measure_start
        for t_recv in completions:
            gap = t_recv - previous
            window = classify_sample(
                t_recv, t_recv, t_first_start, t_last_end
            )
            if gap > stalls[window]:
                stalls[window] = gap
            previous = t_recv
    return stalls


def summarize_windows(
    samples: Sequence[Sample],
    replaces: Sequence[ReplaceOutcome],
    t_measure_start: float,
) -> Dict[str, Dict[str, float]]:
    """Per-window latency summaries (ms) with max-stall attached."""
    if replaces:
        t_first_start = min(r.t_start for r in replaces)
        t_last_end = max(r.t_end for r in replaces)
    else:
        # No replace fired: everything is steady state ("before").
        t_first_start = float("inf")
        t_last_end = float("inf")
    windows = segment_windows(samples, t_first_start, t_last_end)
    stalls = max_stalls(samples, t_measure_start, t_first_start, t_last_end)
    summary: Dict[str, Dict[str, float]] = {}
    for name in WINDOWS:
        histogram = LatencyHistogram.of(
            t_recv - t_send for _, t_send, t_recv in windows[name]
        )
        block = histogram.summary_ms()
        block["max_stall_ms"] = round(stalls[name] * 1000, 2)
        summary[name] = block
    return summary


def run_under_load(
    workload: LoadWorkload,
    warmup_s: float = 0.5,
    measure_s: float = 4.0,
    replaces: int = 1,
    quiesce_timeout: float = 60.0,
) -> Dict[str, object]:
    """Run one workload through ``replaces`` replace() calls under load.

    Owns the full lifecycle (start → warmup → measure with replaces at
    evenly spaced offsets → quiesce → verify → close) and returns the
    windowed result dict that both the benchmark and the smoke tests
    consume.
    """
    if replaces < 0:
        raise ValueError(f"replace count must be non-negative, got {replaces}")
    workload.start()
    try:
        _watched_sleep(workload, time.monotonic() + warmup_s)
        workload.samples.clear()
        t_measure_start = time.monotonic()
        offsets = [
            measure_s * (index + 1) / (replaces + 1) for index in range(replaces)
        ]
        for offset in offsets:
            _watched_sleep(workload, t_measure_start + offset)
            workload.replace_once()
        _watched_sleep(workload, t_measure_start + measure_s)
        workload.quiesce(quiesce_timeout)
        t_drained = time.monotonic()
        samples = workload.samples.snapshot()
        invariants = workload.verify()
        return build_result(
            workload, samples, t_measure_start, t_drained, invariants
        )
    finally:
        workload.close()


def build_result(
    workload: LoadWorkload,
    samples: Sequence[Sample],
    t_measure_start: float,
    t_drained: float,
    invariants: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the per-workload JSON block from raw samples + outcomes."""
    elapsed = max(t_drained - t_measure_start, 1e-9)
    windows = summarize_windows(samples, workload.replaces, t_measure_start)
    result: Dict[str, object] = {
        "workload": workload.name,
        "target": workload.target,
        "params": workload.params(),
        "ops": len(samples),
        "throughput_ops_per_s": round(len(samples) / elapsed, 1),
        "windows": windows,
        "max_stall_ms": max(
            (block["max_stall_ms"] for block in windows.values()), default=0.0
        ),
        "blocked_messages": sum(r.blocked_messages for r in workload.replaces),
        "replaces": [r.to_json(t_measure_start) for r in workload.replaces],
    }
    if invariants is not None:
        result["invariants"] = invariants
    return result


def _watched_sleep(workload: LoadWorkload, until: float) -> None:
    """Sleep to an absolute deadline, failing fast on generator death."""
    while True:
        workload.generator.check()
        remaining = until - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(remaining, 0.05))
