"""Production-shaped workloads that stay under load through ``replace()``.

Three application shapes, each built from the same module/MIL machinery
as the paper's examples but scaled and instrumented for sustained
traffic:

``kv_zipfian``
    A sharded key-value service: N reconfigurable shard modules, each
    owning the keys with ``key % shards == j``, serving a closed-loop
    session pool whose keys follow a seeded zipfian distribution.
    Sessions send *directed* requests (``route_to``) to the owning
    shard and embed their loader name so the shard replies with
    ``write_to`` — the POLYLITH client/server pattern at fleet width.
    Replacing ``shard_0`` (owner of the hottest key) stalls exactly the
    sessions whose keys hash there; the rest keep serving.

``pipeline``
    A linear conversion pipeline ``loader -> stage_0 -> ... ->
    stage_{k-1} -> loader``: an open-loop generator feeds sequence
    numbers at a fixed rate and the tail stage echoes them back, so
    end-to-end latency includes every queue in the chain.  The middle
    stage is replaced mid-stream; strict sequence checking at the
    collector makes any loss, duplication, or reorder an immediate
    failure.

``monitor_fanout``
    The paper's monitor shape at production width: one reconfigurable
    hub fans every reading out to 100+ monitor modules *and* back to
    the loader (the echo is the latency probe).  Replacing the hub must
    neither lose a reading (every monitor's count equals the number
    sent) nor double one.

Directed sends and the rebind window
------------------------------------
Between the coordinator's ``rebind`` and ``commit`` stages the replaced
instance is briefly bound under its temporary clone name, so a directed
``route_to`` addressed to the public name raises ``BindingError``.  The
KV sessions retry with a bounded deadline — exactly what a production
client does against a moving endpoint — and the retry count is reported
in the invariants block, making the client-visible cost of the rename
window observable instead of hidden.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.bus.bus import SoftwareBus
from repro.bus.message import Message
from repro.bus.mil import parse_mil
from repro.errors import BindingError, ReconfigurationAborted, TransportError
from repro.reconfig.coordinator import (
    ReconfigurationCoordinator,
    ReconfigurationReport,
)
from repro.state.machine import MACHINES

from repro.loadgen.distributions import ZipfianKeys
from repro.loadgen.generators import (
    ClosedLoopGenerator,
    LatencyLog,
    OpenLoopGenerator,
)


class LoadInvariantError(AssertionError):
    """A workload invariant (no loss, no duplication, ...) was violated."""


def _wait_until(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise LoadInvariantError(f"timed out after {timeout}s waiting for {what}")


# ---------------------------------------------------------------------------
# Module sources (same structured-subset language as the paper apps)
# ---------------------------------------------------------------------------

#: Loaders never run application logic: external generator threads write
#: on their interfaces with ``bus.route``/``route_to`` and read replies
#: straight off their queues, so every operation is an explicit event.
LOADER_SOURCE = '''\
def main():
    mh.statics['ready'] = True
    mh.init()
    while mh.running:
        mh.sleep(5)
'''

#: One KV shard: requests carry (sender, op, key, value); replies are
#: directed back to the requesting loader.  The store lives in the heap
#: (the paper's "user-allocated data") and ``serves`` counts completed
#: requests — both must survive every replace exactly.
KV_SHARD_SOURCE = '''\
def main():
    request = None
    sender = None
    op = None
    key = None
    value = None
    mh.heap['store'] = mh.heap.get('store', {})
    mh.statics['serves'] = mh.statics.get('serves', 0)
    mh.init()
    while mh.running:
        mh.reconfig_point('Q')
        request = mh.read('requests')
        sender = request[0]
        op = request[1]
        key = request[2]
        value = request[3]
        if op == 'put':
            mh.heap['store'][key] = value
        else:
            value = mh.heap['store'].get(key, '!missing')
        mh.write_to('replies', sender, 'ss', key, value)
        mh.statics['serves'] = mh.statics['serves'] + 1
'''

#: A pipeline stage / the fan-out hub: forward each reading exactly
#: once, counting relays.  Point ``P`` at the loop top is the paper's
#: "most frequently executed code" placement.
RELAY_SOURCE = '''\
def main():
    x = None
    mh.statics['relayed'] = mh.statics.get('relayed', 0)
    mh.init()
    while mh.running:
        mh.reconfig_point('P')
        x = mh.read1('inp')
        mh.write('out', 'i', x)
        mh.statics['relayed'] = mh.statics['relayed'] + 1
'''

#: A monitor leaf: consume and count.  Not reconfigurable — only the
#: hub is replaced — so it stays plain Python.
MONITOR_SOURCE = '''\
def main():
    count = 0
    mh.statics['seen'] = 0
    mh.init()
    while mh.running:
        mh.read1('inp')
        count = count + 1
        mh.statics['seen'] = count
'''


# ---------------------------------------------------------------------------
# Replace bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class ReplaceOutcome:
    """One replace() fired mid-run, with load-relevant numbers attached."""

    index: int
    machine: str
    t_start: float
    t_end: float
    aborted: bool = False
    rolled_back: bool = True
    report: Optional[ReconfigurationReport] = None

    @property
    def blocked_messages(self) -> int:
        """Messages found parked at the old module and carried by ``cq``."""
        if self.report is None:
            return 0
        return sum(self.report.queued_copied.values())

    def to_json(self, t_measure_start: float) -> Dict[str, object]:
        row: Dict[str, object] = {
            "index": self.index,
            "machine": self.machine,
            "offset_ms": round((self.t_start - t_measure_start) * 1000, 1),
            "wall_ms": round((self.t_end - self.t_start) * 1000, 2),
            "aborted": self.aborted,
            "blocked_messages": self.blocked_messages,
        }
        if self.report is not None:
            row.update(
                recon_id=self.report.recon_id,
                total_ms=round(self.report.total_time * 1000, 2),
                delay_to_point_ms=round(self.report.delay_to_point * 1000, 2),
                packet_bytes=self.report.packet_bytes,
                queued_copied=dict(self.report.queued_copied),
                retries=self.report.retries,
            )
        return row


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class KvSession:
    """One closed-loop KV client: zipfian keys, 50/50 put/get mix."""

    def __init__(
        self,
        bus: SoftwareBus,
        sid: int,
        loader: str,
        shards: int,
        keys: ZipfianKeys,
        op_rng,
        reply_timeout: float,
    ):
        self.bus = bus
        self.sid = sid
        self.loader = loader
        self.shards = shards
        self.keys = keys
        self.rng = op_rng
        self.reply_timeout = reply_timeout
        self.queue = bus.get_module(loader).queue("replies")
        self.seq = 0
        self.sent = 0
        self.received = 0
        self.route_retries = 0
        self.sent_by_shard = [0] * shards

    def roundtrip(self) -> None:
        key_id = self.keys.sample()
        shard_index = key_id % self.shards
        shard = f"shard_{shard_index}"
        op = "put" if self.rng.random() < 0.5 else "get"
        self.seq += 1
        key = f"k{key_id:05d}"
        message = Message(
            values=[self.loader, op, key, f"v{self.sid}.{self.seq}"],
            fmt="ssss",
            source_instance=self.loader,
            source_interface="requests",
        ).validated()
        deadline = time.monotonic() + self.reply_timeout
        while True:
            try:
                self.bus.route_to(self.loader, "requests", shard, message)
                break
            except BindingError:
                # The rebind window: the shard is momentarily bound under
                # its temporary clone name.  Retry against the public
                # name until the commit rename (or rollback) restores it.
                self.route_retries += 1
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.001)
        self.sent += 1
        self.sent_by_shard[shard_index] += 1
        reply = self.queue.get(self.reply_timeout, None)
        self.received += 1
        if reply.values[0] != key:
            raise LoadInvariantError(
                f"session {self.sid}: reply key {reply.values[0]!r} does not "
                f"match request key {key!r} (crossed replies?)"
            )


class SeqSession:
    """One open-loop sequence stream with strict FIFO echo checking.

    ``send`` issues monotonically increasing sequence numbers;  ``recv``
    matches each echoed number against the oldest outstanding one, so a
    lost message (echo skips ahead), a duplicated message (echo arrives
    with nothing outstanding), or a reorder all raise immediately.
    """

    def __init__(self, bus: SoftwareBus, sid: int, loader: str):
        self.bus = bus
        self.sid = sid
        self.loader = loader
        self.queue = bus.get_module(loader).queue("replies")
        self._pending: Deque = deque()
        self._lock = Lock()
        self._next_seq = 1 + sid * 10_000_000  # disjoint id space per session
        self.sent = 0
        self.received = 0

    def send(self, t_scheduled: float) -> None:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._pending.append((seq, t_scheduled))
        message = Message(
            values=[seq],
            fmt="i",
            source_instance=self.loader,
            source_interface="feed",
        ).validated()
        self.bus.route(self.loader, "feed", message)
        self.sent += 1

    def recv(self, timeout: float) -> Optional[float]:
        try:
            message = self.queue.get(timeout, None)
        except TransportError:
            return None
        seq = message.values[0]
        with self._lock:
            if not self._pending:
                raise LoadInvariantError(
                    f"session {self.sid}: echo {seq} arrived with no request "
                    f"outstanding (duplicated message)"
                )
            expected, t_scheduled = self._pending.popleft()
        if seq != expected:
            raise LoadInvariantError(
                f"session {self.sid}: expected echo {expected}, got {seq} "
                f"(lost or reordered message)"
            )
        self.received += 1
        return t_scheduled

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


class LoadWorkload:
    """Common lifecycle: build the app, drive traffic, fire replaces."""

    name = "workload"
    target = "?"

    def __init__(self, seed: int = 1993, replace_timeout: float = 20.0):
        self.seed = seed
        self.replace_timeout = replace_timeout
        self.samples = LatencyLog()
        self.replaces: List[ReplaceOutcome] = []
        self.bus: Optional[SoftwareBus] = None
        self.generator = None
        self._machines = itertools.cycle(("beta", "alpha"))

    # -- subclass hooks ----------------------------------------------------

    def params(self) -> Dict[str, object]:
        raise NotImplementedError

    def _mil(self) -> str:
        raise NotImplementedError

    def _attach_sources(self, config) -> None:
        raise NotImplementedError

    def _start_traffic(self) -> None:
        raise NotImplementedError

    def verify(self) -> Dict[str, object]:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        config = parse_mil(self._mil())
        self._attach_sources(config)
        bus = SoftwareBus(sleep_scale=1.0)
        bus.add_host("alpha", MACHINES["sparc-like"])
        bus.add_host("beta", MACHINES["vax-like"])
        bus.launch(config, default_host="alpha")
        self.bus = bus
        self._start_traffic()

    def replace_once(self, allow_abort: bool = False) -> ReplaceOutcome:
        """Fire one replace of the target module, timestamped for windows."""
        machine = next(self._machines)
        index = len(self.replaces)
        t_start = time.monotonic()
        try:
            report = ReconfigurationCoordinator(self.bus).replace(
                self.target,
                machine=machine,
                timeout=self.replace_timeout,
                kind="move",
            )
            outcome = ReplaceOutcome(
                index, machine, t_start, time.monotonic(), report=report
            )
        except ReconfigurationAborted as exc:
            if not allow_abort:
                raise
            outcome = ReplaceOutcome(
                index,
                machine,
                t_start,
                time.monotonic(),
                aborted=True,
                rolled_back=exc.rolled_back,
                report=exc.report,
            )
        self.replaces.append(outcome)
        return outcome

    def quiesce(self, timeout: float = 60.0) -> None:
        raise NotImplementedError

    def close(self) -> None:
        if self.bus is not None:
            self.bus.shutdown()
            self.bus = None


class KvZipfianWorkload(LoadWorkload):
    """Sharded KV with zipfian keys, closed-loop session pool."""

    name = "kv_zipfian"
    target = "shard_0"

    def __init__(
        self,
        shards: int = 4,
        sessions: int = 8,
        keys: int = 256,
        theta: float = 0.99,
        seed: int = 1993,
        reply_timeout: float = 30.0,
        replace_timeout: float = 20.0,
    ):
        super().__init__(seed=seed, replace_timeout=replace_timeout)
        self.shards = shards
        self.n_sessions = sessions
        self.n_keys = keys
        self.theta = theta
        self.reply_timeout = reply_timeout
        self.sessions: List[KvSession] = []

    def params(self) -> Dict[str, object]:
        return {
            "generator": "closed-loop",
            "shards": self.shards,
            "sessions": self.n_sessions,
            "keys": self.n_keys,
            "theta": self.theta,
            "modules": self.shards + self.n_sessions,
        }

    def _mil(self) -> str:
        blocks = []
        for j in range(self.shards):
            blocks.append(
                f"module shard_{j} {{\n"
                f"  use interface requests pattern = "
                f"{{string string string string}} ::\n"
                f"  define interface replies pattern = {{string string}} ::\n"
                f"  reconfiguration point = {{Q}} ::\n"
                f"}}\n"
            )
        for i in range(self.n_sessions):
            blocks.append(
                f"module loader_{i} {{\n"
                f"  define interface requests pattern = "
                f"{{string string string string}} ::\n"
                f"  use interface replies pattern = {{string string}} ::\n"
                f"}}\n"
            )
        lines = [f"  instance shard_{j}" for j in range(self.shards)]
        lines += [f"  instance loader_{i}" for i in range(self.n_sessions)]
        for i in range(self.n_sessions):
            for j in range(self.shards):
                lines.append(
                    f'  bind "loader_{i} requests" "shard_{j} requests"'
                )
                lines.append(f'  bind "shard_{j} replies" "loader_{i} replies"')
        app = "application kvload {\n" + "\n".join(lines) + "\n}\n"
        return "\n".join(blocks) + "\n" + app

    def _attach_sources(self, config) -> None:
        for j in range(self.shards):
            config.modules[f"shard_{j}"].inline_source = KV_SHARD_SOURCE
        for i in range(self.n_sessions):
            config.modules[f"loader_{i}"].inline_source = LOADER_SOURCE

    def _start_traffic(self) -> None:
        import random

        self.sessions = [
            KvSession(
                self.bus,
                sid=i,
                loader=f"loader_{i}",
                shards=self.shards,
                keys=ZipfianKeys(self.n_keys, self.theta, seed=self.seed + i),
                op_rng=random.Random(self.seed * 31 + i),
                reply_timeout=self.reply_timeout,
            )
            for i in range(self.n_sessions)
        ]
        self.generator = ClosedLoopGenerator(self.sessions, self.samples)
        self.generator.start()

    def quiesce(self, timeout: float = 60.0) -> None:
        self.generator.stop(timeout)

    def verify(self) -> Dict[str, object]:
        sent = sum(s.sent for s in self.sessions)
        received = sum(s.received for s in self.sessions)
        retries = sum(s.route_retries for s in self.sessions)
        if sent != received:
            raise LoadInvariantError(
                f"kv: {sent} requests sent but {received} replies received"
            )
        for session in self.sessions:
            stray = len(session.queue)
            if stray:
                raise LoadInvariantError(
                    f"kv: loader_{session.sid} holds {stray} unmatched "
                    f"replies (duplicated messages)"
                )
        sent_by_shard = [
            sum(s.sent_by_shard[j] for s in self.sessions)
            for j in range(self.shards)
        ]

        def serves() -> List[int]:
            return [
                self.bus.get_module(f"shard_{j}").mh.statics.get("serves", 0)
                for j in range(self.shards)
            ]

        # ``serves`` increments after the reply write, so the last few
        # counts may trail the received replies by a scheduler beat.
        _wait_until(
            lambda: serves() == sent_by_shard,
            timeout=10.0,
            what=f"shard serve counts {serves()} to reach {sent_by_shard}",
        )
        return {
            "sent": sent,
            "received": received,
            "route_retries_in_rename_window": retries,
            "sent_by_shard": sent_by_shard,
            "serves_by_shard": serves(),
            "no_loss": True,
            "no_duplication": True,
        }


class _SeqEchoWorkload(LoadWorkload):
    """Shared machinery for the open-loop echo workloads."""

    def __init__(self, rate_per_s: float, seed: int, replace_timeout: float):
        super().__init__(seed=seed, replace_timeout=replace_timeout)
        self.rate_per_s = rate_per_s
        self.session: Optional[SeqSession] = None

    def _start_traffic(self) -> None:
        self.session = SeqSession(self.bus, sid=0, loader="loader_0")
        self.generator = OpenLoopGenerator(
            [self.session], self.rate_per_s, self.samples
        )
        self.generator.start()

    def quiesce(self, timeout: float = 60.0) -> None:
        self.generator.drain(timeout=min(30.0, timeout))
        self.generator.stop(timeout)

    def _verify_echo(self) -> Dict[str, object]:
        session = self.session
        if session.sent != session.received:
            raise LoadInvariantError(
                f"{self.name}: {session.sent} sent, only "
                f"{session.received} echoed back "
                f"({session.pending()} still outstanding)"
            )
        return {
            "sent": session.sent,
            "received": session.received,
            "no_loss": True,
            "no_duplication": True,
        }

    def _relay_count(self, instance: str) -> int:
        return self.bus.get_module(instance).mh.statics.get("relayed", 0)


class PipelineWorkload(_SeqEchoWorkload):
    """Multi-stage pipeline; the middle stage is replaced mid-stream."""

    name = "pipeline"

    def __init__(
        self,
        stages: int = 4,
        rate_per_s: float = 300.0,
        seed: int = 1993,
        replace_timeout: float = 20.0,
    ):
        super().__init__(rate_per_s, seed, replace_timeout)
        if stages < 2:
            raise ValueError("pipeline needs at least 2 stages")
        self.stages = stages
        self.target = f"stage_{stages // 2}"

    def params(self) -> Dict[str, object]:
        return {
            "generator": "open-loop",
            "rate_per_s": self.rate_per_s,
            "stages": self.stages,
            "modules": self.stages + 1,
        }

    def _mil(self) -> str:
        blocks = [
            "module loader_0 {\n"
            "  define interface feed pattern = {integer} ::\n"
            "  use interface replies pattern = {integer} ::\n"
            "}\n"
        ]
        for j in range(self.stages):
            blocks.append(
                f"module stage_{j} {{\n"
                f"  use interface inp pattern = {{integer}} ::\n"
                f"  define interface out pattern = {{integer}} ::\n"
                f"  reconfiguration point = {{P}} ::\n"
                f"}}\n"
            )
        lines = ["  instance loader_0"]
        lines += [f"  instance stage_{j}" for j in range(self.stages)]
        lines.append('  bind "loader_0 feed" "stage_0 inp"')
        for j in range(self.stages - 1):
            lines.append(f'  bind "stage_{j} out" "stage_{j + 1} inp"')
        lines.append(f'  bind "stage_{self.stages - 1} out" "loader_0 replies"')
        app = "application pipeload {\n" + "\n".join(lines) + "\n}\n"
        return "\n".join(blocks) + "\n" + app

    def _attach_sources(self, config) -> None:
        config.modules["loader_0"].inline_source = LOADER_SOURCE
        for j in range(self.stages):
            config.modules[f"stage_{j}"].inline_source = RELAY_SOURCE

    def verify(self) -> Dict[str, object]:
        stats = self._verify_echo()
        sent = stats["sent"]
        for j in range(self.stages):
            _wait_until(
                lambda j=j: self._relay_count(f"stage_{j}") == sent,
                timeout=10.0,
                what=f"stage_{j} relay count to reach {sent}",
            )
        stats["relayed_by_stage"] = [
            self._relay_count(f"stage_{j}") for j in range(self.stages)
        ]
        return stats


class FanoutMonitorWorkload(_SeqEchoWorkload):
    """One hub fanning out to 100+ monitors; the hub is replaced live."""

    name = "monitor_fanout"
    target = "hub"

    def __init__(
        self,
        monitors: int = 110,
        rate_per_s: float = 200.0,
        seed: int = 1993,
        replace_timeout: float = 20.0,
    ):
        super().__init__(rate_per_s, seed, replace_timeout)
        self.monitors = monitors

    def params(self) -> Dict[str, object]:
        return {
            "generator": "open-loop",
            "rate_per_s": self.rate_per_s,
            "monitors": self.monitors,
            "modules": self.monitors + 2,
        }

    def _mil(self) -> str:
        blocks = [
            "module loader_0 {\n"
            "  define interface feed pattern = {integer} ::\n"
            "  use interface replies pattern = {integer} ::\n"
            "}\n",
            "module hub {\n"
            "  use interface inp pattern = {integer} ::\n"
            "  define interface out pattern = {integer} ::\n"
            "  reconfiguration point = {P} ::\n"
            "}\n",
        ]
        for j in range(self.monitors):
            blocks.append(
                f"module mon_{j:03d} {{\n"
                f"  use interface inp pattern = {{integer}} ::\n"
                f"}}\n"
            )
        lines = ["  instance loader_0", "  instance hub"]
        lines += [f"  instance mon_{j:03d}" for j in range(self.monitors)]
        lines.append('  bind "loader_0 feed" "hub inp"')
        lines.append('  bind "hub out" "loader_0 replies"')
        for j in range(self.monitors):
            lines.append(f'  bind "hub out" "mon_{j:03d} inp"')
        app = "application fanload {\n" + "\n".join(lines) + "\n}\n"
        return "\n".join(blocks) + "\n" + app

    def _attach_sources(self, config) -> None:
        config.modules["loader_0"].inline_source = LOADER_SOURCE
        config.modules["hub"].inline_source = RELAY_SOURCE
        for j in range(self.monitors):
            config.modules[f"mon_{j:03d}"].inline_source = MONITOR_SOURCE

    def verify(self) -> Dict[str, object]:
        stats = self._verify_echo()
        sent = stats["sent"]
        _wait_until(
            lambda: self._relay_count("hub") == sent,
            timeout=10.0,
            what=f"hub relay count to reach {sent}",
        )

        def seen() -> List[int]:
            return [
                self.bus.get_module(f"mon_{j:03d}").mh.statics.get("seen", 0)
                for j in range(self.monitors)
            ]

        _wait_until(
            lambda: all(count == sent for count in seen()),
            timeout=15.0,
            what=f"all {self.monitors} monitors to see {sent} readings",
        )
        counts = seen()
        stats["monitors"] = self.monitors
        stats["monitor_seen_min"] = min(counts)
        stats["monitor_seen_max"] = max(counts)
        return stats
