"""Seeded key distributions for the load workloads.

Production key traffic is skewed: a small set of hot keys absorbs most
operations, which is exactly what stresses a *sharded* service during a
replace — the shard owning the hot keys stalls, the rest keep serving.
The zipfian generator reproduces that shape deterministically: the same
seed always yields the same key sequence (``random.Random`` is a stable
Mersenne Twister across CPython versions), so every benchmark run and
every test failure is replayable.

Keys are dense integer ids in ``[0, n)``; rank ``i`` has weight
``1 / (i + 1)**theta`` (key 0 is the hottest).  Workloads map ids to
shards by ``id % shards``, which interleaves the hot ranks across the
fleet instead of piling them onto shard 0.
"""

from __future__ import annotations

import bisect
import random
from typing import List


class UniformKeys:
    """Uniform ids over ``[0, n)`` from a private seeded stream."""

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise ValueError(f"key space must be positive, got {n}")
        self.n = n
        self._rng = random.Random(seed)

    def sample(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianKeys:
    """Zipfian ids over ``[0, n)``: rank ``i`` weighted ``(i+1)**-theta``.

    The cumulative weight table is built once (O(n)); each sample is one
    uniform draw plus a binary search (O(log n)).  ``theta=0.99`` is the
    conventional YCSB skew: with 256 keys roughly a third of all traffic
    hits the ten hottest keys.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError(f"key space must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"zipfian skew must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        cumulative: List[float] = []
        running = 0.0
        for rank in range(n):
            running += 1.0 / ((rank + 1) ** theta)
            cumulative.append(running)
        self._cumulative = cumulative
        self._total = running

    def sample(self) -> int:
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)
