"""HDR-style coarse-bucket latency histogram with exact bounds.

Recording a latency sample must be cheap enough to sit on the load
generator's per-operation path (one integer index computation and one
dict increment), yet the published percentiles must carry a *provable*
accuracy bound — a benchmark that quietly averages away its tail is
worse than no benchmark.  The scheme is the one popularised by HdrHistogram:

- values are non-negative integers (the public API records seconds and
  converts to nanoseconds);
- values below ``2 * SUBBUCKETS`` (128) land in unit-width buckets and
  are therefore recorded and reported **exactly**;
- larger values share a bucket with at most ``1/SUBBUCKETS`` (1.5625%)
  of their magnitude: bucket ``i`` covers ``[low(i), high(i)]`` with
  ``high - low + 1 == 2**shift`` and ``low >= SUBBUCKETS * 2**shift``,
  so the relative width never exceeds ``2**-SUB_BITS``.

Percentiles use the nearest-rank definition (the smallest recorded
value whose cumulative count reaches ``ceil(p/100 * n)``) and report the
*highest value equivalent* to that rank's bucket, clamped to the true
observed maximum — so ``percentile(100)`` is the exact max, and every
reported percentile ``est`` satisfies ``s <= est <= s * (1 + 2**-6)``
(+1 for integer truncation) where ``s`` is the true nearest-rank sample.
``tests/loadgen/test_histogram.py`` holds this to golden values and to a
Hypothesis comparison against ``statistics.quantiles``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Sub-bucket resolution: 2**SUB_BITS linear sub-buckets per power of two.
SUB_BITS = 6
SUBBUCKETS = 1 << SUB_BITS

#: Scale used by the seconds-based convenience API.
NS_PER_SECOND = 1_000_000_000


def bucket_index(value: int) -> int:
    """Map a non-negative integer to its bucket index (monotone)."""
    if value < 0:
        raise ValueError(f"latency value must be non-negative, got {value}")
    if value < 2 * SUBBUCKETS:
        return value
    shift = value.bit_length() - 1 - SUB_BITS
    return (shift << SUB_BITS) + (value >> shift)


def bucket_low(index: int) -> int:
    """Smallest value mapping to ``index``."""
    if index < 2 * SUBBUCKETS:
        return index
    shift = (index >> SUB_BITS) - 1
    sub = SUBBUCKETS + (index & (SUBBUCKETS - 1))
    return sub << shift


def bucket_high(index: int) -> int:
    """Largest value mapping to ``index``."""
    if index < 2 * SUBBUCKETS - 1:
        return index
    return bucket_low(index + 1) - 1


class LatencyHistogram:
    """Sparse coarse-bucket histogram over non-negative integer values.

    Values are dimensionless integers; :meth:`record` converts seconds
    to nanoseconds for the common wall-clock case.  Buckets are stored
    sparsely (latency distributions touch a handful of buckets), so
    memory is bounded by the number of *distinct* magnitudes seen, not
    by the value range.
    """

    __slots__ = ("_counts", "_total", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max = 0

    # -- recording ---------------------------------------------------------

    def record_value(self, value: int) -> None:
        """Record one dimensionless non-negative integer sample."""
        index = bucket_index(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self._total += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record(self, seconds: float) -> None:
        """Record one latency sample given in seconds (stored as ns)."""
        self.record_value(max(0, int(seconds * NS_PER_SECOND)))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._total += other._total
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    # -- reading -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._total

    @property
    def min_value(self) -> int:
        return 0 if self._min is None else self._min

    @property
    def max_value(self) -> int:
        return self._max

    @property
    def mean_value(self) -> float:
        """Exact mean of the recorded samples (the sum is kept exactly)."""
        return self._sum / self._total if self._total else 0.0

    def percentile_value(self, percent: float) -> int:
        """Nearest-rank percentile, reported at the bucket's high edge.

        Accuracy contract (tested): with ``s`` the true nearest-rank
        sample, the return value ``est`` satisfies ``s <= est`` and
        ``est <= s + max(1, s >> SUB_BITS)``; for values below 128 the
        answer is exact.
        """
        if not 0 < percent <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percent}")
        if self._total == 0:
            return 0
        rank = max(1, math.ceil(self._total * percent / 100.0))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                return min(bucket_high(index), self._max)
        return self._max  # pragma: no cover - rank <= total always hits

    def percentile(self, percent: float) -> float:
        """Percentile in seconds (for samples recorded via :meth:`record`)."""
        return self.percentile_value(percent) / NS_PER_SECOND

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(low, high, count)`` triples of the occupied buckets."""
        return [
            (bucket_low(index), bucket_high(index), count)
            for index, count in sorted(self._counts.items())
        ]

    def summary_ms(self) -> Dict[str, float]:
        """The windowed-JSON block: counts and key percentiles in ms."""
        if self._total == 0:
            return {"count": 0}
        return {
            "count": self._total,
            "mean_ms": round(self.mean_value / 1e6, 4),
            "p50_ms": round(self.percentile_value(50) / 1e6, 4),
            "p99_ms": round(self.percentile_value(99) / 1e6, 4),
            "p999_ms": round(self.percentile_value(99.9) / 1e6, 4),
            "max_ms": round(self._max / 1e6, 4),
        }

    @classmethod
    def of(cls, latencies_s: Iterable[float]) -> "LatencyHistogram":
        """Build a histogram from an iterable of second-valued latencies."""
        histogram = cls()
        for value in latencies_s:
            histogram.record(value)
        return histogram
