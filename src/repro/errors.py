"""Exception hierarchy for the ``repro`` reconfiguration platform.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch platform failures without masking programming errors in
their own code.  Sub-hierarchies mirror the package layout: state encoding,
source transformation, the software bus, and the reconfiguration layer each
have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` platform."""


# ---------------------------------------------------------------------------
# Abstract process state / encoding
# ---------------------------------------------------------------------------


class StateError(ReproError):
    """Base class for abstract-process-state errors."""


class FormatError(StateError):
    """A capture/restore format string is malformed or inconsistent."""


class EncodingError(StateError):
    """A value could not be encoded into the canonical abstract format."""


class DecodingError(StateError):
    """A canonical byte stream could not be decoded."""


class MachineCompatibilityError(StateError):
    """A value representable on the source machine does not fit the target.

    Raised, for example, when an integer captured on a 64-bit host is
    restored on a simulated 32-bit host and exceeds its native int range.
    """


class PointerTranslationError(StateError):
    """A pointer could not be translated to or from symbolic form."""


class HeapError(StateError):
    """Heap capture or restoration failed."""


# ---------------------------------------------------------------------------
# Source transformation (the paper's core contribution)
# ---------------------------------------------------------------------------


class TransformError(ReproError):
    """Base class for source-transformation errors."""


class UnsupportedConstructError(TransformError):
    """The module source uses a construct outside the supported subset.

    Carries the offending source line so diagnostics point at real code.
    """

    def __init__(self, message: str, lineno: int = 0, col: int = 0):
        super().__init__(message)
        self.lineno = lineno
        self.col = col

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.lineno:
            return f"line {self.lineno}: {base}"
        return base


class CallGraphError(TransformError):
    """The static call graph could not be constructed or is inconsistent."""


class ReconfigGraphError(TransformError):
    """The reconfiguration graph is invalid (e.g. unreachable point)."""


class FlattenError(TransformError):
    """Control-flow flattening failed for a function body."""


# ---------------------------------------------------------------------------
# Runtime (module participation)
# ---------------------------------------------------------------------------


class RuntimeStateError(ReproError):
    """The MH runtime was used inconsistently (e.g. restore w/o state)."""


class CaptureError(RuntimeStateError):
    """State capture failed at a reconfiguration point."""


class RestoreError(RuntimeStateError):
    """State restoration failed in a cloned module."""


# ---------------------------------------------------------------------------
# Software bus (POLYLITH substrate)
# ---------------------------------------------------------------------------


class BusError(ReproError):
    """Base class for software-bus errors."""


class MILSyntaxError(BusError):
    """The configuration specification (MIL) failed to parse."""

    def __init__(self, message: str, lineno: int = 0, col: int = 0):
        super().__init__(message)
        self.lineno = lineno
        self.col = col

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.lineno:
            return f"line {self.lineno}, col {self.col}: {base}"
        return base


class SpecError(BusError):
    """A module or application specification is invalid."""


class UnknownModuleError(BusError):
    """An operation referenced a module instance the bus does not know."""


class UnknownInterfaceError(BusError):
    """An operation referenced an interface a module does not declare."""


class BindingError(BusError):
    """A binding could not be created, found, or removed."""


class TransportError(BusError):
    """The message transport failed (connection, framing, delivery)."""


class ModuleLifecycleError(BusError):
    """A module lifecycle operation was invalid for its current state."""


class ModuleCrashedError(BusError):
    """A module's thread of control terminated with an exception."""

    def __init__(self, module: str, cause: BaseException):
        super().__init__(f"module {module!r} crashed: {cause!r}")
        self.module = module
        self.cause = cause


# ---------------------------------------------------------------------------
# Reconfiguration layer
# ---------------------------------------------------------------------------


class ReconfigError(ReproError):
    """Base class for reconfiguration-layer errors."""


class ReconfigTimeoutError(ReconfigError):
    """A module did not reach a reconfiguration point within the deadline."""


class ScriptError(ReconfigError):
    """A reconfiguration script could not complete; the system was left
    in the state described by the message."""


class ReconfigurationAborted(ReconfigError):
    """A replacement transaction failed and was rolled back.

    Carries the stage the transaction died in, the underlying cause, and
    the partially-filled :class:`ReconfigurationReport` so callers can
    see how far the transaction got before aborting.  ``rolled_back`` is
    False only if the rollback itself failed (the cause then carries the
    rollback error as ``__context__``).

    ``args`` is ``(message, recon_id, attempts)``: the reconfiguration
    id (keys the telemetry event log) and the attempt count of the
    failing stage travel with the exception, so an abort can be
    correlated with its retry history and its trace dump without
    reaching into the report object.
    """

    def __init__(
        self,
        stage: str,
        cause: BaseException,
        report=None,
        rolled_back: bool = True,
        recon_id: str = "",
        attempts: int = 1,
    ):
        message = (
            f"reconfiguration aborted at stage {stage!r}: "
            f"{type(cause).__name__}: {cause}"
        )
        if recon_id:
            message += f" [{recon_id}, attempt {attempts}]"
        super().__init__(message, recon_id, attempts)
        self.stage = stage
        self.cause = cause
        self.report = report
        self.rolled_back = rolled_back
        self.recon_id = recon_id
        self.attempts = attempts

    def __str__(self) -> str:
        # With recon_id/attempts in args, the default multi-arg
        # Exception.__str__ would render the whole tuple.
        return str(self.args[0]) if self.args else ""


class ReconfigurationTimeout(ReconfigurationAborted, ReconfigTimeoutError):
    """The transaction aborted because a wait deadline expired.

    Inherits :class:`ReconfigTimeoutError` so callers written against
    the pre-transactional API (``except ReconfigTimeoutError``) still
    catch timeout-driven aborts.
    """


# ---------------------------------------------------------------------------
# Fault injection (testing)
# ---------------------------------------------------------------------------


class InjectedFault(ReproError):
    """A deterministic fault fired at a named injection site.

    Only ever raised while a :class:`repro.runtime.faults.FaultPlan` is
    installed — production code paths never construct one spontaneously.
    """

    def __init__(self, site: str, mode: str = "crash"):
        super().__init__(f"injected {mode} fault at site {site!r}")
        self.site = site
        self.mode = mode
