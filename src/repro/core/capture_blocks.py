"""Source snippets for capture and restore blocks (Figures 7 and 8).

Each function returns a list of source lines (no indentation); the
flattener indents and splices them into the dispatch loop.  Keeping the
text generation here makes the correspondence with the paper's figures
auditable in one place:

- :func:`call_capture_lines`      = Figure 7, "Capture Block for Edge (i, Si)"
- :func:`reconfig_capture_lines`  = Figure 7, "Capture Block for
  Reconfiguration Edge (j, R)"
- :func:`restore_block_lines`     = Figure 8, "Restore Block" including the
  per-edge restore code and the reconfiguration-edge variant
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.recongraph import ReconEdge
from repro.core.varinfo import FrameLayout, Variable


def edge_variables(
    layout: FrameLayout, keep: Optional[Set[str]]
) -> List[Variable]:
    """The frame slots captured at one edge, in layout order.

    ``keep=None`` means the full frame (the paper's conservative default);
    a set prunes to the liveness-derived subset (CAPTURE-PRUNING
    extension; the paper: "data-flow analysis could be used to determine
    the set of live variables").
    """
    if keep is None:
        return list(layout.variables)
    return [v for v in layout.variables if v.name in keep]


def _edge_fmt(layout: FrameLayout, variables: List[Variable]) -> str:
    chars = []
    for var in variables:
        chars.append("a" if var.kind.value == "ref_local" else var.fmt_char)
    return "l" + "".join(chars)


def _capture_call(
    layout: FrameLayout, edge_number: int, variables: List[Variable]
) -> str:
    values = ", ".join(v.capture_expr() for v in variables)
    fmt = _edge_fmt(layout, variables)
    args = f"'{layout.procedure}', '{fmt}', {edge_number}"
    if values:
        args += f", {values}"
    return f"mh.capture({args})"


def call_capture_lines(
    layout: FrameLayout,
    edge: ReconEdge,
    is_main: bool,
    after_block: int,
    keep: Optional[Set[str]] = None,
) -> List[str]:
    """Capture block installed after a call edge ``(i, Si)``.

    Triggered by ``mh.capturestack``; in ``main`` it additionally runs
    ``mh.encode()`` to send the completed state outside the module.
    """
    lines = [
        "if mh.capturestack:",
        f"    {_capture_call(layout, edge.number, edge_variables(layout, keep))}",
    ]
    if is_main:
        lines.append("    mh.encode()")
    lines.append("    return None")
    lines.append(f"_mh_pc = {after_block}")
    lines.append("continue")
    return lines


def reconfig_capture_lines(
    layout: FrameLayout,
    edge: ReconEdge,
    is_main: bool,
    resume_block: int,
    keep: Optional[Set[str]] = None,
) -> List[str]:
    """Capture block installed at a reconfiguration point ``(j, R)``.

    Triggered by ``mh.reconfig``; it flips on ``mh.capturestack`` (via
    ``begin_reconfig_capture``) so the call-edge blocks fire as each
    frame returns — exactly the flag hand-off of Figure 7.
    """
    label = edge.point.label if edge.point else "?"
    lines = [
        "if mh.reconfig:",
        f"    mh.begin_reconfig_capture('{label}')",
        f"    {_capture_call(layout, edge.number, edge_variables(layout, keep))}",
    ]
    if is_main:
        lines.append("    mh.encode()")
    lines.append("    return None")
    lines.append(f"_mh_pc = {resume_block}")
    lines.append("continue")
    return lines


def restore_block_lines(
    layout: FrameLayout,
    edges: List[ReconEdge],
    call_block_for_edge: Dict[int, int],
    resume_block_for_edge: Dict[int, int],
    is_main: bool,
    keep_per_edge: Optional[Dict[int, Set[str]]] = None,
) -> List[str]:
    """Restore block inserted at the top of an instrumented procedure.

    Restores the local state, then dispatches on the captured location:
    call edges re-enter their call block with ``_mh_redo`` set (repeat
    the call, dummies substituted); the reconfiguration edge ends the
    restoration and resumes at the label ``R``.

    With pruning (``keep_per_edge``), each dispatch arm restores exactly
    the variables its edge captured; unpruned, the variable restores are
    hoisted above the dispatch since every edge captures the full frame.
    """
    lines: List[str] = []
    if is_main:
        lines.append("if mh.getstatus() == 'clone' and not mh.restoring:")
        lines.append("    mh.decode()")
    lines.append("if mh.restoring:")
    lines.append(f"    _mh_vals = mh.restore('{layout.procedure}')")
    if keep_per_edge is None:
        full = list(layout.variables)
        lines.append(
            f"    mh.expect_frame_fmt('{_edge_fmt(layout, full)}', "
            f"'{layout.procedure}')"
        )
        for index, var in enumerate(full, start=1):
            lines.append(f"    {var.restore_stmt(f'_mh_vals[{index}]')}")
    keyword = "if"
    for edge in edges:
        lines.append(f"    {keyword} _mh_vals[0] == {edge.number}:")
        if keep_per_edge is not None:
            variables = edge_variables(layout, keep_per_edge.get(edge.number))
            lines.append(
                f"        mh.expect_frame_fmt('{_edge_fmt(layout, variables)}', "
                f"'{layout.procedure}')"
            )
            for index, var in enumerate(variables, start=1):
                lines.append(f"        {var.restore_stmt(f'_mh_vals[{index}]')}")
        if edge.kind == "call":
            lines.append("        _mh_redo = True")
            lines.append(f"        _mh_pc = {call_block_for_edge[edge.number]}")
        else:
            lines.append("        mh.end_restore()")
            lines.append(f"        _mh_pc = {resume_block_for_edge[edge.number]}")
        keyword = "elif"
    lines.append("    else:")
    lines.append(
        f"        mh.bad_restore_location(_mh_vals[0], '{layout.procedure}')"
    )
    return lines
