"""Dummy-argument substitution for restore-time re-invocation.

Paper Section 3, last paragraphs: repeating the original procedure call
during restoration is unsafe when the arguments are *expressions*, because
"these expressions are evaluated with the restored state, and their
evaluation can cause a run-time error that did not arise when they were
evaluated with the original state.  The solution ... is to modify the
call by substituting dummy arguments for expressions whose evaluation
could result in a run-time error.  The data types of these dummy
arguments are determined by the types declared in the parameter list of
the procedure."

Safety classification (conservative):

- ``Name`` — safe: a bare local cannot fault, and names bound to ``Ref``
  cells *must* be kept so the pointer chain into the caller's frame is
  rebuilt by the re-executed call
- ``Constant`` and unary +/- of a constant — safe
- ``Ref(<safe>...)`` — safe: constructing a fresh out-parameter cell
- everything else (subscripts, arithmetic, attribute access, nested
  calls) — replaced by a typed dummy

The dummy's value follows the callee's parameter annotation, defaulting
to ``None`` — the callee's restore block overwrites every parameter
before use, so only *evaluability* matters, exactly as the paper argues.
"""

from __future__ import annotations

import ast
import copy
from typing import List, Optional

from repro.core.varinfo import is_ref_constructor

#: Annotation name -> dummy value expression source.
_DUMMY_BY_ANNOTATION = {
    "int": "0",
    "float": "0.0",
    "str": "''",
    "bool": "False",
    "bytes": "b''",
    "Ref": "Ref(None)",
}


def is_safe_argument(node: ast.expr) -> bool:
    """True when re-evaluating ``node`` with restored state cannot fault."""
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return isinstance(node.operand, ast.Constant)
    if is_ref_constructor(node):
        return all(is_safe_argument(arg) for arg in node.args) and not node.keywords
    return False


def _dummy_for(annotation: Optional[ast.expr]) -> ast.expr:
    source = "None"
    if isinstance(annotation, ast.Name):
        source = _DUMMY_BY_ANNOTATION.get(annotation.id, "None")
    elif (
        isinstance(annotation, ast.Subscript)
        and isinstance(annotation.value, ast.Name)
        and annotation.value.id == "Ref"
    ):
        source = "Ref(None)"
    return ast.parse(source, mode="eval").body


def substitute_dummy_args(
    call: ast.Call, callee: Optional[ast.FunctionDef]
) -> ast.Call:
    """Return a copy of ``call`` with unsafe arguments replaced by dummies.

    ``callee`` supplies parameter annotations for typed dummies; with no
    callee signature available every dummy is ``None``.
    """
    new_call = copy.deepcopy(call)
    annotations: List[Optional[ast.expr]] = []
    if callee is not None:
        for arg in callee.args.posonlyargs + callee.args.args:
            annotations.append(arg.annotation)
    for index, arg in enumerate(new_call.args):
        if is_safe_argument(arg):
            continue
        annotation = annotations[index] if index < len(annotations) else None
        dummy = _dummy_for(annotation)
        ast.copy_location(dummy, arg)
        new_call.args[index] = dummy
    return ast.fix_missing_locations(new_call)


def count_substitutions(call: ast.Call) -> int:
    """How many arguments of ``call`` would be dummied (for reports)."""
    return sum(0 if is_safe_argument(arg) else 1 for arg in call.args)
