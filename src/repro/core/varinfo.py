"""Frame layouts: which variables each capture block saves, and how.

"For capturing the state of the activation record stack, the relevant
variables are the parameters and local variables of a procedure" (paper
Section 3).  :func:`analyze_frame` computes, for one instrumented
procedure, the ordered list of variables, each classified by kind:

``PARAM``      plain parameter — captured by name, restored by assignment
``REF_PARAM``  a :class:`~repro.runtime.refs.Ref` parameter (the paper's
               ``double *rp``) — the *pointee* is captured (``rp.get()``)
               and restored through the pointer (``rp.set(v)``); the
               pointer itself is rebuilt by re-executing the call chain
``LOCAL``      plain local — pre-initialised to ``None`` at procedure
               entry so capture is defined at every block
``REF_LOCAL``  a local bound to ``Ref(...)`` — captured/restored via the
               ``mh.pack_ref``/``mh.unpack_ref`` helpers so a
               still-``None`` cell survives the round trip unambiguously

Format characters come from parameter annotations when present (``n: int``
-> ``l``), matching how the paper reads C declarations; unannotated
variables use the self-describing ``a``.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TransformError

#: Annotation name -> format char (paper: C type -> format char).
_ANNOTATION_CHARS = {
    "int": "l",
    "float": "F",
    "str": "s",
    "bool": "b",
    "bytes": "B",
}


class VarKind(enum.Enum):
    PARAM = "param"
    REF_PARAM = "ref_param"
    LOCAL = "local"
    REF_LOCAL = "ref_local"


@dataclass
class Variable:
    """One slot of a procedure's abstract activation record."""

    name: str
    kind: VarKind
    fmt_char: str = "a"

    @property
    def is_ref(self) -> bool:
        return self.kind in (VarKind.REF_PARAM, VarKind.REF_LOCAL)

    def capture_expr(self) -> str:
        """Source expression whose value the capture block records."""
        if self.kind == VarKind.REF_PARAM:
            return f"{self.name}.get()"
        if self.kind == VarKind.REF_LOCAL:
            return f"mh.pack_ref({self.name})"
        return self.name

    def restore_stmt(self, source_expr: str) -> str:
        """Source statement the restore block runs for this slot."""
        if self.kind == VarKind.REF_PARAM:
            return f"{self.name}.set({source_expr})"
        if self.kind == VarKind.REF_LOCAL:
            return f"{self.name} = mh.unpack_ref({source_expr})"
        return f"{self.name} = {source_expr}"


@dataclass
class FrameLayout:
    """The complete abstract layout of one procedure's frame."""

    procedure: str
    variables: List[Variable] = field(default_factory=list)

    @property
    def fmt(self) -> str:
        """Capture format string: leading ``l`` is the resume location."""
        chars = []
        for var in self.variables:
            if var.kind == VarKind.REF_LOCAL:
                # pack_ref yields None or a 1-tuple; both are 'a'-shaped.
                chars.append("a")
            else:
                chars.append(var.fmt_char)
        return "l" + "".join(chars)

    def names(self) -> List[str]:
        return [v.name for v in self.variables]

    def param_names(self) -> List[str]:
        return [
            v.name
            for v in self.variables
            if v.kind in (VarKind.PARAM, VarKind.REF_PARAM)
        ]

    def local_names(self) -> List[str]:
        return [
            v.name
            for v in self.variables
            if v.kind in (VarKind.LOCAL, VarKind.REF_LOCAL)
        ]

    def variable(self, name: str) -> Variable:
        for var in self.variables:
            if var.name == name:
                return var
        raise TransformError(f"{self.procedure}: no frame slot for {name!r}")


def _annotation_info(annotation: Optional[ast.expr]) -> tuple:
    """Classify a parameter annotation: (is_ref, fmt_char)."""
    if annotation is None:
        return (False, "a")
    if isinstance(annotation, ast.Name):
        if annotation.id == "Ref":
            return (True, "a")
        return (False, _ANNOTATION_CHARS.get(annotation.id, "a"))
    # Ref[float] -> pointee char F
    if (
        isinstance(annotation, ast.Subscript)
        and isinstance(annotation.value, ast.Name)
        and annotation.value.id == "Ref"
    ):
        inner = annotation.slice
        if isinstance(inner, ast.Name):
            return (True, _ANNOTATION_CHARS.get(inner.id, "a"))
        return (True, "a")
    return (False, "a")


def is_ref_constructor(node: ast.expr) -> bool:
    """True for ``Ref(...)`` expressions."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "Ref"
    )


class _LocalCollector(ast.NodeVisitor):
    """Collect local bindings, in order of first occurrence.

    Only ``Name`` targets create frame slots (subscript/attribute stores
    mutate heap or static objects, which the heap/statics machinery
    carries).  A local ever bound to ``Ref(...)`` is a REF_LOCAL; binding
    the same name to both Ref and non-Ref values is rejected because the
    capture block could not choose a representation.
    """

    def __init__(self, param_names: List[str], procedure: str):
        self.param_names = set(param_names)
        self.procedure = procedure
        self.order: List[str] = []
        # None = only kind-neutral bindings seen so far (e.g. `x = None`,
        # the C-style pre-declaration idiom); True/False once decided.
        self.ref_evidence: Dict[str, Optional[bool]] = {}

    def _bind(self, name: str, is_ref: Optional[bool], lineno: int) -> None:
        if name in self.param_names:
            if is_ref:
                raise TransformError(
                    f"line {lineno}: parameter {name!r} of {self.procedure!r} "
                    f"rebound to Ref(...); annotate it ': Ref' instead"
                )
            return
        if name not in self.ref_evidence:
            self.order.append(name)
            self.ref_evidence[name] = is_ref
            return
        existing = self.ref_evidence[name]
        if is_ref is None or existing == is_ref:
            return
        if existing is None:
            self.ref_evidence[name] = is_ref
            return
        raise TransformError(
            f"line {lineno}: local {name!r} in {self.procedure!r} is bound "
            f"to both Ref and non-Ref values; use separate names"
        )

    @staticmethod
    def _kind_of_value(value: ast.expr) -> Optional[bool]:
        """True=Ref, False=non-Ref, None=kind-neutral (a NULL binding)."""
        if is_ref_constructor(value):
            return True
        if isinstance(value, ast.Constant) and value.value is None:
            return None
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_ref = self._kind_of_value(node.value)
        for target in node.targets:
            self._bind_target(target, is_ref, node.lineno)
        self.generic_visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            is_ref, _ = _annotation_info(node.annotation)
            is_ref = is_ref or (node.value is not None and is_ref_constructor(node.value))
            self._bind(node.target.id, is_ref, node.lineno)
        if node.value is not None:
            self.generic_visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, False, node.lineno)
        self.generic_visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, False, node.lineno)
        self.generic_visit(node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def _bind_target(self, target: ast.expr, is_ref: bool, lineno: int) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, is_ref, lineno)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                self._bind_target(element, False, lineno)
        # Subscript/Attribute targets: heap/static mutation, no frame slot.

    def visit_FunctionDef(self, node):  # pragma: no cover - validated away
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def _annotation_fmt_for_local(node: ast.FunctionDef, name: str) -> str:
    """Find an AnnAssign annotation for a local, if the author gave one."""
    for stmt in ast.walk(node):
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
        ):
            _is_ref, char = _annotation_info(stmt.annotation)
            return char
    return "a"


def analyze_frame(fn: ast.FunctionDef) -> FrameLayout:
    """Compute the frame layout of one (already validated) procedure."""
    layout = FrameLayout(procedure=fn.name)
    param_names: List[str] = []
    for arg in fn.args.posonlyargs + fn.args.args:
        is_ref, char = _annotation_info(arg.annotation)
        kind = VarKind.REF_PARAM if is_ref else VarKind.PARAM
        layout.variables.append(Variable(arg.arg, kind, char))
        param_names.append(arg.arg)

    collector = _LocalCollector(param_names, fn.name)
    for stmt in fn.body:
        collector.visit(stmt)
    for name in collector.order:
        # Evidence None = only NULL bindings seen: an ordinary local.
        if collector.ref_evidence[name] is True:
            layout.variables.append(Variable(name, VarKind.REF_LOCAL, "a"))
        else:
            layout.variables.append(
                Variable(name, VarKind.LOCAL, _annotation_fmt_for_local(fn, name))
            )
    return layout
