"""Desugar ``for i in range(...)`` into capturable ``while`` loops.

A ``for`` loop hides its iteration state inside an iterator object, which
has no abstract (machine-independent) representation.  Inside instrumented
procedures we therefore rewrite range-loops into explicit integer state —
three generated locals carry the next value, the stop bound and the step,
all of which land in the frame layout and survive capture/restoration::

    for i in range(a, b, c):        _mh_fr0_next = a
        BODY                        _mh_fr0_stop = b
                            ==>     _mh_fr0_step = c
                                    while (_mh_fr0_step > 0 and _mh_fr0_next < _mh_fr0_stop) \
                                       or (_mh_fr0_step < 0 and _mh_fr0_next > _mh_fr0_stop):
                                        i = _mh_fr0_next
                                        _mh_fr0_next = _mh_fr0_next + _mh_fr0_step
                                        BODY

The loop variable is assigned *before* the body and the cursor advanced
immediately, so ``continue`` inside BODY jumps to the header with the
cursor already moved — identical semantics to the original ``for``.
(Validation has already rejected non-range ``for`` loops in instrumented
procedures.)
"""

from __future__ import annotations

import ast
import copy
from typing import List

from repro.errors import TransformError


class _RangeDesugarer(ast.NodeTransformer):
    def __init__(self) -> None:
        self._counter = 0

    def visit_For(self, node: ast.For) -> List[ast.stmt]:
        self.generic_visit(node)
        iter_call = node.iter
        if not (
            isinstance(iter_call, ast.Call)
            and isinstance(iter_call.func, ast.Name)
            and iter_call.func.id == "range"
        ):
            raise TransformError(
                f"line {node.lineno}: non-range for-loop reached desugaring "
                f"(validation should have rejected it)"
            )
        if not isinstance(node.target, ast.Name):
            raise TransformError(
                f"line {node.lineno}: for-loop target must be a single name"
            )
        index = self._counter
        self._counter += 1
        next_var = f"_mh_fr{index}_next"
        stop_var = f"_mh_fr{index}_stop"
        step_var = f"_mh_fr{index}_step"

        args = iter_call.args
        if len(args) == 1:
            start_src, stop_node, step_src = "0", args[0], "1"
        elif len(args) == 2:
            start_src, stop_node, step_src = None, args[1], "1"
        else:
            start_src, stop_node, step_src = None, args[1], None

        setup: List[ast.stmt] = []

        def assign(name: str, value: ast.expr) -> None:
            setup.append(
                ast.Assign(targets=[ast.Name(id=name, ctx=ast.Store())], value=value)
            )

        if start_src is not None:
            assign(next_var, ast.parse(start_src, mode="eval").body)
        else:
            assign(next_var, copy.deepcopy(args[0]))
        assign(stop_var, copy.deepcopy(stop_node))
        if step_src is not None:
            assign(step_var, ast.parse(step_src, mode="eval").body)
        else:
            assign(step_var, copy.deepcopy(args[2]))

        test = ast.parse(
            f"({step_var} > 0 and {next_var} < {stop_var}) or "
            f"({step_var} < 0 and {next_var} > {stop_var})",
            mode="eval",
        ).body
        advance = ast.parse(
            f"{node.target.id} = {next_var}\n"
            f"{next_var} = {next_var} + {step_var}"
        ).body
        loop = ast.While(test=test, body=advance + node.body, orelse=[])
        result = setup + [loop]
        for stmt in result:
            ast.copy_location(stmt, node)
            ast.fix_missing_locations(stmt)
        return result


def desugar_for_range(fn: ast.FunctionDef) -> ast.FunctionDef:
    """Return a deep copy of ``fn`` with all range-loops desugared."""
    clone = copy.deepcopy(fn)
    _RangeDesugarer().visit(clone)
    ast.fix_missing_locations(clone)
    return clone
