"""Control-flow flattening: emit an instrumented procedure as Python source.

The paper's restore code jumps with ``goto Li`` into loop bodies.  The
flattener provides that power in Python: each procedure becomes a
dispatch loop over an explicit program counter ``_mh_pc``::

    def compute(num: int, n: int, rp: Ref):
        temper = None
        _mh_pc = 0
        _mh_redo = False
        if mh.restoring:
            _mh_vals = mh.restore('compute')
            num = _mh_vals[1]
            ...
        while True:
            if _mh_pc == 0:
                ...
            elif _mh_pc == 3:   # call block, edge (3, S3)
                if _mh_redo:
                    _mh_redo = False
                    compute(num, 0, rp)      # dummies substituted
                else:
                    compute(num, n - 1, rp)
                _mh_pc = 4
                continue
            elif _mh_pc == 4:   # capture block for edge 3
                if mh.capturestack:
                    mh.capture('compute', 'lllF', 3, num, n, rp.get())
                    return None
                ...

Normal execution pays one integer comparison chain per block transition
plus one flag test per capture block — the paper's "run-time cost is
merely that of periodically testing the flags", with the dispatch
overhead measured honestly in benchmark D1.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.capture_blocks import (
    call_capture_lines,
    reconfig_capture_lines,
    restore_block_lines,
)
from repro.core.cfg import Block, CondGoto, FunctionCFG, Goto, ReturnTerm
from repro.core.dummy_args import substitute_dummy_args
from repro.core.recongraph import ReconfigurationGraph
from repro.core.varinfo import FrameLayout
from repro.errors import FlattenError

INDENT = "    "


@dataclass
class FlattenOptions:
    """Codegen knobs.

    ``substitute_dummies=False`` disables the paper's dummy-argument
    substitution (Section 3's fix for restore-time run-time errors) —
    exists so the ablation tests can demonstrate the failure the paper
    predicts.  ``keep_per_edge`` enables liveness-based capture pruning:
    each edge captures (and its restore arm reinstates) only its own
    variable subset.
    """

    substitute_dummies: bool = True
    keep_per_edge: Optional[Dict[int, Set[str]]] = None

    def keep_for(self, edge_number: int) -> Optional[Set[str]]:
        if self.keep_per_edge is None:
            return None
        return self.keep_per_edge.get(edge_number)


class _Emitter:
    """Indentation-aware line buffer."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.level = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(f"{INDENT * self.level}{line}" if line else "")

    def emit_lines(self, lines: List[str]) -> None:
        for line in lines:
            self.emit(line)

    def emit_block_lines(self, lines: List[str], extra_level: int) -> None:
        for line in lines:
            self.lines.append(f"{INDENT * (self.level + extra_level)}{line}")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _unparse_stmt(stmt: ast.stmt) -> List[str]:
    return ast.unparse(stmt).split("\n")


def _signature(fn: ast.FunctionDef) -> str:
    args = ast.unparse(fn.args)
    return f"def {fn.name}({args}):"


def _docstring(fn: ast.FunctionDef) -> Optional[str]:
    if (
        fn.body
        and isinstance(fn.body[0], ast.Expr)
        and isinstance(fn.body[0].value, ast.Constant)
        and isinstance(fn.body[0].value.value, str)
    ):
        return fn.body[0].value.value
    return None


def _redo_stmt(block: Block, functions: Dict[str, ast.FunctionDef]) -> ast.stmt:
    """The call statement re-executed during restoration, dummies applied."""
    stmt = block.stmts[0]
    call: Optional[ast.Call] = None
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
    elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
        call = stmt.value
    if call is None:  # pragma: no cover - guaranteed by validation
        raise FlattenError("call block does not contain a call statement")
    callee_name = call.func.id if isinstance(call.func, ast.Name) else None
    callee = functions.get(callee_name) if callee_name else None
    new_call = substitute_dummy_args(call, callee)
    if isinstance(stmt, ast.Expr):
        redo: ast.stmt = ast.Expr(value=new_call)
    else:
        assign = stmt
        redo = ast.Assign(targets=[assign.targets[0]], value=new_call)
    ast.copy_location(redo, stmt)
    return ast.fix_missing_locations(redo)


def flatten_function(
    fn: ast.FunctionDef,
    cfg: FunctionCFG,
    layout: FrameLayout,
    recon: ReconfigurationGraph,
    functions: Dict[str, ast.FunctionDef],
    is_main: bool,
    options: Optional[FlattenOptions] = None,
) -> str:
    """Emit the reconfigurable (flattened + instrumented) source of ``fn``."""
    options = options or FlattenOptions()
    out = _Emitter()
    out.emit(_signature(fn))
    out.level += 1

    doc = _docstring(fn)
    if doc is not None:
        out.emit(f"{doc!r}")

    # -- locals pre-initialisation (uninitialised slots are NULL) --
    locals_ = layout.local_names()
    for name in locals_:
        out.emit(f"{name} = None")
    out.emit(f"_mh_pc = {cfg.entry}")
    out.emit("_mh_redo = False")

    # -- restore block (Figure 8) --
    edges = recon.edges_from(fn.name)
    if edges:
        out.emit_lines(
            restore_block_lines(
                layout,
                edges,
                cfg.call_block_for_edge,
                cfg.resume_block_for_edge,
                is_main,
                keep_per_edge=options.keep_per_edge,
            )
        )

    # -- dispatch loop --
    out.emit("while True:")
    out.level += 1
    keyword = "if"
    for block_id in cfg.block_ids():
        block = cfg.blocks[block_id]
        out.emit(f"{keyword} _mh_pc == {block_id}:")
        keyword = "elif"
        out.level += 1
        _emit_block(out, block, cfg, layout, recon, functions, is_main, options)
        out.level -= 1
    out.emit("else:")
    out.level += 1
    out.emit(f"mh.bad_pc(_mh_pc, '{fn.name}')")
    out.level -= 2
    out.level -= 1

    source = out.source()
    try:
        compile(source, f"<flattened {fn.name}>", "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise FlattenError(
            f"flattener produced invalid source for {fn.name!r}: {exc}\n{source}"
        ) from exc
    return source


def _emit_block(
    out: _Emitter,
    block: Block,
    cfg: FunctionCFG,
    layout: FrameLayout,
    recon: ReconfigurationGraph,
    functions: Dict[str, ast.FunctionDef],
    is_main: bool,
    options: FlattenOptions,
) -> None:
    term = block.terminator
    if block.kind == "call":
        assert block.edge is not None and isinstance(term, Goto)
        out.emit("if _mh_redo:")
        out.level += 1
        out.emit("_mh_redo = False")
        if options.substitute_dummies:
            out.emit_lines(_unparse_stmt(_redo_stmt(block, functions)))
        else:
            # Ablation: repeat the original call verbatim — the unsafe
            # behaviour Section 3 warns about.
            out.emit_lines(_unparse_stmt(block.stmts[0]))
        out.level -= 1
        out.emit("else:")
        out.level += 1
        out.emit_lines(_unparse_stmt(block.stmts[0]))
        out.level -= 1
        out.emit(f"_mh_pc = {term.target}")
        out.emit("continue")
        return
    if block.kind == "capture":
        assert block.edge is not None and isinstance(term, Goto)
        out.emit_lines(
            call_capture_lines(
                layout,
                block.edge,
                is_main,
                term.target,
                keep=options.keep_for(block.edge.number),
            )
        )
        return
    if block.kind == "reconfig_capture":
        assert block.edge is not None and isinstance(term, Goto)
        out.emit_lines(
            reconfig_capture_lines(
                layout,
                block.edge,
                is_main,
                term.target,
                keep=options.keep_for(block.edge.number),
            )
        )
        return

    # plain block
    for stmt in block.stmts:
        out.emit_lines(_unparse_stmt(stmt))
    if isinstance(term, Goto):
        out.emit(f"_mh_pc = {term.target}")
        out.emit("continue")
    elif isinstance(term, CondGoto):
        out.emit(f"if {ast.unparse(term.test)}:")
        out.level += 1
        out.emit(f"_mh_pc = {term.then_target}")
        out.level -= 1
        out.emit("else:")
        out.level += 1
        out.emit(f"_mh_pc = {term.else_target}")
        out.level -= 1
        out.emit("continue")
    elif isinstance(term, ReturnTerm):
        if term.value is not None:
            out.emit(f"return {ast.unparse(term.value)}")
        else:
            out.emit("return None")
    else:  # pragma: no cover - cfg.check() rules this out
        raise FlattenError(f"block {block.id} has no terminator")
