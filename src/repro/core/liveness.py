"""Live-variable analysis at reconfiguration points.

Paper Section 3: "At a reconfiguration point, data-flow analysis could be
used to determine the set of live variables."  The paper leaves this as
future work (the programmer lists the variables); we implement the
analysis as an advisory pass: a classic backward may-liveness fixpoint
over the per-procedure CFG, reporting which captured frame variables are
actually dead at each capture edge.  The transformer still captures the
full frame (conservative and version-stable), but the report lets a
module author — or the CAPTURE-PRUNING extension in ``transformer`` —
shrink the abstract state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.cfg import Block, CondGoto, FunctionCFG, Goto, ReturnTerm
from repro.core.recongraph import ReconfigurationGraph
from repro.core.varinfo import FrameLayout


def _uses_defs_of_stmt(stmt: ast.stmt) -> Tuple[Set[str], Set[str]]:
    """Names read and names written by one simple statement.

    A method call on a name (``rp.set(...)``) counts as a *use* of the
    name: the cell object must exist even though its content changes.
    """
    uses: Set[str] = set()
    defs: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                defs.add(node.id)
            else:
                uses.add(node.id)
    # AugAssign both reads and writes its target.
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        uses.add(stmt.target.id)
    return uses, defs


def _block_gen_kill(block: Block) -> Tuple[Set[str], Set[str]]:
    """use/def sets of a block, respecting statement order."""
    gen: Set[str] = set()
    kill: Set[str] = set()
    for stmt in block.stmts:
        uses, defs = _uses_defs_of_stmt(stmt)
        gen |= uses - kill
        kill |= defs
    term = block.terminator
    if isinstance(term, CondGoto):
        for node in ast.walk(term.test):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                if node.id not in kill:
                    gen.add(node.id)
    elif isinstance(term, ReturnTerm) and term.value is not None:
        for node in ast.walk(term.value):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                if node.id not in kill:
                    gen.add(node.id)
    return gen, kill


@dataclass
class EdgeLiveness:
    """Liveness verdict for one reconfiguration-graph edge.

    ``live`` is what the continuation *after* the edge reads;
    ``capture_set`` is the safe pruned capture list — for call edges it
    additionally includes the names the re-executed call itself needs
    (its argument names), which is exactly ``live_in`` of the call block.
    """

    edge_number: int
    kind: str
    live: Set[str] = field(default_factory=set)
    captured: Set[str] = field(default_factory=set)
    capture_set: Set[str] = field(default_factory=set)

    @property
    def dead_captured(self) -> Set[str]:
        """Frame variables captured at this edge but never read again."""
        return self.captured - self.live


@dataclass
class LivenessReport:
    """Per-procedure liveness at every capture edge."""

    procedure: str
    live_in: Dict[int, Set[str]] = field(default_factory=dict)
    live_out: Dict[int, Set[str]] = field(default_factory=dict)
    edges: List[EdgeLiveness] = field(default_factory=list)

    def edge(self, number: int) -> EdgeLiveness:
        for entry in self.edges:
            if entry.edge_number == number:
                return entry
        raise KeyError(f"no liveness entry for edge {number}")

    def total_dead_slots(self) -> int:
        return sum(len(e.dead_captured) for e in self.edges)


def analyze_liveness(
    cfg: FunctionCFG, layout: FrameLayout, recon: ReconfigurationGraph
) -> LivenessReport:
    """Backward may-liveness fixpoint over one procedure's CFG."""
    frame_names = set(layout.names())
    gen: Dict[int, Set[str]] = {}
    kill: Dict[int, Set[str]] = {}
    for block_id, block in cfg.blocks.items():
        g, k = _block_gen_kill(block)
        gen[block_id] = g & frame_names
        kill[block_id] = k & frame_names

    live_in: Dict[int, Set[str]] = {b: set() for b in cfg.blocks}
    live_out: Dict[int, Set[str]] = {b: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block_id in cfg.blocks:
            out: Set[str] = set()
            for succ in cfg.successors(block_id):
                out |= live_in[succ]
            new_in = gen[block_id] | (out - kill[block_id])
            if out != live_out[block_id] or new_in != live_in[block_id]:
                live_out[block_id] = out
                live_in[block_id] = new_in
                changed = True

    report = LivenessReport(
        procedure=cfg.procedure, live_in=live_in, live_out=live_out
    )
    for edge in recon.edges_from(cfg.procedure):
        if edge.kind == "reconfig":
            # Live at the resume label (what the continuation reads).
            resume = cfg.resume_block_for_edge[edge.number]
            live = set(live_in[resume])
            capture_set = set(live)
        else:
            # Live after the call returns: the capture block's successor.
            # (The call's own arguments were already consumed.)
            call_block = cfg.call_block_for_edge[edge.number]
            capture_block = cfg.successors(call_block)[0]
            after = cfg.successors(capture_block)[0]
            live = set(live_in[after])
            # The pruned capture is live_in at the call block itself: it
            # carries what the re-executed call reads plus what the
            # continuation reads, and correctly excludes the call's own
            # assignment target (the redo call recomputes it).
            capture_set = set(live_in[call_block])
        report.edges.append(
            EdgeLiveness(
                edge_number=edge.number,
                kind=edge.kind,
                live=live,
                captured=frame_names,
                capture_set=capture_set & frame_names,
            )
        )
    return report
