"""Static call graph construction (paper Section 3, Figure 6).

"The static call graph of a program contains a node for each
procedure/function in the program, and a directed edge from node a to
node b if and only if the source code for procedure a contains a call to
procedure b. ... At any particular time during program execution, the
frames contained in the activation record stack correspond to a path in
the static call graph originating at node main."

We use a :class:`networkx.MultiDiGraph` so two calls from ``main`` to
``a`` produce two distinct edges, each carrying its :class:`CallSite`
(line number and the exact AST nodes) — the paper labels edges with line
numbers for the same reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.errors import CallGraphError

MAIN = "main"


@dataclass
class CallSite:
    """One syntactic call from ``caller`` to ``callee``.

    ``stmt`` is the enclosing *simple statement* (the unit the transformer
    instruments); ``call`` is the :class:`ast.Call` node itself; ``top_level``
    records whether the call is the whole right-hand side of the statement
    (the only position the transformer supports for instrumented calls).
    """

    caller: str
    callee: str
    lineno: int
    col: int
    stmt: ast.stmt
    call: ast.Call
    top_level: bool

    def describe(self) -> str:
        return f"{self.caller} -> {self.callee} at line {self.lineno}"


class _CallCollector(ast.NodeVisitor):
    """Collect calls to module-level functions within one function body."""

    def __init__(self, caller: str, known: Set[str]):
        self.caller = caller
        self.known = known
        self.sites: List[CallSite] = []
        self._current_stmt: Optional[ast.stmt] = None
        self._top_level_calls: Set[int] = set()

    def visit_stmt(self, node: ast.stmt) -> None:
        previous = self._current_stmt
        self._current_stmt = node
        # Identify the call occupying the statement's top-level value slot.
        value = getattr(node, "value", None)
        if isinstance(value, ast.Call):
            self._top_level_calls.add(id(value))
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._current_stmt = previous

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            self.visit_stmt(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested scopes are rejected by validation; don't descend here.
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self.known and self._current_stmt is not None:
                self.sites.append(
                    CallSite(
                        caller=self.caller,
                        callee=name,
                        lineno=node.lineno,
                        col=node.col_offset,
                        stmt=self._current_stmt,
                        call=node,
                        top_level=id(node) in self._top_level_calls,
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.visit(child)


@dataclass
class StaticCallGraph:
    """The program's static call graph plus the underlying AST functions."""

    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    graph: nx.MultiDiGraph = field(default_factory=nx.MultiDiGraph)

    # -- queries ------------------------------------------------------------

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def callees(self, name: str) -> List[str]:
        return sorted(set(self.graph.successors(name))) if name in self.graph else []

    def callers(self, name: str) -> List[str]:
        return sorted(set(self.graph.predecessors(name))) if name in self.graph else []

    def sites_from(self, name: str) -> List[CallSite]:
        return [s for s in self.sites if s.caller == name]

    def sites_between(self, caller: str, callee: str) -> List[CallSite]:
        return [s for s in self.sites if s.caller == caller and s.callee == callee]

    def reachable_from(self, name: str) -> Set[str]:
        """All procedures reachable from ``name`` (inclusive)."""
        if name not in self.graph:
            return {name} if name in self.functions else set()
        return {name} | nx.descendants(self.graph, name)

    def reaching(self, targets: Set[str]) -> Set[str]:
        """All procedures from which any of ``targets`` is reachable."""
        result: Set[str] = set()
        for target in targets:
            if target in self.graph:
                result |= nx.ancestors(self.graph, target)
            result.add(target)
        return result

    def possible_stacks_are_paths(self) -> bool:
        """Invariant check used by property tests: each node is either
        ``main`` or has an incoming edge (the paper's observation that all
        nodes except main have one or more incoming edges holds only for
        programs without dead procedures; dead procedures are allowed but
        never on a stack)."""
        for node in self.graph.nodes:
            if node == MAIN:
                continue
            if self.graph.in_degree(node) == 0 and node in self.reachable_from(MAIN):
                return False
        return True


def module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Top-level function definitions by name, in source order."""
    functions: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            if node.name in functions:
                raise CallGraphError(
                    f"procedure {node.name!r} defined twice (lines "
                    f"{functions[node.name].lineno} and {node.lineno})"
                )
            functions[node.name] = node
    return functions


def build_call_graph(tree: ast.Module) -> StaticCallGraph:
    """Build the static call graph of a module AST.

    Only calls to the module's own top-level functions become edges —
    calls into the runtime (``mh.read``) or to builtins are not
    procedures of the program in the paper's sense.
    """
    functions = module_functions(tree)
    known = set(functions)
    result = StaticCallGraph(functions=functions)
    for name in functions:  # ensure isolated nodes exist
        result.graph.add_node(name)
    for name, fn in functions.items():
        collector = _CallCollector(name, known)
        for stmt in fn.body:
            collector.visit_stmt(stmt)
        for site in collector.sites:
            result.sites.append(site)
            result.graph.add_edge(site.caller, site.callee, site=site)
    result.sites.sort(key=lambda s: (functions[s.caller].lineno, s.lineno, s.col))
    return result
