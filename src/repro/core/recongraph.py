"""The reconfiguration graph (paper Section 3, Figure 6).

"The first step in preparing a program for reconfiguration is to augment
this subgraph of the static call graph.  The augmented subgraph, called
the *reconfiguration graph*, contains an edge for each procedure call,
and each edge is labeled with the line number of the call. ... The
reconfiguration graph also contains a new node, named *reconfig*, and an
edge from each reconfiguration point to the reconfig node ... the edges
in the reconfiguration graph are numbered consecutively, so each edge is
labeled (i, Si)."

These numbered edges are exactly the resume *locations* stored as the
first value of every captured activation record.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.callgraph import MAIN, CallSite, StaticCallGraph
from repro.errors import ReconfigGraphError

#: Name of the synthetic sink node every reconfiguration point points to.
RECONFIG_NODE = "reconfig"

#: The runtime object and method that mark a reconfiguration point in source.
MARKER_OBJECT = "mh"
MARKER_METHOD = "reconfig_point"


@dataclass
class ReconfigPoint:
    """A programmer-designated reconfiguration point.

    Found as a marker statement ``mh.reconfig_point("R")`` in the source
    (the paper uses a C label plus a MIL declaration; we fold both into
    the marker and optionally cross-check against the MIL spec).
    """

    label: str
    procedure: str
    lineno: int
    stmt: ast.stmt


@dataclass
class ReconEdge:
    """One numbered edge ``(i, Si)`` of the reconfiguration graph."""

    number: int
    kind: str  # "call" or "reconfig"
    source: str
    target: str  # callee procedure, or RECONFIG_NODE
    lineno: int
    call_site: Optional[CallSite] = None
    point: Optional[ReconfigPoint] = None

    @property
    def label(self) -> str:
        """The paper's edge label: ``(i, Si)`` or ``(j, R)``."""
        if self.kind == "reconfig":
            return f"({self.number}, {self.point.label})"  # type: ignore[union-attr]
        return f"({self.number}, S{self.lineno})"


@dataclass
class ReconfigurationGraph:
    """All numbered edges plus the node set they span."""

    nodes: List[str] = field(default_factory=list)  # procedures, source order
    points: List[ReconfigPoint] = field(default_factory=list)
    edges: List[ReconEdge] = field(default_factory=list)

    # -- queries ------------------------------------------------------------

    def procedures(self) -> List[str]:
        """Instrumented procedures (every node except the reconfig sink)."""
        return list(self.nodes)

    def is_instrumented(self, procedure: str) -> bool:
        return procedure in self.nodes

    def edges_from(self, procedure: str) -> List[ReconEdge]:
        return [e for e in self.edges if e.source == procedure]

    def call_edges(self) -> List[ReconEdge]:
        return [e for e in self.edges if e.kind == "call"]

    def reconfig_edges(self) -> List[ReconEdge]:
        return [e for e in self.edges if e.kind == "reconfig"]

    def edge_by_number(self, number: int) -> ReconEdge:
        for edge in self.edges:
            if edge.number == number:
                return edge
        raise ReconfigGraphError(f"no reconfiguration edge numbered {number}")

    def edge_for_call_stmt(self, stmt: ast.stmt) -> Optional[ReconEdge]:
        for edge in self.edges:
            if edge.call_site is not None and edge.call_site.stmt is stmt:
                return edge
        return None

    def edge_for_point_stmt(self, stmt: ast.stmt) -> Optional[ReconEdge]:
        for edge in self.edges:
            if edge.point is not None and edge.point.stmt is stmt:
                return edge
        return None

    def point_labels(self) -> List[str]:
        return [p.label for p in self.points]

    def describe(self) -> str:
        """Figure-6-style listing of the numbered edges."""
        lines = [f"reconfiguration graph over {', '.join(self.nodes)}"]
        for edge in self.edges:
            lines.append(
                f"  {edge.label}: {edge.source} -> "
                f"{edge.target if edge.kind == 'call' else RECONFIG_NODE}"
            )
        return "\n".join(lines)


def is_reconfig_marker(stmt: ast.stmt) -> Optional[str]:
    """Return the point label if ``stmt`` is ``mh.reconfig_point("R")``."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return None
    call = stmt.value
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == MARKER_METHOD
        and isinstance(func.value, ast.Name)
        and func.value.id == MARKER_OBJECT
    ):
        if len(call.args) != 1 or not isinstance(call.args[0], ast.Constant):
            raise ReconfigGraphError(
                f"line {stmt.lineno}: reconfiguration point marker must be "
                f'mh.reconfig_point("LABEL") with a literal label'
            )
        label = call.args[0].value
        if not isinstance(label, str) or not label:
            raise ReconfigGraphError(
                f"line {stmt.lineno}: reconfiguration point label must be a "
                f"non-empty string"
            )
        return label
    return None


def find_reconfig_points(call_graph: StaticCallGraph) -> List[ReconfigPoint]:
    """Locate every marker statement in every procedure."""
    points: List[ReconfigPoint] = []
    seen_labels: Dict[str, int] = {}
    for name, fn in call_graph.functions.items():
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.stmt):
                continue
            label = is_reconfig_marker(stmt)
            if label is None:
                continue
            if label in seen_labels:
                raise ReconfigGraphError(
                    f"line {stmt.lineno}: reconfiguration point {label!r} "
                    f"already defined at line {seen_labels[label]}"
                )
            seen_labels[label] = stmt.lineno
            points.append(
                ReconfigPoint(
                    label=label, procedure=name, lineno=stmt.lineno, stmt=stmt
                )
            )
    points.sort(key=lambda p: p.lineno)
    return points


def build_reconfiguration_graph(
    call_graph: StaticCallGraph,
    points: Optional[List[ReconfigPoint]] = None,
    entry: str = MAIN,
) -> ReconfigurationGraph:
    """Construct the numbered reconfiguration graph.

    Node set: "only nodes on paths starting at main and ending at a
    procedure containing a reconfiguration point" — computed as the
    intersection of *reachable from main* and *reaches a point procedure*.
    Edges are numbered consecutively in (procedure source order, call line)
    order, so numbering is deterministic for a given source text.
    """
    if points is None:
        points = find_reconfig_points(call_graph)
    if not points:
        raise ReconfigGraphError(
            "module has no reconfiguration points; nothing to prepare "
            "(module-level reconfiguration needs no participation)"
        )
    if entry not in call_graph.functions:
        raise ReconfigGraphError(f"module has no {entry!r} procedure")

    point_procs: Set[str] = {p.procedure for p in points}
    reachable = call_graph.reachable_from(entry)
    unreachable_points = point_procs - reachable
    if unreachable_points:
        raise ReconfigGraphError(
            "reconfiguration point(s) in procedure(s) unreachable from "
            f"{entry!r}: {', '.join(sorted(unreachable_points))}"
        )
    reaches_point = call_graph.reaching(point_procs)
    node_set = (reachable & reaches_point) | {entry} | point_procs

    # Deterministic node order: source order of the function definitions.
    ordered_nodes = [
        name for name in call_graph.functions if name in node_set
    ]

    graph = ReconfigurationGraph(nodes=ordered_nodes, points=list(points))

    # Gather, per procedure, its outgoing items (call sites into the node
    # set, and points inside it), then number them consecutively.
    number = 1
    for name in ordered_nodes:
        items: List[tuple] = []
        for site in call_graph.sites_from(name):
            if site.callee in node_set:
                items.append((site.lineno, site.col, "call", site))
        for point in points:
            if point.procedure == name:
                items.append((point.lineno, 0, "reconfig", point))
        items.sort(key=lambda item: (item[0], item[1]))
        for lineno, _col, kind, payload in items:
            if kind == "call":
                site: CallSite = payload
                graph.edges.append(
                    ReconEdge(
                        number=number,
                        kind="call",
                        source=name,
                        target=site.callee,
                        lineno=lineno,
                        call_site=site,
                    )
                )
            else:
                point = payload
                graph.edges.append(
                    ReconEdge(
                        number=number,
                        kind="reconfig",
                        source=name,
                        target=RECONFIG_NODE,
                        lineno=lineno,
                        point=point,
                    )
                )
            number += 1
    return graph
