"""The paper's core contribution: automatic module preparation.

Given a module source with programmer-designated reconfiguration points
(``mh.reconfig_point("R")`` statements), :func:`prepare_module` produces a
*reconfigurable* source: capture blocks after every call on a
main-to-point path, a restore block at the top of every such procedure,
and resume labels — the Python analogue of Figure 4 of the paper.

Pipeline (Section 3 of the paper):

1. :mod:`repro.core.callgraph` — static call graph
2. :mod:`repro.core.recongraph` — reconfiguration graph with numbered edges
3. :mod:`repro.core.validate` — supported-subset checks with diagnostics
4. :mod:`repro.core.desugar` — ``for range(...)`` loops into capturable whiles
5. :mod:`repro.core.varinfo` — frame layouts (what each capture block saves)
6. :mod:`repro.core.cfg` — structured control-flow graph per procedure
7. :mod:`repro.core.flatten` — dispatch-loop flattening (the goto)
8. :mod:`repro.core.transformer` — assembles the final module source
"""

from repro.core.callgraph import CallSite, StaticCallGraph, build_call_graph
from repro.core.recongraph import (
    RECONFIG_NODE,
    ReconEdge,
    ReconfigPoint,
    ReconfigurationGraph,
    build_reconfiguration_graph,
    find_reconfig_points,
)
from repro.core.liveness import EdgeLiveness, LivenessReport, analyze_liveness
from repro.core.transformer import TransformResult, prepare_module

__all__ = [
    "CallSite",
    "StaticCallGraph",
    "build_call_graph",
    "RECONFIG_NODE",
    "ReconEdge",
    "ReconfigPoint",
    "ReconfigurationGraph",
    "build_reconfiguration_graph",
    "find_reconfig_points",
    "TransformResult",
    "prepare_module",
    "EdgeLiveness",
    "LivenessReport",
    "analyze_liveness",
]
