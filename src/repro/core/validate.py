"""Supported-subset validation for reconfigurable module sources.

The paper assumes "a module written in a statically-scoped language with
a single thread of control"; its examples are structured C.  Our module
language is structured Python.  *Only procedures on the reconfiguration
graph* are restricted — everything else in the module is passed through
untouched, mirroring the paper's observation that only procedures which
can be on the activation-record stack at a reconfiguration point need
instrumentation.

Restrictions on instrumented procedures (each with a diagnostic that
points at the offending line):

- structured statements only: assignment, expression statements,
  ``if``/``while``/``for range(...)``/``break``/``continue``/``return``
  (no ``try``, ``with``, ``yield``, nested ``def``, ``global``, ...)
- a call to another instrumented procedure must be a whole statement —
  either ``f(...)`` or ``x = f(...)`` — with positional arguments
- loop ``else`` clauses are rejected (their resume semantics under
  restoration are ambiguous)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.callgraph import StaticCallGraph
from repro.core.recongraph import ReconfigurationGraph, is_reconfig_marker
from repro.errors import UnsupportedConstructError


@dataclass
class Diagnostic:
    """One validation finding."""

    message: str
    lineno: int

    def __str__(self) -> str:
        return f"line {self.lineno}: {self.message}"


_BANNED_STMTS = {
    ast.Try: "try/except cannot be captured across a reconfiguration",
    ast.With: "with-blocks hold resources the abstract state cannot carry; "
    "use mh.files for files",
    ast.AsyncFor: "async constructs violate the single-thread-of-control model",
    ast.AsyncWith: "async constructs violate the single-thread-of-control model",
    ast.AsyncFunctionDef: "async constructs violate the single-thread-of-control model",
    ast.FunctionDef: "nested procedure definitions break the static call graph",
    ast.ClassDef: "class definitions inside instrumented procedures are unsupported",
    ast.Global: "use mh.statics for static data instead of global",
    ast.Nonlocal: "nonlocal requires closures, which are unsupported",
    ast.Delete: "del of locals would leave the frame layout undefined",
    ast.Import: "imports belong at module level",
    ast.ImportFrom: "imports belong at module level",
}

_BANNED_EXPRS = {
    ast.Yield: "generators cannot participate in stack capture",
    ast.YieldFrom: "generators cannot participate in stack capture",
    ast.Await: "async constructs violate the single-thread-of-control model",
    ast.Lambda: "lambdas create scopes invisible to the call graph",
    ast.NamedExpr: "walrus assignments hide locals from the frame layout",
}


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and 1 <= len(node.args) <= 3
        and not node.keywords
    )


class _InstrumentedChecker(ast.NodeVisitor):
    """Validate one instrumented procedure."""

    def __init__(self, fn: ast.FunctionDef, instrumented: Set[str]):
        self.fn = fn
        self.instrumented = instrumented
        self.diagnostics: List[Diagnostic] = []

    def report(self, message: str, node: ast.AST) -> None:
        self.diagnostics.append(Diagnostic(message, getattr(node, "lineno", 0)))

    # -- signature ----------------------------------------------------------

    def check_signature(self) -> None:
        args = self.fn.args
        if args.vararg or args.kwarg:
            self.report(
                f"procedure {self.fn.name!r} uses *args/**kwargs; instrumented "
                f"procedures need a fixed frame layout",
                self.fn,
            )
        if args.kwonlyargs:
            self.report(
                f"procedure {self.fn.name!r} has keyword-only parameters; "
                f"instrumented calls are positional",
                self.fn,
            )

    # -- statements ----------------------------------------------------------

    def check_body(self) -> None:
        self.check_signature()
        for stmt in self.fn.body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.stmt) -> None:
        for banned, why in _BANNED_STMTS.items():
            if isinstance(stmt, banned):
                self.report(why, stmt)
                return
        if isinstance(stmt, (ast.While, ast.For)) and stmt.orelse:
            self.report(
                "loop else-clauses are unsupported in instrumented procedures",
                stmt,
            )
        if isinstance(stmt, ast.For):
            if not _is_range_call(stmt.iter):
                self.report(
                    "for-loops in instrumented procedures must iterate over "
                    "range(...) — arbitrary iterators cannot be captured in "
                    "the abstract state",
                    stmt,
                )
            elif not isinstance(stmt.target, ast.Name):
                self.report("for-loop target must be a single name", stmt)

        self._check_instrumented_calls(stmt)
        self._check_expressions(stmt)

        # Recurse into structured bodies.
        for attr in ("body", "orelse"):
            for child in getattr(stmt, attr, []) or []:
                self._check_stmt(child)

    def _check_instrumented_calls(self, stmt: ast.stmt) -> None:
        """Calls into the reconfiguration graph must be whole statements."""
        if is_reconfig_marker(stmt):
            return
        # Do not descend into nested statements: they are checked on their
        # own visit, with their own top-level call slots.
        calls = [
            child
            for child in _shallow_walk(stmt)
            if isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id in self.instrumented
        ]
        if not calls:
            return
        top_value = getattr(stmt, "value", None)
        ok_shape = (
            isinstance(stmt, (ast.Expr, ast.Assign))
            and top_value in calls
            and len(calls) == 1
        )
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                ok_shape = False
        if not ok_shape:
            names = ", ".join(sorted({c.func.id for c in calls}))  # type: ignore[union-attr]
            self.report(
                f"call(s) to instrumented procedure(s) {names} must appear as "
                f"a whole statement ('f(...)' or 'x = f(...)') so a capture "
                f"block can be installed after the call",
                stmt,
            )
            return
        call = calls[0]
        if call.keywords:
            self.report(
                f"instrumented call to {call.func.id!r} must use positional "  # type: ignore[union-attr]
                f"arguments (the restore code re-invokes it positionally)",
                stmt,
            )
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                self.report(
                    "starred arguments in instrumented calls are unsupported",
                    stmt,
                )

    def _check_expressions(self, stmt: ast.stmt) -> None:
        for node in _shallow_walk(stmt):
            for banned, why in _BANNED_EXPRS.items():
                if isinstance(node, banned):
                    self.report(why, stmt)


def _shallow_walk(stmt: ast.AST):
    """Walk ``stmt`` without descending into nested statements."""
    stack = list(ast.iter_child_nodes(stmt))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.stmt):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def check_module_level(tree: ast.Module) -> List[Diagnostic]:
    """Validate module-level structure (loose: only real hazards)."""
    diagnostics: List[Diagnostic] = []
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            diagnostics.append(
                Diagnostic(
                    "async procedures violate the single-thread-of-control model",
                    node.lineno,
                )
            )
    return diagnostics


def check_instrumented(
    call_graph: StaticCallGraph, recon: ReconfigurationGraph
) -> List[Diagnostic]:
    """Validate every procedure on the reconfiguration graph."""
    diagnostics: List[Diagnostic] = []
    instrumented = set(recon.procedures())
    for name in recon.procedures():
        checker = _InstrumentedChecker(call_graph.functions[name], instrumented)
        checker.check_body()
        diagnostics.extend(checker.diagnostics)
    return diagnostics


def require_valid(diagnostics: List[Diagnostic]) -> None:
    """Raise :class:`UnsupportedConstructError` if any diagnostics exist."""
    if diagnostics:
        summary = "; ".join(str(d) for d in diagnostics[:10])
        if len(diagnostics) > 10:
            summary += f" (+{len(diagnostics) - 10} more)"
        first = diagnostics[0]
        raise UnsupportedConstructError(summary, lineno=first.lineno)
