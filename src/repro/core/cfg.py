"""Structured control-flow graphs for instrumented procedures.

The paper resumes execution with ``goto Li`` into the middle of loops —
legal in C, impossible in Python.  We therefore lower each instrumented
procedure into basic blocks (this module) and re-emit it as a dispatch
loop over an explicit program counter (:mod:`repro.core.flatten`), which
gives us arbitrary resume targets without touching the interpreter —
the same "no compiler or operating system changes" property the paper
claims, achieved one level up.

Block kinds:

``plain``             straight-line statements
``call``              exactly one instrumented call statement (edge i, Si);
                      restoration re-enters here with ``_mh_redo`` set
``capture``           the capture block installed after a call edge
                      (Figure 7, bottom)
``reconfig_capture``  the capture block installed at a reconfiguration
                      point (Figure 7, top); the block *after* it is the
                      paper's label ``R``, recorded as the resume target
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.recongraph import ReconEdge, ReconfigurationGraph, is_reconfig_marker
from repro.errors import FlattenError


@dataclass
class Goto:
    target: int


@dataclass
class CondGoto:
    test: ast.expr
    then_target: int
    else_target: int


@dataclass
class ReturnTerm:
    value: Optional[ast.expr] = None


Terminator = object  # Goto | CondGoto | ReturnTerm


@dataclass
class Block:
    id: int
    kind: str = "plain"
    stmts: List[ast.stmt] = field(default_factory=list)
    terminator: Optional[Terminator] = None
    edge: Optional[ReconEdge] = None


@dataclass
class FunctionCFG:
    """All blocks of one lowered procedure."""

    procedure: str
    blocks: Dict[int, Block] = field(default_factory=dict)
    entry: int = 0
    #: edge number -> block id of the call block (restore re-enters here)
    call_block_for_edge: Dict[int, int] = field(default_factory=dict)
    #: edge number -> block id just after the reconfiguration point (label R)
    resume_block_for_edge: Dict[int, int] = field(default_factory=dict)

    def block_ids(self) -> List[int]:
        return sorted(self.blocks)

    def successors(self, block_id: int) -> List[int]:
        term = self.blocks[block_id].terminator
        if isinstance(term, Goto):
            return [term.target]
        if isinstance(term, CondGoto):
            return [term.then_target, term.else_target]
        return []

    def reachable(self) -> List[int]:
        seen = {self.entry}
        work = [self.entry]
        while work:
            current = work.pop()
            for succ in self.successors(current):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        # Restoration can enter at call blocks and resume labels too.
        extra = list(self.call_block_for_edge.values()) + list(
            self.resume_block_for_edge.values()
        )
        for block_id in extra:
            if block_id not in seen:
                seen.add(block_id)
                work.append(block_id)
                while work:
                    current = work.pop()
                    for succ in self.successors(current):
                        if succ not in seen:
                            seen.add(succ)
                            work.append(succ)
        return sorted(seen)

    def check(self) -> None:
        """Internal consistency: every block terminated, targets exist."""
        for block_id, block in self.blocks.items():
            term = block.terminator
            if term is None:
                raise FlattenError(
                    f"{self.procedure}: block {block_id} has no terminator"
                )
            for target in self.successors(block_id):
                if target not in self.blocks:
                    raise FlattenError(
                        f"{self.procedure}: block {block_id} jumps to "
                        f"missing block {target}"
                    )


class CFGBuilder:
    """Lower one (validated, desugared) procedure body to basic blocks."""

    def __init__(self, fn: ast.FunctionDef, recon: ReconfigurationGraph):
        self.fn = fn
        self.recon = recon
        self.cfg = FunctionCFG(procedure=fn.name)
        self._next_id = 0

    # -- block plumbing --------------------------------------------------------

    def _new_block(self, kind: str = "plain", edge: Optional[ReconEdge] = None) -> Block:
        block = Block(id=self._next_id, kind=kind, edge=edge)
        self._next_id += 1
        self.cfg.blocks[block.id] = block
        return block

    def build(self) -> FunctionCFG:
        body = list(self.fn.body)
        # Drop a leading docstring; it is re-attached by the flattener.
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        entry = self._new_block()
        self.cfg.entry = entry.id
        last = self._lower_stmts(body, entry, break_target=None, continue_target=None)
        if last.terminator is None:
            last.terminator = ReturnTerm(None)
        self.cfg.check()
        return self.cfg

    # -- lowering ---------------------------------------------------------------

    def _lower_stmts(
        self,
        stmts: List[ast.stmt],
        current: Block,
        break_target: Optional[int],
        continue_target: Optional[int],
    ) -> Block:
        """Lower a statement list starting in ``current``; return the open
        block at the end (possibly already terminated by return/break)."""
        for stmt in stmts:
            if current.terminator is not None:
                # Unreachable code after return/break: keep lowering into a
                # fresh dead block so line numbers in diagnostics survive.
                current = self._new_block()
            current = self._lower_stmt(stmt, current, break_target, continue_target)
        return current

    def _lower_stmt(
        self,
        stmt: ast.stmt,
        current: Block,
        break_target: Optional[int],
        continue_target: Optional[int],
    ) -> Block:
        recon_edge = self.recon.edge_for_point_stmt(stmt)
        if recon_edge is not None:
            return self._lower_reconfig_point(recon_edge, current)
        if is_reconfig_marker(stmt):  # marker without an edge cannot happen
            raise FlattenError(
                f"{self.fn.name}: unregistered reconfiguration marker at "
                f"line {stmt.lineno}"
            )
        call_edge = self.recon.edge_for_call_stmt(stmt)
        if call_edge is not None:
            return self._lower_instrumented_call(stmt, call_edge, current)

        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current, break_target, continue_target)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, current, break_target, continue_target)
        if isinstance(stmt, ast.Return):
            current.terminator = ReturnTerm(stmt.value)
            return current
        if isinstance(stmt, ast.Break):
            if break_target is None:
                raise FlattenError(
                    f"{self.fn.name}: break outside loop at line {stmt.lineno}"
                )
            current.terminator = Goto(break_target)
            return current
        if isinstance(stmt, ast.Continue):
            if continue_target is None:
                raise FlattenError(
                    f"{self.fn.name}: continue outside loop at line {stmt.lineno}"
                )
            current.terminator = Goto(continue_target)
            return current
        if isinstance(stmt, ast.For):  # pragma: no cover - desugared earlier
            raise FlattenError(
                f"{self.fn.name}: for-loop survived desugaring at line {stmt.lineno}"
            )
        if isinstance(stmt, ast.Pass):
            return current
        # Any other simple statement flows straight through.
        current.stmts.append(stmt)
        return current

    def _lower_if(
        self,
        stmt: ast.If,
        current: Block,
        break_target: Optional[int],
        continue_target: Optional[int],
    ) -> Block:
        then_entry = self._new_block()
        else_entry = self._new_block() if stmt.orelse else None
        join = self._new_block()
        current.terminator = CondGoto(
            stmt.test,
            then_entry.id,
            else_entry.id if else_entry is not None else join.id,
        )
        then_exit = self._lower_stmts(stmt.body, then_entry, break_target, continue_target)
        if then_exit.terminator is None:
            then_exit.terminator = Goto(join.id)
        if else_entry is not None:
            else_exit = self._lower_stmts(
                stmt.orelse, else_entry, break_target, continue_target
            )
            if else_exit.terminator is None:
                else_exit.terminator = Goto(join.id)
        return join

    def _lower_while(
        self,
        stmt: ast.While,
        current: Block,
        break_target: Optional[int],
        continue_target: Optional[int],
    ) -> Block:
        header = self._new_block()
        body_entry = self._new_block()
        after = self._new_block()
        current.terminator = Goto(header.id)
        header.terminator = CondGoto(stmt.test, body_entry.id, after.id)
        body_exit = self._lower_stmts(
            stmt.body, body_entry, break_target=after.id, continue_target=header.id
        )
        if body_exit.terminator is None:
            body_exit.terminator = Goto(header.id)
        return after

    def _lower_instrumented_call(
        self, stmt: ast.stmt, edge: ReconEdge, current: Block
    ) -> Block:
        """Split out the call block and its trailing capture block.

        ``current -> call(Si) -> capture(Li) -> after`` — the capture block
        is the paper's block "installed at the line number associated with
        that edge", and the call block is the re-entry target during
        restoration.
        """
        call_block = self._new_block(kind="call", edge=edge)
        capture_block = self._new_block(kind="capture", edge=edge)
        after = self._new_block()
        current.terminator = Goto(call_block.id)
        call_block.stmts.append(stmt)
        call_block.terminator = Goto(capture_block.id)
        capture_block.terminator = Goto(after.id)
        self.cfg.call_block_for_edge[edge.number] = call_block.id
        return after

    def _lower_reconfig_point(self, edge: ReconEdge, current: Block) -> Block:
        """The marker becomes a reconfig-capture block; the following block
        is the paper's label ``R`` — the restore jump target."""
        capture_block = self._new_block(kind="reconfig_capture", edge=edge)
        resume = self._new_block()
        current.terminator = Goto(capture_block.id)
        capture_block.terminator = Goto(resume.id)
        self.cfg.resume_block_for_edge[edge.number] = resume.id
        return resume
