"""The reconfiguration primitives called by Figure 5's script.

Each function reproduces one ``mh_*`` operation from the paper's
replacement script, against a :class:`~repro.bus.bus.SoftwareBus`:

================================  ======================================
paper (Figure 5)                  here
================================  ======================================
``mh_obj_cap(&old, "compute")``   ``old = obj_cap(bus, "compute")``
``mh_bind_cap(&b)``               ``b = bind_cap()``
``mh_struct_objnames``            ``struct_objnames(bus, old)``
``mh_struct_ifdest``              ``struct_ifdest(bus, old, iface)``
``mh_struct_ifsources``           ``struct_ifsources(bus, old, iface)``
``mh_edit_bind(&b, op, ...)``     ``edit_bind(b, op, left, right)``
``mh_objstate_move(...)``         ``objstate_move(bus, old, new)``
``mh_rebind(&b)``                 ``rebind(bus, b)``
``mh_chg_obj(&new, "add")``       ``chg_obj(bus, new, "add")``
================================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bus.bus import SoftwareBus
from repro.bus.spec import ModuleSpec
from repro.errors import ReconfigError
from repro.reconfig.bindcmds import BindBatch, Endpoint


@dataclass
class ObjectCapability:
    """A handle on a module instance's *current* specification.

    "This module specification contains the same items as those supplied
    in the original configuration specification, but it corresponds to
    the current configuration, which could have been changed
    dynamically."
    """

    instance: str
    spec: ModuleSpec
    machine: str

    def endpoint(self, interface: str) -> Endpoint:
        return (self.instance, interface)


def obj_cap(bus: SoftwareBus, instance: str) -> ObjectCapability:
    """Access a module: obtain its current specification and placement."""
    module = bus.get_module(instance)
    return ObjectCapability(
        instance=instance,
        spec=module.spec.with_attributes(machine=module.host.name),
        machine=module.host.name,
    )


def bind_cap() -> BindBatch:
    """Prepare an empty batch of binding commands."""
    return BindBatch()


def edit_bind(
    batch: BindBatch,
    op: str,
    left: Endpoint,
    right: Optional[Endpoint] = None,
) -> None:
    """Append one bind command to a prepared batch."""
    if op == "add":
        batch.add(left, right)  # type: ignore[arg-type]
    elif op == "del":
        batch.delete(left, right)  # type: ignore[arg-type]
    elif op == "cq":
        batch.copy_queue(left, right)  # type: ignore[arg-type]
    elif op == "rmq":
        batch.remove_queue(left)
    else:
        raise ReconfigError(f"unknown bind edit {op!r}")


def rebind(bus: SoftwareBus, batch: BindBatch) -> None:
    """Apply all prepared binding commands at once."""
    batch.apply(bus)


def struct_objnames(bus: SoftwareBus, obj: ObjectCapability) -> List[str]:
    """Interface names of the module (Figure 5's first structure query)."""
    return bus.interface_names(obj.instance)


def struct_ifdest(
    bus: SoftwareBus, obj: ObjectCapability, interface: str
) -> List[Tuple[str, str]]:
    """Current destinations of messages written on (obj, interface)."""
    return bus.destinations_of(obj.instance, interface)


def struct_ifsources(
    bus: SoftwareBus, obj: ObjectCapability, interface: str
) -> List[Tuple[str, str]]:
    """Current sources of messages arriving at (obj, interface)."""
    return bus.sources_of(obj.instance, interface)


def objstate_move(
    bus: SoftwareBus,
    old: ObjectCapability,
    new: ObjectCapability,
    timeout: float = 10.0,
) -> bytes:
    """Get state from the old module and send it to the new one.

    The paper names the interfaces ("encode"/"decode"); on this bus the
    divulged packet travels the control channel, with the same
    machine-profile translation as any message.
    """
    return bus.objstate_move(old.instance, new.instance, timeout=timeout)


def chg_obj(bus: SoftwareBus, obj: ObjectCapability, op: str) -> None:
    """Start up a new module (``add``) or remove an old one (``del``)."""
    if op == "add":
        bus.start_module(obj.instance)
    elif op == "del":
        bus.remove_module(obj.instance)
    else:
        raise ReconfigError(f"unknown chg_obj operation {op!r}")
