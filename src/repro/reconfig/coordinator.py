"""Orchestration of a module replacement, with timing and failure handling.

The coordinator runs the event sequence of Figure 5 — access old module,
prepare bind commands, move state, rebind, start new, remove old — and
records when each step completed, which is what benchmark D3
(reconfiguration delay vs. point placement) measures.

Failure semantics: replacement is a *transaction*.  The stages are

========================  ==================================================
``clone_build``           create ``<instance>.new`` (pre-signal for a new
                          version, inside the wait window for a move)
``signal``                deliver the reconfiguration signal to the old
                          module
``wait_point``            wait (with deadline) for the old module to reach
                          a reconfiguration point and divulge its state
``rebind``                apply the prepared bind batch, moving every
                          binding and queued message to the clone
``start_clone``           start the clone's thread of control
``health_check``          wait until the clone finishes restoring (its
                          ``end_restore`` ran) — the point of no return
``commit``                remove the old module, rename the clone
========================  ==================================================

``clone_build``, ``rebind`` and ``start_clone`` retry transient failures
(injected faults, transport errors) under a bounded backoff policy.  Any
stage failing before ``commit`` triggers rollback: the signal is
withdrawn, applied bind edits are reversed, messages that reached the
clone's queues are drained back, the clone is torn down, and the old
module — whose thread exited when it divulged — is *revived* from its
own captured state packet, so the application keeps executing exactly
where the capture left it.  Every abort surfaces as a typed
:class:`~repro.errors.ReconfigurationAborted` carrying the stage and the
partial :class:`ReconfigurationReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.bus.bus import SoftwareBus, StateMoveStream
from repro.bus.module import ModuleInstance, ModuleState
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.errors import (
    InjectedFault,
    ReconfigError,
    ReconfigTimeoutError,
    ReconfigurationAborted,
    ReconfigurationTimeout,
    TransportError,
)
from repro.reconfig.bindcmds import BindBatch
from repro.reconfig.primitives import ObjectCapability, obj_cap
from repro.runtime import faults, telemetry
from repro.runtime.faults import RetryPolicy

STAGES = (
    "clone_build",
    "signal",
    "wait_point",
    "rebind",
    "start_clone",
    "health_check",
    "commit",
)

#: Failures considered transient: worth a bounded retry before aborting.
_TRANSIENT = (InjectedFault, TransportError)


@dataclass
class ReconfigurationReport:
    """What happened during one reconfiguration, and when."""

    instance: str
    kind: str
    old_machine: str = ""
    new_machine: str = ""
    packet_bytes: int = 0
    stack_depth: int = 0
    queued_copied: Dict[str, int] = field(default_factory=dict)
    t_signal: float = 0.0
    t_divulged: float = 0.0
    t_rebound: float = 0.0
    t_started: float = 0.0
    t_done: float = 0.0
    # -- transaction bookkeeping --
    recon_id: str = ""  # process-unique id; keys telemetry spans/events
    stage: str = "clone_build"  # last stage entered
    completed: List[str] = field(default_factory=list)
    retries: int = 0
    stage_attempts: Dict[str, int] = field(default_factory=dict)
    aborted: bool = False
    rolled_back: bool = False
    #: Pre-flight verdict for the clone's target placement ("" when the
    #: health plane is off or the target is inproc/ungated).
    health_verdict: str = ""

    @property
    def delay_to_point(self) -> float:
        """Time from signal to state divulged — dominated by how long the
        module takes to reach its next reconfiguration point."""
        return self.t_divulged - self.t_signal

    @property
    def total_time(self) -> float:
        return self.t_done - self.t_signal

    def describe(self) -> str:
        if self.aborted:
            return (
                f"aborted {self.kind} of {self.instance!r} "
                f"[{self.recon_id or '-'}] at stage "
                f"{self.stage!r} (rolled_back={self.rolled_back}, "
                f"retries={self.retries})"
            )
        return (
            f"{self.kind} of {self.instance!r}: "
            f"{self.old_machine} -> {self.new_machine}, "
            f"packet {self.packet_bytes}B, stack depth {self.stack_depth}, "
            f"delay-to-point {self.delay_to_point * 1000:.1f}ms, "
            f"total {self.total_time * 1000:.1f}ms"
        )


def prepare_rebind_batch(
    bus: SoftwareBus,
    old: ObjectCapability,
    new_instance: str,
    preserve_queues: bool = True,
) -> BindBatch:
    """Prepare the bind edits that move every binding from old to new.

    Equivalent to Figure 5's per-interface loops over ``struct_ifdest``
    and ``struct_ifsources`` (bidirectional interfaces appear in both, so
    the paper's two loops touch some bindings twice; we deduplicate).
    Queue copies (``cq``) and removals (``rmq``) are appended for every
    interface that can receive, so no queued message is lost.
    """
    batch = BindBatch()
    seen: Set[BindingSpec] = set()
    for binding in bus.bindings_of(old.instance):
        if binding in seen:
            continue
        seen.add(binding)
        (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
        batch.delete((a_inst, a_if), (b_inst, b_if))
        new_a = new_instance if a_inst == old.instance else a_inst
        new_b = new_instance if b_inst == old.instance else b_inst
        batch.add((new_a, a_if), (new_b, b_if))
    module = bus.get_module(old.instance)
    for decl in old.spec.interfaces:
        if module.has_queue(decl.name):
            if preserve_queues:
                batch.copy_queue(
                    (old.instance, decl.name), (new_instance, decl.name)
                )
            batch.remove_queue((old.instance, decl.name))
    return batch


class ReconfigurationCoordinator:
    """Executes replacement-shaped reconfigurations against one bus."""

    def __init__(self, bus: SoftwareBus, retry: Optional[RetryPolicy] = None):
        self.bus = bus
        self.retry = retry or RetryPolicy()
        self.history: List[ReconfigurationReport] = []

    # -- stage helpers -----------------------------------------------------

    def _attempt(
        self, report: ReconfigurationReport, stage: str, op: Callable[[], None]
    ) -> None:
        """Run one stage operation, retrying transient failures.

        Each attempt gets its own telemetry span (attribute ``attempt``),
        and the per-stage attempt count lands in
        ``report.stage_attempts`` so an abort can say how hard it tried.
        """
        delays = self.retry.delays()
        for attempt in range(self.retry.attempts):
            report.stage_attempts[stage] = attempt + 1
            try:
                with telemetry.span(
                    f"stage.{stage}", instance=report.instance, attempt=attempt + 1
                ):
                    op()
                return
            except _TRANSIENT:
                report.retries += 1
                telemetry.count("reconfig.retries", key=stage)
                if attempt >= self.retry.attempts - 1:
                    raise
                time.sleep(delays[attempt])

    def _await_restored(self, clone: ModuleInstance, timeout: float) -> None:
        """Health check: block until the clone's ``end_restore`` ran.

        A clone that dies decoding or rebuilding the captured stack is
        detected here, *before* the old module is removed — a crashed
        restore aborts the transaction instead of completing it.
        """
        deadline = time.monotonic() + timeout
        while True:
            if clone.mh.restored.wait(0.005):
                return
            clone.check_alive()  # raises ModuleCrashedError on a dead clone
            if clone.state in (ModuleState.STOPPED, ModuleState.REMOVED):
                raise ReconfigError(
                    f"clone {clone.name!r} exited ({clone.state.value}) "
                    f"before completing restoration"
                )
            if time.monotonic() >= deadline:
                raise ReconfigTimeoutError(
                    f"clone {clone.name!r} did not complete restoration "
                    f"within {timeout}s"
                )

    # -- rollback ----------------------------------------------------------

    def _rollback(
        self,
        report: ReconfigurationReport,
        stream: StateMoveStream,
        instance: str,
        temp_name: str,
        old_module: ModuleInstance,
        batch: Optional[BindBatch],
        packet: Optional[bytes],
        binding_order: Optional[List[BindingSpec]],
    ) -> None:
        """Put the application back on the old module.

        Order matters: withdraw the signal first (new captures stop),
        reverse the bind edits (new deliveries route to the old module
        again), then drain whatever reached the clone's queues back to
        the front of the old module's queues (the clone's queues hold
        every ``cq``-copied message plus all post-rebind arrivals, so
        nothing is lost or duplicated), tear the clone down, and finally
        revive the old module from its captured packet if its thread
        already exited divulging.
        """
        bus = self.bus
        stream.cancel()
        if batch is not None and batch.applied:
            batch.undo(bus)
            if binding_order is not None:
                bus.restore_binding_order(binding_order)
        pkt = packet if packet is not None else old_module.mh.outgoing_packet
        if bus.has_module(temp_name):
            clone = bus.get_module(temp_name)
            for decl in clone.spec.interfaces:
                if not (clone.has_queue(decl.name) and old_module.has_queue(decl.name)):
                    continue
                messages = clone.queue(decl.name).drain()
                if messages:
                    old_module.queue(decl.name).prepend(
                        [
                            m.transferred(clone.host.profile, old_module.host.profile)
                            for m in messages
                        ]
                    )
            bus.remove_module(temp_name)
        if pkt is not None and not (
            old_module.state is ModuleState.RUNNING
            and old_module.thread is not None
            and old_module.thread.is_alive()
        ):
            old_module.revive(pkt)
            bus.trace.append(f"revive {instance} from captured state")
        report.rolled_back = True

    def _abort(
        self,
        report: ReconfigurationReport,
        cause: BaseException,
        rolled_back: bool = True,
    ) -> BaseException:
        report.aborted = True
        report.rolled_back = rolled_back
        report.t_done = time.monotonic()
        self.history.append(report)
        self.bus.trace.append(report.describe())
        attempts = report.stage_attempts.get(report.stage, 1)
        telemetry.count("reconfig.aborts")
        telemetry.event(
            "reconfig.abort",
            recon=report.recon_id or None,
            stage=report.stage,
            cause=type(cause).__name__,
            rolled_back=rolled_back,
            attempts=attempts,
        )
        cls = (
            ReconfigurationTimeout
            if isinstance(cause, ReconfigTimeoutError)
            else ReconfigurationAborted
        )
        return cls(
            stage=report.stage,
            cause=cause,
            report=report,
            rolled_back=rolled_back,
            recon_id=report.recon_id,
            attempts=attempts,
        )

    # -- the transaction ---------------------------------------------------

    def replace(
        self,
        instance: str,
        new_spec: Optional[ModuleSpec] = None,
        machine: Optional[str] = None,
        timeout: float = 10.0,
        kind: str = "replace",
        preserve_queues: bool = True,
        placement: Optional[str] = None,
        force: bool = False,
    ) -> ReconfigurationReport:
        """Replace ``instance`` with a (possibly relocated, possibly new
        version) clone that resumes from the captured state.

        The clone temporarily exists as ``<instance>.new`` and takes over
        the original instance name once the original is removed.
        ``preserve_queues=False`` omits the ``cq`` commands — an ablation
        showing why Figure 5 copies queues (messages queued at the old
        module would otherwise be lost).

        ``placement`` picks where the clone executes (see
        :meth:`SoftwareBus.add_module`); by default it inherits the old
        module's placement, so a worker-hosted module is replaced in
        place — the captured state packet travels over the transport to
        the clone, and the rebind batch reaches the affected workers as
        route updates.  Passing a different placement migrates the
        module between processes as part of the replacement.

        All-or-nothing: any failure before the clone proves healthy
        aborts the transaction, rolls the bus back, and raises
        :class:`ReconfigurationAborted`; validation failures of a *new*
        version (a rejected upgrade) are detected before any signal goes
        out and keep their original exception type.
        """
        old = obj_cap(self.bus, instance)
        if not old.spec.is_reconfigurable:
            raise ReconfigError(
                f"module {old.spec.name!r} declares no reconfiguration "
                f"points; it cannot participate (use module-level "
                f"reconfiguration instead)"
            )
        if placement is None:
            placement = getattr(
                self.bus.get_module(instance), "placement", None
            )
        # Pre-flight health gate (when the health plane is on): refuse to
        # target a host the failure detector distrusts.  Runs before any
        # signal goes out, so a refusal leaves the application untouched
        # — like a rejected new version, it keeps a plain exception type
        # rather than a transactional abort.
        verdict = self.bus.health_verdict(placement)
        if verdict in ("suspect", "dead") and not force:
            telemetry.count("reconfig.health_refusals")
            telemetry.event(
                "reconfig.health_refused",
                instance=instance,
                placement=placement,
                verdict=verdict,
            )
            raise ReconfigError(
                f"pre-flight health gate: clone placement {placement!r} "
                f"is {verdict}; pass force=True to target it anyway"
            )
        target_machine = machine or old.machine
        spec = (new_spec or old.spec).with_attributes(
            machine=target_machine, status="clone"
        )
        report = ReconfigurationReport(
            instance=instance,
            kind=kind,
            old_machine=old.machine,
            new_machine=target_machine,
            recon_id=telemetry.next_reconfiguration_id(),
            health_verdict=verdict or "",
        )
        temp_name = f"{instance}.new"
        # The root span is "ambient": spans opened by other threads with
        # no local parent — the old module's capture/encode, the clone's
        # decode/restore — attach under it, so the whole replacement
        # renders as one tree keyed by report.recon_id.
        try:
            with telemetry.span(
                "reconfig.replace",
                recon=report.recon_id,
                ambient=True,
                instance=instance,
                kind=kind,
                old_machine=old.machine,
                new_machine=target_machine,
            ) as root:
                self._replace_txn(
                    old,
                    spec,
                    report,
                    temp_name,
                    new_spec,
                    timeout,
                    preserve_queues,
                    placement,
                )
                root.set(
                    packet_bytes=report.packet_bytes,
                    stack_depth=report.stack_depth,
                    retries=report.retries,
                )
        finally:
            # Commit or rollback: pull the remote halves of the span
            # tree home and drop adopted trace contexts, so the merged
            # rc-NNNN tree is complete the moment replace() returns.
            self.bus.flush_remote_telemetry()
        return report

    def _replace_txn(
        self,
        old: ObjectCapability,
        spec: ModuleSpec,
        report: ReconfigurationReport,
        temp_name: str,
        new_spec: Optional[ModuleSpec],
        timeout: float,
        preserve_queues: bool,
        placement: Optional[str] = None,
    ) -> None:
        instance = report.instance
        target_machine = report.new_machine

        def build_clone() -> None:
            faults.fire_hard("coordinator.clone_build")
            self.bus.add_module(
                spec,
                instance=temp_name,
                machine=target_machine,
                status="clone",
                placement=placement,
            )

        # A *new* version can be rejected by the transformer, and the
        # paper's all-or-nothing rule says a bad version must leave the
        # application untouched — so it is loaded before any signal goes
        # out.  A same-version clone (move/replicate) uses a spec the
        # original already proved loadable, so the signal goes out first
        # and the clone is built inside the wait-for-point window, which
        # otherwise is pure dead time (the dominant delay_to_point term).
        clone_built = False
        if new_spec is not None:
            report.stage = "clone_build"
            try:
                self._attempt(report, "clone_build", build_clone)
            except _TRANSIENT as exc:
                # Nothing signalled, nothing to roll back.
                raise self._abort(report, exc) from exc
            clone_built = True
            report.completed.append("clone_build")

        report.stage = "signal"
        report.stage_attempts["signal"] = 1
        report.t_signal = time.monotonic()
        with telemetry.span("stage.signal", instance=instance):
            stream = self.bus.objstate_stream(instance)
        report.completed.append("signal")
        old_module = self.bus.get_module(instance)

        batch: Optional[BindBatch] = None
        packet: Optional[bytes] = None
        binding_order: Optional[List[BindingSpec]] = None
        try:
            if not clone_built:
                report.stage = "clone_build"
                self._attempt(report, "clone_build", build_clone)
                clone_built = True
                report.completed.append("clone_build")
            stream.attach_target(temp_name)
            batch = prepare_rebind_batch(
                self.bus, old, temp_name, preserve_queues=preserve_queues
            )

            report.stage = "wait_point"
            report.stage_attempts["wait_point"] = 1
            with telemetry.span("stage.wait_point", instance=instance) as wait_span:
                packet = stream.wait(timeout)
                wait_span.set(packet_bytes=len(packet))
            report.completed.append("wait_point")
            report.t_divulged = time.monotonic()
            report.packet_bytes = len(packet)
            report.queued_copied = {
                name: count
                for name, count in old_module.queued_counts().items()
                if count
            }

            report.stage = "rebind"
            binding_order = self.bus.bindings()

            def rebind() -> None:
                faults.fire_hard("coordinator.rebind")
                batch.apply(self.bus)

            self._attempt(report, "rebind", rebind)
            report.completed.append("rebind")
            report.t_rebound = time.monotonic()

            report.stage = "start_clone"

            def start_clone() -> None:
                faults.fire_hard("coordinator.start_clone")
                self.bus.start_module(temp_name)

            self._attempt(report, "start_clone", start_clone)
            report.completed.append("start_clone")
            report.t_started = time.monotonic()

            report.stage = "health_check"
            report.stage_attempts["health_check"] = 1
            with telemetry.span("stage.health_check", instance=temp_name):
                self._await_restored(self.bus.get_module(temp_name), timeout)
            report.completed.append("health_check")
        except Exception as exc:
            rolled_back = True
            try:
                with telemetry.span("stage.rollback", instance=instance):
                    self._rollback(
                        report,
                        stream,
                        instance,
                        temp_name,
                        old_module,
                        batch,
                        packet,
                        binding_order,
                    )
                telemetry.count("reconfig.rollbacks")
            except Exception:
                rolled_back = False
            raise self._abort(report, exc, rolled_back=rolled_back) from exc

        # --- point of no return: the clone restored and holds the state ---
        report.stage = "commit"
        report.stage_attempts["commit"] = 1
        with telemetry.span("stage.commit", instance=instance):
            self.bus.remove_module(instance)
            self.bus.rename_instance(temp_name, instance)
        report.completed.append("commit")
        report.t_done = time.monotonic()
        telemetry.count("reconfig.commits")
        # Reporting detail, computed off the critical path: the depth
        # comes from the packet's peekable header — no frame decode.
        from repro.state.frames import peek_state_header

        report.stack_depth = peek_state_header(packet).depth
        self.history.append(report)
        self.bus.trace.append(report.describe())

    def replicate(
        self,
        instance: str,
        replica_instance: str,
        machine: Optional[str] = None,
        timeout: float = 10.0,
    ) -> Tuple[ReconfigurationReport, str]:
        """Replicate a module: the captured state seeds *two* clones.

        One clone takes over the original's name and bindings (the
        original died divulging its state); the second starts alongside
        it with duplicated bindings, on ``machine`` if given.  A failed
        replace aborts (and rolls back) before the replica is created,
        so replication inherits the replace transaction's all-or-nothing
        guarantee.
        """
        old = obj_cap(self.bus, instance)
        original_bindings = self.bus.bindings_of(instance)

        report = self.replace(instance, timeout=timeout, kind="replicate")

        replica_machine = machine or old.machine
        replica_span = telemetry.span(
            "reconfig.replicate", recon=report.recon_id, instance=replica_instance
        )
        spec = old.spec.with_attributes(machine=replica_machine, status="clone")
        replica = self.bus.add_module(
            spec,
            instance=replica_instance,
            machine=replica_machine,
            status="clone",
        )
        packet = self.bus.get_module(instance).mh.incoming_packet
        if packet is None:  # pragma: no cover - replace() always sets it
            raise ReconfigError("replacement clone lost its state packet")
        replica.mh.incoming_packet = packet
        for binding in original_bindings:
            (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
            new_a = replica_instance if a_inst == instance else a_inst
            new_b = replica_instance if b_inst == instance else b_inst
            self.bus.add_binding(
                BindingSpec(
                    from_instance=new_a,
                    from_interface=a_if,
                    to_instance=new_b,
                    to_interface=b_if,
                )
            )
        self.bus.start_module(replica_instance)
        replica_span.close()
        return report, replica_instance
