"""Orchestration of a module replacement, with timing and failure handling.

The coordinator runs the event sequence of Figure 5 — access old module,
prepare bind commands, move state, rebind, start new, remove old — and
records when each step completed, which is what benchmark D3
(reconfiguration delay vs. point placement) measures.

Failure semantics: if the old module never reaches a reconfiguration
point within the deadline, the prepared clone is discarded, the
reconfiguration signal is withdrawn, and the application continues
undisturbed in its original configuration — reconfiguration is
all-or-nothing at the application level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bus.bus import SoftwareBus
from repro.bus.spec import BindingSpec, ModuleSpec
from repro.errors import ReconfigError, ReconfigTimeoutError
from repro.reconfig.bindcmds import BindBatch
from repro.reconfig.primitives import ObjectCapability, obj_cap


@dataclass
class ReconfigurationReport:
    """What happened during one reconfiguration, and when."""

    instance: str
    kind: str
    old_machine: str = ""
    new_machine: str = ""
    packet_bytes: int = 0
    stack_depth: int = 0
    queued_copied: Dict[str, int] = field(default_factory=dict)
    t_signal: float = 0.0
    t_divulged: float = 0.0
    t_rebound: float = 0.0
    t_started: float = 0.0
    t_done: float = 0.0

    @property
    def delay_to_point(self) -> float:
        """Time from signal to state divulged — dominated by how long the
        module takes to reach its next reconfiguration point."""
        return self.t_divulged - self.t_signal

    @property
    def total_time(self) -> float:
        return self.t_done - self.t_signal

    def describe(self) -> str:
        return (
            f"{self.kind} of {self.instance!r}: "
            f"{self.old_machine} -> {self.new_machine}, "
            f"packet {self.packet_bytes}B, stack depth {self.stack_depth}, "
            f"delay-to-point {self.delay_to_point * 1000:.1f}ms, "
            f"total {self.total_time * 1000:.1f}ms"
        )


def prepare_rebind_batch(
    bus: SoftwareBus,
    old: ObjectCapability,
    new_instance: str,
    preserve_queues: bool = True,
) -> BindBatch:
    """Prepare the bind edits that move every binding from old to new.

    Equivalent to Figure 5's per-interface loops over ``struct_ifdest``
    and ``struct_ifsources`` (bidirectional interfaces appear in both, so
    the paper's two loops touch some bindings twice; we deduplicate).
    Queue copies (``cq``) and removals (``rmq``) are appended for every
    interface that can receive, so no queued message is lost.
    """
    batch = BindBatch()
    seen: Set[BindingSpec] = set()
    for binding in bus.bindings_of(old.instance):
        if binding in seen:
            continue
        seen.add(binding)
        (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
        batch.delete((a_inst, a_if), (b_inst, b_if))
        new_a = new_instance if a_inst == old.instance else a_inst
        new_b = new_instance if b_inst == old.instance else b_inst
        batch.add((new_a, a_if), (new_b, b_if))
    module = bus.get_module(old.instance)
    for decl in old.spec.interfaces:
        if module.has_queue(decl.name):
            if preserve_queues:
                batch.copy_queue(
                    (old.instance, decl.name), (new_instance, decl.name)
                )
            batch.remove_queue((old.instance, decl.name))
    return batch


class ReconfigurationCoordinator:
    """Executes replacement-shaped reconfigurations against one bus."""

    def __init__(self, bus: SoftwareBus):
        self.bus = bus
        self.history: List[ReconfigurationReport] = []

    def replace(
        self,
        instance: str,
        new_spec: Optional[ModuleSpec] = None,
        machine: Optional[str] = None,
        timeout: float = 10.0,
        kind: str = "replace",
        preserve_queues: bool = True,
    ) -> ReconfigurationReport:
        """Replace ``instance`` with a (possibly relocated, possibly new
        version) clone that resumes from the captured state.

        The clone temporarily exists as ``<instance>.new`` and takes over
        the original instance name once the original is removed.
        ``preserve_queues=False`` omits the ``cq`` commands — an ablation
        showing why Figure 5 copies queues (messages queued at the old
        module would otherwise be lost).
        """
        old = obj_cap(self.bus, instance)
        if not old.spec.is_reconfigurable:
            raise ReconfigError(
                f"module {old.spec.name!r} declares no reconfiguration "
                f"points; it cannot participate (use module-level "
                f"reconfiguration instead)"
            )
        target_machine = machine or old.machine
        spec = (new_spec or old.spec).with_attributes(
            machine=target_machine, status="clone"
        )
        report = ReconfigurationReport(
            instance=instance,
            kind=kind,
            old_machine=old.machine,
            new_machine=target_machine,
        )
        temp_name = f"{instance}.new"

        # A *new* version can be rejected by the transformer, and the
        # paper's all-or-nothing rule says a bad version must leave the
        # application untouched — so it is loaded before any signal goes
        # out.  A same-version clone (move/replicate) uses a spec the
        # original already proved loadable, so the signal goes out first
        # and the clone is built inside the wait-for-point window, which
        # otherwise is pure dead time (the dominant delay_to_point term).
        clone_built = False
        if new_spec is not None:
            self.bus.add_module(
                spec, instance=temp_name, machine=target_machine, status="clone"
            )
            clone_built = True

        report.t_signal = time.monotonic()
        stream = self.bus.objstate_stream(instance)
        try:
            if not clone_built:
                self.bus.add_module(
                    spec,
                    instance=temp_name,
                    machine=target_machine,
                    status="clone",
                )
                clone_built = True
            stream.attach_target(temp_name)
            batch = prepare_rebind_batch(
                self.bus, old, temp_name, preserve_queues=preserve_queues
            )
            packet = stream.wait(timeout)
        except (ReconfigTimeoutError, Exception):
            # All-or-nothing: withdraw the signal, discard the clone.
            stream.cancel()
            if clone_built:
                self.bus.remove_module(temp_name)
            raise
        report.t_divulged = time.monotonic()
        report.packet_bytes = len(packet)

        old_module = self.bus.get_module(instance)
        report.queued_copied = {
            name: count
            for name, count in old_module.queued_counts().items()
            if count
        }
        batch.apply(self.bus)
        report.t_rebound = time.monotonic()

        self.bus.start_module(temp_name)
        report.t_started = time.monotonic()

        self.bus.remove_module(instance)
        self.bus.rename_instance(temp_name, instance)
        report.t_done = time.monotonic()
        # Reporting detail, computed off the critical path: the depth
        # comes from the packet's peekable header — no frame decode.
        from repro.state.frames import peek_state_header

        report.stack_depth = peek_state_header(packet).depth
        self.history.append(report)
        self.bus.trace.append(report.describe())
        return report

    def replicate(
        self,
        instance: str,
        replica_instance: str,
        machine: Optional[str] = None,
        timeout: float = 10.0,
    ) -> Tuple[ReconfigurationReport, str]:
        """Replicate a module: the captured state seeds *two* clones.

        One clone takes over the original's name and bindings (the
        original died divulging its state); the second starts alongside
        it with duplicated bindings, on ``machine`` if given.
        """
        old = obj_cap(self.bus, instance)
        original_bindings = self.bus.bindings_of(instance)

        report = self.replace(instance, timeout=timeout, kind="replicate")

        replica_machine = machine or old.machine
        spec = old.spec.with_attributes(machine=replica_machine, status="clone")
        replica = self.bus.add_module(
            spec,
            instance=replica_instance,
            machine=replica_machine,
            status="clone",
        )
        packet = self.bus.get_module(instance).mh.incoming_packet
        if packet is None:  # pragma: no cover - replace() always sets it
            raise ReconfigError("replacement clone lost its state packet")
        replica.mh.incoming_packet = packet
        for binding in original_bindings:
            (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
            new_a = replica_instance if a_inst == instance else a_inst
            new_b = replica_instance if b_inst == instance else b_inst
            self.bus.add_binding(
                BindingSpec(
                    from_instance=new_a,
                    from_interface=a_if,
                    to_instance=new_b,
                    to_interface=b_if,
                )
            )
        self.bus.start_module(replica_instance)
        return report, replica_instance
