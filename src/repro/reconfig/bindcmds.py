"""Batched bind commands (Figure 5's ``mh_edit_bind`` / ``mh_rebind``).

The replacement script first *prepares* all rebinding commands, then —
after the old module has divulged its state — applies them "all at
once".  Four command kinds appear in Figure 5:

=======  =========================================================
``add``  create a binding between two endpoints
``del``  delete a binding
``cq``   copy the messages queued at an old endpoint to a new one
``rmq``  remove (drain) the messages queued at an endpoint
=======  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bus.bus import SoftwareBus
from repro.bus.spec import BindingSpec
from repro.errors import ReconfigError

Endpoint = Tuple[str, str]  # (instance, interface)

_OPS = ("add", "del", "cq", "rmq")


@dataclass
class BindCommand:
    """One prepared bind edit."""

    op: str
    left: Endpoint
    right: Optional[Endpoint] = None  # absent for rmq

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ReconfigError(f"unknown bind command {self.op!r}")
        if self.op != "rmq" and self.right is None:
            raise ReconfigError(f"bind command {self.op!r} needs two endpoints")

    def describe(self) -> str:
        left = f"{self.left[0]}.{self.left[1]}"
        if self.right is None:
            return f"{self.op} {left}"
        return f"{self.op} {left} <-> {self.right[0]}.{self.right[1]}"


@dataclass
class BindBatch:
    """An ordered batch of bind commands, applied atomically by ``apply``.

    "The rebinding commands are applied all at once, after the old module
    has divulged its state" — while the batch runs, no module thread can
    observe a half-rebound configuration because the bus binding table is
    mutated under its lock command-by-command and the divulged module is
    no longer producing messages.
    """

    commands: List[BindCommand] = field(default_factory=list)
    applied: bool = False
    _done: List[BindCommand] = field(default_factory=list)

    # -- preparation -----------------------------------------------------------

    def add(self, left: Endpoint, right: Endpoint) -> "BindBatch":
        self.commands.append(BindCommand("add", left, right))
        return self

    def delete(self, left: Endpoint, right: Endpoint) -> "BindBatch":
        self.commands.append(BindCommand("del", left, right))
        return self

    def copy_queue(self, old: Endpoint, new: Endpoint) -> "BindBatch":
        if old[1] != new[1]:
            raise ReconfigError(
                f"cq copies between same-named interfaces; got "
                f"{old[1]!r} -> {new[1]!r}"
            )
        self.commands.append(BindCommand("cq", old, new))
        return self

    def remove_queue(self, endpoint: Endpoint) -> "BindBatch":
        self.commands.append(BindCommand("rmq", endpoint))
        return self

    # -- application -------------------------------------------------------------

    def apply(self, bus: SoftwareBus) -> None:
        if self.applied:
            raise ReconfigError("bind batch already applied")
        # Hold the bus routing lock across the whole batch (the lock is
        # reentrant): no message is routed against a half-rebound binding
        # table — the batch really is applied "all at once".
        lock = getattr(bus, "_lock", None)
        if lock is not None:
            lock.acquire()
        try:
            for command in self.commands:
                if command.op == "add":
                    bus.add_binding(_binding(command.left, command.right))
                elif command.op == "del":
                    bus.remove_binding(_binding(command.left, command.right))
                elif command.op == "cq":
                    bus.copy_queue(command.left[0], command.left[1], command.right[0])  # type: ignore[index]
                elif command.op == "rmq":
                    bus.remove_queue(command.left[0], command.left[1])
                self._done.append(command)
        finally:
            if lock is not None:
                lock.release()
        self.applied = True

    def undo(self, bus: SoftwareBus) -> None:
        """Reverse the binding edits that actually ran, newest first.

        The rollback half of an aborted replacement.  Only ``add`` and
        ``del`` invert cleanly; ``cq``/``rmq`` moved message *contents*,
        which the coordinator compensates separately (it drains the
        clone's queues back into the revived original — the clone's
        queues are the single source of truth for every message copied
        by ``cq`` plus everything delivered after the rebind).
        """
        lock = getattr(bus, "_lock", None)
        if lock is not None:
            lock.acquire()
        try:
            for command in reversed(self._done):
                if command.op == "add":
                    bus.remove_binding(_binding(command.left, command.right))
                elif command.op == "del":
                    bus.add_binding(_binding(command.left, command.right))
        finally:
            if lock is not None:
                lock.release()
        self._done = []
        self.applied = False

    def describe(self) -> str:
        return "\n".join(command.describe() for command in self.commands)


def _binding(left: Endpoint, right: Optional[Endpoint]) -> BindingSpec:
    assert right is not None
    return BindingSpec(
        from_instance=left[0],
        from_interface=left[1],
        to_instance=right[0],
        to_interface=right[1],
    )
