"""Parameterized reconfiguration scripts (paper Section 2.2, Figure 5).

"This reconfiguration script is easily parameterized to accept a module
name and attributes.  The parameterized reconfiguration script could be
used to replace a module in any application, provided the module had
been prepared to participate during reconfiguration."

Each function below is such a parameterized script.  They share the
:class:`~repro.reconfig.coordinator.ReconfigurationCoordinator`
orchestration; :func:`figure5_replacement_script` additionally provides
a line-by-line rendition of the paper's Figure 5 against the primitives
API, used by the FIG5 benchmark and example to demonstrate the exact
published flow.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.bus import SoftwareBus
from repro.bus.spec import ModuleSpec
from repro.reconfig.coordinator import (
    ReconfigurationCoordinator,
    ReconfigurationReport,
)
from repro.reconfig.primitives import (
    bind_cap,
    chg_obj,
    edit_bind,
    obj_cap,
    objstate_move,
    rebind,
    struct_ifdest,
    struct_ifsources,
    struct_objnames,
)


def replace_module(
    bus: SoftwareBus,
    instance: str,
    machine: Optional[str] = None,
    new_spec: Optional[ModuleSpec] = None,
    timeout: float = 10.0,
) -> ReconfigurationReport:
    """Replace a module with a state-carrying clone (Figure 5)."""
    return ReconfigurationCoordinator(bus).replace(
        instance, new_spec=new_spec, machine=machine, timeout=timeout
    )


def move_module(
    bus: SoftwareBus, instance: str, machine: str, timeout: float = 10.0
) -> ReconfigurationReport:
    """Move a module to another machine while the application executes.

    This is the Monitor example's reconfiguration (Figure 1): replacement
    with the same specification and a new MACHINE attribute.
    """
    return ReconfigurationCoordinator(bus).replace(
        instance, machine=machine, timeout=timeout, kind="move"
    )


def upgrade_module(
    bus: SoftwareBus,
    instance: str,
    new_source: str,
    machine: Optional[str] = None,
    timeout: float = 10.0,
) -> ReconfigurationReport:
    """Replace a module with a *new version* (software maintenance).

    The new source must preserve the old version's reconfiguration graph
    shape at the captured locations (same procedures on main-to-point
    paths, same frame variables); a mismatch is detected at restore time
    and reported, leaving the clone failed and diagnosable rather than
    silently corrupt.
    """
    old = obj_cap(bus, instance)
    spec = old.spec.with_attributes()
    spec.inline_source = new_source
    spec.source = ""
    return ReconfigurationCoordinator(bus).replace(
        instance,
        new_spec=spec,
        machine=machine,
        timeout=timeout,
        kind="upgrade",
    )


def replicate_module(
    bus: SoftwareBus,
    instance: str,
    replica_instance: str,
    machine: Optional[str] = None,
    timeout: float = 10.0,
) -> Tuple[ReconfigurationReport, str]:
    """Replicate a module: one captured state seeds two running clones."""
    return ReconfigurationCoordinator(bus).replicate(
        instance, replica_instance, machine=machine, timeout=timeout
    )


def attach_module(
    bus: SoftwareBus,
    spec: ModuleSpec,
    instance: str,
    machine: str,
    bindings=None,
    attributes=None,
) -> None:
    """Grow the application: add a module and its bindings, then start it.

    The paper's basic reconfiguration activities include "adding ... a
    module from the application" — this script packages the primitive
    sequence (add module, add bindings, start) so growth is one call.
    Bindings are installed before the module starts, so its first writes
    already have somewhere to go.
    """
    bus.add_module(spec, instance=instance, machine=machine, attributes=attributes)
    for binding in bindings or []:
        bus.add_binding(binding)
    bus.start_module(instance)


def detach_module(bus: SoftwareBus, instance: str, timeout: float = 5.0) -> int:
    """Shrink the application: unbind and remove a module.

    Returns the number of bindings removed.  The module is stopped at an
    arbitrary execution point — detachment (unlike replacement) carries
    no state anywhere, so it needs no participation.
    """
    bindings = bus.bindings_of(instance)
    for binding in bindings:
        bus.remove_binding(binding)
    bus.remove_module(instance, timeout=timeout)
    return len(bindings)


def figure5_replacement_script(
    bus: SoftwareBus,
    module_name: str,
    machine: str,
    timeout: float = 10.0,
) -> str:
    """A line-by-line rendition of the paper's Figure 5 script.

    Returns the new instance's name (``<module>.new`` — unlike the
    coordinator, this faithful version does not fold the name back, just
    as the paper's script leaves ``new`` as a distinct object).
    """
    # access old module
    old = obj_cap(bus, module_name)

    # prepare binding commands
    b = bind_cap()
    new_name = f"{module_name}.new"
    interfaces = struct_objnames(bus, old)
    seen = set()
    for interface in interfaces:
        # rebind outgoing
        for dest in struct_ifdest(bus, old, interface):
            key = frozenset({(module_name, interface), dest})
            if key in seen:
                continue
            seen.add(key)
            edit_bind(b, "del", (module_name, interface), dest)
            edit_bind(b, "add", (new_name, interface), dest)
        # rebind incoming
        for source in struct_ifsources(bus, old, interface):
            key = frozenset({(module_name, interface), source})
            if key in seen:
                continue
            seen.add(key)
            edit_bind(b, "del", source, (module_name, interface))
            edit_bind(b, "add", source, (new_name, interface))
        if bus.get_module(module_name).has_queue(interface):
            edit_bind(b, "cq", (module_name, interface), (new_name, interface))
            edit_bind(b, "rmq", (module_name, interface))

    # create the new module from the old spec + new MACHINE, STATUS=clone
    new_spec = old.spec.with_attributes(machine=machine, status="clone")
    bus.add_module(new_spec, instance=new_name, machine=machine, status="clone")
    new = obj_cap(bus, new_name)

    # get state from old module, send it to new
    objstate_move(bus, old, new, timeout=timeout)
    # apply binding commands
    rebind(bus, b)
    # start up new module
    chg_obj(bus, new, "add")
    # remove old module
    chg_obj(bus, old, "del")
    return new_name
