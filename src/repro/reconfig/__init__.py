"""Application-level reconfiguration: primitives and scripts (Figure 5).

- :mod:`repro.reconfig.primitives` — the ``mh_*`` reconfiguration API the
  paper's script calls (``obj_cap``, ``struct_ifdest``, ``objstate_move``,
  ``chg_obj``, ...)
- :mod:`repro.reconfig.bindcmds` — batched bind edits (``add``/``del``/
  ``cq``/``rmq``) applied all at once by ``rebind``
- :mod:`repro.reconfig.scripts` — parameterized reconfiguration scripts:
  replacement, move-to-machine, replication, live upgrade
- :mod:`repro.reconfig.coordinator` — orchestration with timing
  measurements and failure handling
"""

from repro.reconfig.bindcmds import BindBatch, BindCommand
from repro.reconfig.primitives import (
    ObjectCapability,
    bind_cap,
    chg_obj,
    edit_bind,
    obj_cap,
    objstate_move,
    rebind,
    struct_ifdest,
    struct_ifsources,
    struct_objnames,
)
from repro.reconfig.coordinator import ReconfigurationCoordinator, ReconfigurationReport
from repro.reconfig.scripts import (
    attach_module,
    detach_module,
    move_module,
    replace_module,
    replicate_module,
    upgrade_module,
)

__all__ = [
    "BindBatch",
    "BindCommand",
    "ObjectCapability",
    "obj_cap",
    "bind_cap",
    "edit_bind",
    "rebind",
    "struct_objnames",
    "struct_ifdest",
    "struct_ifsources",
    "objstate_move",
    "chg_obj",
    "ReconfigurationCoordinator",
    "ReconfigurationReport",
    "replace_module",
    "move_module",
    "replicate_module",
    "upgrade_module",
    "attach_module",
    "detach_module",
]
