"""Migrate-by-recompilation (Theimer & Hayes [10]).

Paper Section 4: "At migration time, a machine-independent migration
program would be generated, compiled, and executed on the target
machine.  The migration program first reconstructs global and heap data,
then rebuilds the activation record stack by executing a sequence of
calls to special procedures ... One of the differences between our work
and [10] is that ... they prepare a migration program for only the
specific migration requested, thus must prepare it at migration time."

:func:`generate_migration_program` performs exactly that per-migration
work: given the module's *original* source and a captured process state,
it generates a standalone program — transformed source plus an embedded
state packet plus a driver — and compiles it.  The output is correct and
runnable (:func:`run_migration_program`), but the generation + compile
cost recurs on *every* migration, whereas :func:`repro.core.prepare_module`
runs once, ahead of time, for *all* possible reconfigurations.
Benchmark D6 measures that difference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.transformer import prepare_module
from repro.runtime.mh import MH, SleepPolicy
from repro.runtime.refs import Ref
from repro.state.machine import MachineProfile

_DRIVER_TEMPLATE = '''

# ---- migration driver (generated at migration time) ----
_MIGRATION_PACKET = {packet!r}


def _run_migration(mh_runtime):
    """Install the shipped state and resume the module thread."""
    mh_runtime.incoming_packet = _MIGRATION_PACKET
    main()
'''


@dataclass
class MigrationProgram:
    """A generated-at-migration-time program plus its preparation cost."""

    source: str
    code: object  # compiled code object
    module_name: str
    generation_seconds: float

    def packet_bytes(self) -> int:
        return len(self.source)


def generate_migration_program(
    original_source: str,
    state_packet: bytes,
    module_name: str = "module",
) -> MigrationProgram:
    """Generate and compile the migration program for ONE migration.

    The per-migration pipeline [10] requires: extract state (already
    given here as ``state_packet``), generate the restore program from
    the source, and compile it for the target.  All three of our steps
    happen at migration time, on the critical path of the move.
    """
    started = time.perf_counter()
    transform = prepare_module(original_source, module_name=module_name)
    source = transform.source + _DRIVER_TEMPLATE.format(packet=state_packet)
    code = compile(source, f"<migration program {module_name}>", "exec")
    elapsed = time.perf_counter() - started
    return MigrationProgram(
        source=source,
        code=code,
        module_name=module_name,
        generation_seconds=elapsed,
    )


def run_migration_program(
    program: MigrationProgram,
    port,
    machine: Optional[MachineProfile] = None,
    extra_globals: Optional[Dict[str, object]] = None,
) -> MH:
    """Execute a migration program on the "target machine".

    ``port`` supplies the module's message plumbing (any object with the
    ModulePort read/write/query protocol).  Returns the clone's MH so the
    caller can inspect the restored module.
    """
    mh = MH(
        module=program.module_name,
        machine=machine,
        status="clone",
        sleep_policy=SleepPolicy(scale=0.0),
    )
    mh.attach_port(port)
    namespace: Dict[str, object] = {"mh": mh, "Ref": Ref}
    if extra_globals:
        namespace.update(extra_globals)
    exec(program.code, namespace)
    namespace["_run_migration"](mh)
    return mh
