"""Procedure-level dynamic update (Frieder & Segal [4]).

Paper Section 4: "A system that supports updates with procedure-level
atomicity is described in [4].  This system is restricted to updating a
program without moving it from the original machine.  The program is
updated by replacing each procedure when it is not executing.  To
maintain consistency between the old version and the new during the
replacement, they perform the update from the bottom up, by allowing a
procedure to be replaced only after all the procedures it invokes have
been replaced. ... when the higher-level procedures have changed, the
update cannot complete until these procedures are inactive.  For
example, when the main procedure has changed, the update cannot complete
until the program terminates."

We implement that system: procedures execute through an indirection
table that tracks per-procedure activity; an updater applies a new
version bottom-up, replacing each changed procedure only when it is
inactive and all its callees are already updated.  Benchmark D4 uses it
to demonstrate exactly the paper's claims — leaf updates complete
quickly, changed-``main`` updates block until termination.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.errors import ReconfigError


class UpdateBlocked(ReconfigError):
    """The update could not complete within the deadline; carries the
    procedures still blocking it."""

    def __init__(self, message: str, blocked: List[str]):
        super().__init__(message)
        self.blocked = blocked


@dataclass
class Procedure:
    """One named, versioned procedure.

    ``body`` receives the :class:`ProcedureTable` first so all intra-
    program calls go through the indirection (that is what makes hot
    replacement possible), then its ordinary arguments.
    """

    name: str
    body: Callable[..., object]
    version: int = 1
    calls: Set[str] = field(default_factory=set)  # static callees


class ProcedureTable:
    """The running program: an indirection table with activity tracking."""

    def __init__(self, procedures: List[Procedure]):
        self._procedures: Dict[str, Procedure] = {}
        self._active: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        for procedure in procedures:
            self._procedures[procedure.name] = procedure
            self._active[procedure.name] = 0
        self._check_callgraph()

    def _check_callgraph(self) -> None:
        for procedure in self._procedures.values():
            unknown = procedure.calls - set(self._procedures)
            if unknown:
                raise ReconfigError(
                    f"procedure {procedure.name!r} declares unknown callees "
                    f"{sorted(unknown)}"
                )

    # -- execution ----------------------------------------------------------

    def call(self, name: str, *args: object) -> object:
        """Invoke a procedure through the table (hot-swappable)."""
        with self._lock:
            procedure = self._procedures[name]
            self._active[name] += 1
        try:
            return procedure.body(self, *args)
        finally:
            with self._idle:
                self._active[name] -= 1
                self._idle.notify_all()

    def version(self, name: str) -> int:
        with self._lock:
            return self._procedures[name].version

    def versions(self) -> Dict[str, int]:
        with self._lock:
            return {name: p.version for name, p in self._procedures.items()}

    def is_active(self, name: str) -> bool:
        with self._lock:
            return self._active[name] > 0

    def callees(self, name: str) -> Set[str]:
        with self._lock:
            return set(self._procedures[name].calls)

    # -- replacement ----------------------------------------------------------

    def try_replace(self, new: Procedure) -> bool:
        """Atomically swap in a new version if the procedure is inactive."""
        with self._lock:
            if self._active[new.name] > 0:
                return False
            self._procedures[new.name] = new
            return True

    def wait_inactive(self, name: str, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._active[name] > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.05))
            return True


class ProcedureUpdater:
    """Applies a set of new procedure versions bottom-up."""

    def __init__(self, table: ProcedureTable):
        self.table = table
        self.log: List[str] = []

    def _update_order(self, new_versions: Dict[str, Procedure]) -> List[str]:
        """Bottom-up order: a procedure follows all its changed callees.

        Cycles (recursion) are updated together — we order members of a
        cycle arbitrarily but replace each only when inactive, which for
        direct recursion means when the whole recursive computation is
        between invocations.
        """
        pending = set(new_versions)
        order: List[str] = []
        while pending:
            progressed = False
            for name in sorted(pending):
                changed_callees = self.table.callees(name) & pending - {name}
                if not changed_callees:
                    order.append(name)
                    pending.remove(name)
                    progressed = True
                    break
            if not progressed:
                # Mutual recursion among the remaining: take them as a group.
                order.extend(sorted(pending))
                pending.clear()
        return order

    def update(
        self, new_versions: Dict[str, Procedure], timeout: float = 5.0
    ) -> List[str]:
        """Replace every changed procedure, bottom-up; returns the order.

        Raises :class:`UpdateBlocked` if some procedure stays active past
        the deadline (the paper's changed-``main`` scenario).
        """
        order = self._update_order(new_versions)
        deadline = time.monotonic() + timeout
        for index, name in enumerate(order):
            new = new_versions[name]
            while True:
                if self.table.try_replace(new):
                    self.log.append(f"replaced {name} -> v{new.version}")
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise UpdateBlocked(
                        f"update stalled: {name!r} never became inactive "
                        f"within {timeout}s (procedures are replaced only "
                        f"when not executing)",
                        blocked=order[index:],
                    )
                self.table.wait_inactive(name, min(remaining, 0.1))
        return order
