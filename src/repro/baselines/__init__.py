"""Comparison systems from the paper's Discussion and related work.

The paper positions its technique against three alternatives, each of
which we implement so the benchmarks can measure the trade-offs the
paper argues qualitatively:

- :mod:`repro.baselines.checkpoint` — periodic checkpoint/rollback
  (Section 4, first paragraph: the approach the paper explicitly does
  *not* take, paying capture cost at every interval)
- :mod:`repro.baselines.procedure_update` — Frieder & Segal [4]:
  procedure-level atomicity, bottom-up replacement of inactive
  procedures, no relocation
- :mod:`repro.baselines.module_atomic` — module-level atomicity
  ([5]/[9], SURGEON): reconfiguration without participation — a module
  cannot be updated while executing, and in-flight state is lost
- :mod:`repro.baselines.migration_program` — Theimer & Hayes [10]:
  migrate-by-recompilation, generating and compiling a migration
  program *at migration time* rather than preparing ahead of time
"""

from repro.baselines.checkpoint import CheckpointStore, CheckpointedLoop
from repro.baselines.module_atomic import module_level_replace, wait_for_quiescence
from repro.baselines.procedure_update import (
    Procedure,
    ProcedureTable,
    ProcedureUpdater,
    UpdateBlocked,
)
from repro.baselines.migration_program import (
    generate_migration_program,
    run_migration_program,
)

__all__ = [
    "CheckpointStore",
    "CheckpointedLoop",
    "module_level_replace",
    "wait_for_quiescence",
    "Procedure",
    "ProcedureTable",
    "ProcedureUpdater",
    "UpdateBlocked",
    "generate_migration_program",
    "run_migration_program",
]
