"""Periodic checkpoint/rollback — the approach the paper does NOT take.

Section 4: "Our approach does not use checkpointing, in which the entire
state of the process is saved periodically, and execution is rolled back
to the most recent checkpoint in order to restore the process. ...  The
cost of capturing the process state is paid only when a reconfiguration
is performed, instead of at regular intervals during execution."

:class:`CheckpointedLoop` makes that trade-off measurable: a stepwise
computation whose full state is serialized into the same canonical
abstract encoding every ``interval`` steps.  On migration, the process
resumes from the most recent checkpoint and *re-executes* the steps
taken since it (``lost_steps``) — work the reconfiguration-point
approach never loses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RestoreError
from repro.state.encoding import decode_any, encode_any
from repro.state.machine import MachineProfile

#: A checkpointable computation: state dict in, state dict out, one step.
StepFn = Callable[[Dict[str, object]], Dict[str, object]]


@dataclass
class CheckpointStore:
    """Holds serialized checkpoints (most recent last)."""

    machine: Optional[MachineProfile] = None
    keep: int = 2
    packets: List[bytes] = field(default_factory=list)
    total_written: int = 0
    total_bytes: int = 0

    def save(self, step: int, state: Dict[str, object]) -> bytes:
        packet = encode_any({"step": step, "state": dict(state)}, self.machine)
        self.packets.append(packet)
        if len(self.packets) > self.keep:
            self.packets.pop(0)
        self.total_written += 1
        self.total_bytes += len(packet)
        return packet

    def latest(self) -> Tuple[int, Dict[str, object]]:
        if not self.packets:
            raise RestoreError("no checkpoint available to roll back to")
        decoded = decode_any(self.packets[-1], self.machine)
        if not isinstance(decoded, dict):
            raise RestoreError("corrupt checkpoint packet")
        return int(decoded["step"]), dict(decoded["state"])  # type: ignore[index,arg-type]


class CheckpointedLoop:
    """A stepwise computation under periodic checkpointing.

    ``interval`` steps between checkpoints trades runtime overhead
    against rollback loss: the two quantities benchmarks D1/D4 sweep.
    """

    def __init__(
        self,
        step_fn: StepFn,
        initial_state: Dict[str, object],
        interval: int,
        machine: Optional[MachineProfile] = None,
    ):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.step_fn = step_fn
        self.state = dict(initial_state)
        self.interval = interval
        self.store = CheckpointStore(machine=machine)
        self.step = 0
        # The initial state is checkpoint zero, as in any rollback scheme.
        self.store.save(self.step, self.state)

    def run(self, steps: int) -> Dict[str, object]:
        """Advance ``steps`` steps, checkpointing every ``interval``."""
        for _ in range(steps):
            self.state = self.step_fn(self.state)
            self.step += 1
            if self.step % self.interval == 0:
                self.store.save(self.step, self.state)
        return self.state

    @property
    def lost_steps(self) -> int:
        """Steps that a migration right now would re-execute."""
        return self.step - self.store.latest()[0]

    def migrate(
        self, target_machine: Optional[MachineProfile] = None
    ) -> "CheckpointedLoop":
        """Restore from the latest checkpoint on a (possibly different)
        machine and re-execute the lost steps to catch up.

        Returns the caught-up clone; ``lost_steps`` of work was redone.
        """
        checkpoint_step, checkpoint_state = self.store.latest()
        clone = CheckpointedLoop(
            self.step_fn,
            checkpoint_state,
            self.interval,
            machine=target_machine or self.store.machine,
        )
        clone.step = checkpoint_step
        replay = self.step - checkpoint_step
        clone.run(replay)
        return clone

    def stats(self) -> Dict[str, int]:
        return {
            "steps": self.step,
            "checkpoints_written": self.store.total_written,
            "checkpoint_bytes": self.store.total_bytes,
        }
