"""Module-level atomicity: reconfiguration without participation ([5], [9]).

Paper Section 4: "If the reconfiguration is atomic at the module level,
it means that modules execute atomically with respect to reconfiguration;
a module cannot be updated while it is executing.  Platforms providing
this level of support are those that reconfigure without module
participation, such as [9]."

Against our bus this means: the platform may rebind and replace a module
only between executions — there is no way to capture mid-execution state,
so a replacement starts the new module *fresh* and any in-progress
computation (and its partial state) is discarded.  The helpers here make
the cost measurable: :func:`wait_for_quiescence` is how long the platform
must wait for a safe moment, and the report of
:func:`module_level_replace` records the work thrown away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bus.bus import SoftwareBus
from repro.bus.spec import ModuleSpec
from repro.errors import ReconfigTimeoutError
from repro.reconfig.coordinator import prepare_rebind_batch
from repro.reconfig.primitives import obj_cap


@dataclass
class ModuleLevelReport:
    """What a participation-free replacement cost."""

    instance: str
    old_machine: str
    new_machine: str
    wait_for_quiescence_s: float = 0.0
    quiescent: bool = False
    discarded_messages: Dict[str, int] = field(default_factory=dict)
    state_carried: bool = False  # always False: that is the point

    def describe(self) -> str:
        mode = "quiescent" if self.quiescent else "forced (state lost)"
        discarded = sum(self.discarded_messages.values())
        return (
            f"module-level replace of {self.instance!r} "
            f"({self.old_machine} -> {self.new_machine}): {mode}, waited "
            f"{self.wait_for_quiescence_s * 1000:.1f}ms, discarded "
            f"{discarded} queued message(s), state carried: no"
        )


def wait_for_quiescence(
    bus: SoftwareBus, instance: str, timeout: float, poll: float = 0.01
) -> bool:
    """Wait until the module looks idle: no queued input on any interface.

    Without participation the platform cannot see inside the module, so
    "idle" is necessarily an external approximation — exactly the
    weakness the paper's module participation removes.
    """
    module = bus.get_module(instance)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(count == 0 for count in module.queued_counts().values()):
            return True
        time.sleep(poll)
    return False


def module_level_replace(
    bus: SoftwareBus,
    instance: str,
    machine: Optional[str] = None,
    new_spec: Optional[ModuleSpec] = None,
    quiescence_timeout: float = 1.0,
    force: bool = True,
) -> ModuleLevelReport:
    """Replace a module with a *fresh* instance, no state carried.

    Waits for quiescence; if the module never quiesces and ``force`` is
    set, the replacement proceeds anyway and in-flight computation is
    lost (with ``force=False`` a non-quiescent module raises, mirroring
    platforms that simply refuse).
    """
    old = obj_cap(bus, instance)
    target_machine = machine or old.machine
    report = ModuleLevelReport(
        instance=instance, old_machine=old.machine, new_machine=target_machine
    )

    started = time.monotonic()
    report.quiescent = wait_for_quiescence(bus, instance, quiescence_timeout)
    report.wait_for_quiescence_s = time.monotonic() - started
    if not report.quiescent and not force:
        raise ReconfigTimeoutError(
            f"{instance!r} never quiesced within {quiescence_timeout}s and "
            f"force is off"
        )

    spec = (new_spec or old.spec).with_attributes(
        machine=target_machine, status="original"
    )
    temp_name = f"{instance}.new"
    bus.add_module(spec, instance=temp_name, machine=target_machine)

    batch = prepare_rebind_batch(bus, old, temp_name)

    # Stop the old module at an arbitrary execution point: whatever it was
    # doing is gone.  Record what was still queued (it is copied by the
    # batch's cq commands, but *in-progress* work has no representation).
    old_module = bus.get_module(instance)
    report.discarded_messages = {
        name: count for name, count in old_module.queued_counts().items() if count
    }
    old_module.stop()

    batch.apply(bus)
    bus.start_module(temp_name)
    bus.remove_module(instance)
    bus.rename_instance(temp_name, instance)
    bus.trace.append(report.describe())
    return report
