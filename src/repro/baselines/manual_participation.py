"""Manual module participation (related work [3], [6] — Conic et al.).

Paper introduction: "Existing dynamic reconfiguration environments
support the application-level reconfiguration activities of adding or
deleting modules and the bindings between them, but these environments
require the programmer to manually adapt a module to participate during
reconfiguration."

This baseline is that manual adaptation, written out for a depth-1
worker (state = two scalars at a single quiescent point — Conic's
``passivate``/``checkpoint`` style).  Two things become measurable:

1. the programmer burden — :func:`participation_line_counts` compares
   the hand-written participation code against the single marker line
   our transformer needs;
2. the feasibility cliff — manual participation is *practical* only for
   flat, single-point modules; the paper's recursive compute module
   would require hand-writing the entire Figure 4, which is exactly what
   the automatic transformation generates.
"""

from __future__ import annotations

from typing import Dict

#: The functional core, before any reconfiguration support.
PLAIN_WORKER = '''\
def main():
    i = 0
    acc = 0.0
    while mh.running:
        value = mh.read1('inp')
        acc = acc + float(value)
        i = i + 1
        mh.write('out', 'F', acc)
'''

#: The same worker adapted BY HAND to participate in reconfiguration:
#: the programmer writes the restore prologue, the capture block, the
#: flag handling and the state format — and must keep all of it
#: consistent with the module's variables forever after.
MANUAL_WORKER = '''\
def main():
    i = 0
    acc = 0.0
    # ---- hand-written restore prologue (cf. Figure 4) ----
    if mh.getstatus() == 'clone' and not mh.restoring:
        mh.decode()
    if mh.restoring:
        _vals = mh.restore('main')
        i = _vals[1]
        acc = _vals[2]
        mh.end_restore()
    # ---- end restore prologue ----
    while mh.running:
        # ---- hand-written capture block ----
        if mh.reconfig:
            mh.begin_reconfig_capture('P')
            mh.capture('main', 'llF', 1, i, acc)
            mh.encode()
            return
        # ---- end capture block ----
        value = mh.read1('inp')
        acc = acc + float(value)
        i = i + 1
        mh.write('out', 'F', acc)
'''

#: What the same module looks like under AUTOMATIC preparation: the
#: functional core plus exactly one marker line.
AUTO_WORKER = '''\
def main():
    i = 0
    acc = 0.0
    while mh.running:
        mh.reconfig_point('P')
        value = mh.read1('inp')
        acc = acc + float(value)
        i = i + 1
        mh.write('out', 'F', acc)
'''


def _count_code_lines(source: str) -> int:
    return sum(
        1
        for line in source.split("\n")
        if line.strip() and not line.strip().startswith("#")
    )


def participation_line_counts() -> Dict[str, int]:
    """Programmer-written lines devoted to participation, per approach."""
    plain = _count_code_lines(PLAIN_WORKER)
    manual = _count_code_lines(MANUAL_WORKER)
    auto = _count_code_lines(AUTO_WORKER)
    return {
        "functional_core": plain,
        "manual_participation_lines": manual - plain,
        "automatic_participation_lines": auto - plain,  # the marker
    }
