"""The software bus: routing, lifecycle, and configuration introspection.

POLYLITH's bus "initiates the execution of each module and establishes
communication channels between modules in the running application",
provides "basic operations for sending and receiving messages, and for
obtaining the current configuration", and (after [9]) the
reconfiguration primitives — adding and deleting modules and bindings,
and moving divulged state between modules.  All of those live here; the
Figure-5-style scripted API wrapping them is :mod:`repro.reconfig`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.bus.machine import HostRegistry
from repro.bus.message import FanoutTransfer, Message
from repro.bus.module import ModuleInstance, ModuleState
from repro.bus.spec import (
    ApplicationSpec,
    BindingSpec,
    Configuration,
    InstanceSpec,
    ModuleSpec,
)
from repro.bus.transport import InprocTransport, Transport
from repro.errors import (
    BindingError,
    BusError,
    InjectedFault,
    ReconfigTimeoutError,
    TransportError,
    UnknownModuleError,
)
from repro.runtime import faults, telemetry
from repro.runtime.mh import SleepPolicy
from repro.state.machine import MachineProfile


class _RouteEntry:
    """Precomputed deliveries for one bound (instance, interface) endpoint.

    Built once per topology change (see ``SoftwareBus._rebuild_routing``),
    so the per-message path is a dict lookup plus direct ``queue.put``
    calls — no binding-list scan, no interface-direction re-checks, and
    no bus lock held during delivery.  ``deliveries`` pairs each
    receiving queue's bound ``put`` with the receiver's machine profile
    (``None`` when the transfer is an identity — same host profile — so
    broadcast can skip the wire round-trip without consulting profiles).
    """

    __slots__ = (
        "sender_profile",
        "deliveries",
        "local_puts",
        "by_dest",
        "peers",
        "plan",
        "_wiring",
    )

    def __init__(self, sender_profile: Optional[MachineProfile]):
        self.sender_profile = sender_profile
        # [(queue.put, receiver_profile | None)]
        self.deliveries: List[Tuple] = []
        # Fast path when every delivery is an identity transfer.
        self.local_puts: Optional[List] = None
        # destination instance -> (queue.put, receiver_profile | None)
        self.by_dest: Dict[str, Tuple] = {}
        # (peer module-or-handle, peer interface) per delivery; consumed
        # by the worker route push at rebuild time.
        self.peers: List[Tuple] = []
        # Grouped fan-out ``(local_puts, xfer_groups, link_groups)`` for
        # entries with at least one non-identity delivery: the message is
        # encoded once, each distinct receiver profile decodes once, and
        # each link gets one coalesced entry per target — see finalize().
        self.plan: Optional[Tuple] = None
        # (destination instance, dest interface, queue | None) per
        # delivery; only consumed by telemetry instrumentation at
        # rebuild time (None for remote deliveries, whose queue depth
        # lives in the remote host's own recorder).
        self._wiring: List[Tuple] = []

    def add(self, peer, peer_if: str) -> None:
        self.peers.append((peer, peer_if))
        remote_put = getattr(peer, "remote_put", None)
        if remote_put is not None:
            # Remote peer: the bound callable encodes with the sender's
            # profile and ships one transport event per message; the
            # receiving host decodes under its own profile, so the
            # delivery is an identity from the fan-out's point of view.
            delivery = (remote_put(peer_if, self.sender_profile), None)
            self.deliveries.append(delivery)
            self.by_dest.setdefault(peer.name, delivery)
            self._wiring.append((peer.name, peer_if, None))
            return
        receiver = peer.host.profile
        sender = self.sender_profile
        if (
            sender is receiver
            or sender is None
            or receiver is None
            or sender.name == receiver.name
        ):
            receiver = None  # identity transfer
        queue = peer.queue(peer_if)
        delivery = (queue.put, receiver)
        self.deliveries.append(delivery)
        self.by_dest.setdefault(peer.name, delivery)
        self._wiring.append((peer.name, peer_if, queue))

    def finalize(self) -> None:
        """Classify the fan-out once so ``route()`` never re-derives it.

        All-identity entries keep the raw ``local_puts`` fast path.
        Anything else compiles a *plan*: local identity puts, transfer
        groups keyed by distinct receiver profile (decode the shared
        wire once per profile), and link groups keyed by transport link
        (ship the shared wire once per link with every ``(instance,
        interface)`` target riding in the same batch entry list — the
        encode-once fan-out across process boundaries).
        """
        # Remote handles report ``profile is None`` too (their encode
        # happens inside the bound callable), so the all-identity fast
        # path must also require that no peer sits behind a link —
        # otherwise an all-remote fan-out would re-encode per delivery
        # instead of sharing one wire per link.
        if all(profile is None for _, profile in self.deliveries) and not any(
            getattr(peer, "link", None) is not None for peer, _ in self.peers
        ):
            self.local_puts = [put for put, _ in self.deliveries]
            return
        locals_: List = []
        xfers: Dict[str, Tuple] = {}
        links: Dict[int, Tuple] = {}
        for (peer, peer_if), (put, profile) in zip(self.peers, self.deliveries):
            link = getattr(peer, "link", None)
            if link is not None:
                group = links.get(id(link))
                if group is None:
                    links[id(link)] = (link, [(peer.name, peer_if)])
                else:
                    group[1].append((peer.name, peer_if))
            elif profile is None:
                locals_.append(put)
            else:
                group = xfers.get(profile.name)
                if group is None:
                    xfers[profile.name] = (profile, [put])
                else:
                    group[1].append(put)
        self.plan = (locals_, list(xfers.values()), list(links.values()))

    def instrument(self, rec, endpoint: str, in_degree, derived) -> None:
        """Recompile this entry's telemetry at rebuild time.

        Called only while a recorder is installed — the *disabled*
        per-message path carries zero added instructions (not even a
        flag test; see docs/telemetry.md).  The *enabled* path no longer
        wraps every delivery in counting closures either:

        - ``bus.delivered`` and ``queue.hwm`` come from the receiving
          queues themselves, whose class swaps to
          ``RecordingMessageQueue`` while recording — the fan-out keeps
          calling raw bound ``put`` methods.
        - ``bus.routed`` is *derived*: when the entry delivers into a
          local queue fed by no other endpoint (``in_degree`` counts
          edges per receiving endpoint), every undirected put on that
          queue is exactly one ``route()`` call here, so the count is
          computed lazily from the queue's cells — ``derived`` collects
          endpoint -> queue for ``SoftwareBus._routed_source``.  Only
          entries with no such queue (pure fan-in receivers, all-remote
          fan-outs) pay for a counting wrapper, on the first delivery
          of the fan-out only.
        - Directed sends re-bind ``by_dest`` to ``put_directed`` so the
          queue tags them out of the routed derivation in-lock; remote
          targets count on the sender's shard (the remote host's own
          queue counts the delivery).

        An unbound endpoint gets a counting stub so silent drops become
        visible.
        """
        # While recording, route via the per-delivery closures so every
        # delivery stays individually countable (same trade as the route
        # push-down, which is also suppressed while telemetry records).
        self.plan = None
        if not self.deliveries:
            def drop(message, _rec=rec, _key=endpoint):
                _rec.count("bus.dropped", key=_key)

            self.local_puts = [drop]
            return
        by_dest: Dict[str, Tuple] = {}
        for (dest, dest_if, queue), (put, profile) in zip(self._wiring, self.deliveries):
            if dest in by_dest:
                continue
            if queue is not None:
                def directed(message, _queue=queue, _rec=rec, _key=endpoint):
                    _rec.count("bus.directed", key=_key)
                    _queue.put_directed(message)

            else:
                def directed(message, _put=put, _rec=rec, _key=endpoint):
                    _rec.count("bus.directed", key=_key)
                    _put(message)

            by_dest[dest] = (directed, profile)
        self.by_dest = by_dest
        for dest, dest_if, queue in self._wiring:
            if queue is not None and in_degree.get((dest, dest_if)) == 1:
                derived[endpoint] = queue
                return
        put0, profile0 = self.deliveries[0]

        def routed(message, _put=put0, _rec=rec, _key=endpoint):
            _rec.count("bus.routed", key=_key)
            _put(message)

        self.deliveries[0] = (routed, profile0)
        if self.local_puts is not None:
            self.local_puts = [put for put, _ in self.deliveries]


class SoftwareBus:
    """An in-process software bus whose modules are threads on simulated hosts.

    ``sleep_scale`` is forwarded to every module's
    :class:`~repro.runtime.mh.SleepPolicy`: examples use 1.0 (the paper's
    wall-clock pacing), tests and benchmarks use 0.0.

    ``workers`` > 0 attaches an owned process worker pool
    (:class:`~repro.bus.procpool.ProcessTransport`), making
    ``placement="worker"`` / ``"worker:<i>"`` available on
    :meth:`add_module`; further transports attach via
    :meth:`attach_transport`.  Modules placed on a transport appear in
    the topology as ordinary instances — bindings, replacement, and
    introspection treat them uniformly through their handles.
    """

    def __init__(
        self,
        sleep_scale: float = 1.0,
        workers: int = 0,
        worker_architecture: str = "modern-64",
    ):
        self.hosts = HostRegistry()
        self.module_specs: Dict[str, ModuleSpec] = {}
        self._instances: Dict[str, ModuleInstance] = {}
        self._bindings: List[BindingSpec] = []
        self._lock = threading.RLock()
        # Copy-on-write routing snapshot: instance -> interface -> entry.
        # ``None`` means "stale, rebuild on next route"; mutators only
        # ever invalidate, so readers never see a half-built table.
        self._routing_table: Optional[Dict[str, Dict[str, _RouteEntry]]] = None
        # Routed-count derivation state (see _prepare_telemetry): the
        # recorder these belong to, frozen totals from earlier routing
        # epochs, and the current endpoint -> (queue, offsets) map.
        self._telemetry_rec: Optional[telemetry.FlightRecorder] = None
        self._routed_base: Dict[str, int] = {}
        self._routed_epoch: Dict[str, Tuple] = {}
        self._sleep_policy = SleepPolicy(scale=sleep_scale)
        self.application_name = ""
        self.trace: List[str] = []  # reconfiguration/audit log
        self._transports: Dict[str, Transport] = {}
        self._owned_transports: List[Transport] = []
        # Health plane (opt-in via enable_health; benchmarks measure the
        # heartbeat cost explicitly rather than paying it by default).
        self._health_monitor = None
        self._health_interval = 0.0
        self._inproc = InprocTransport()
        self._inproc.attach_bus(self)
        self._transports[self._inproc.name] = self._inproc
        if workers:
            from repro.bus.procpool import ProcessTransport

            self.attach_transport(
                ProcessTransport(
                    workers=workers,
                    architecture=worker_architecture,
                    sleep_scale=sleep_scale,
                ),
                owned=True,
            )

    def attach_transport(
        self, transport, name: Optional[str] = None, owned: bool = False
    ):
        """Register a transport under ``name`` (default: its own name).

        ``owned`` transports are closed by :meth:`shutdown`; shared ones
        (one pool serving several buses, as the test suite does) are the
        caller's to close.
        """
        key = name or transport.name
        with self._lock:
            if key in self._transports:
                raise BusError(f"transport {key!r} already attached")
            transport.attach_bus(self)
            self._transports[key] = transport
            if owned:
                self._owned_transports.append(transport)
            monitor = self._health_monitor
        if monitor is not None and hasattr(transport, "enable_health"):
            try:
                transport.enable_health(monitor, self._health_interval)
            except Exception:  # noqa: BLE001 - heartbeats are best-effort
                pass
        return transport

    def transport(self, name: str):
        transport = self._transports.get(name)
        if transport is None:
            raise BusError(f"no transport {name!r} attached")
        return transport

    # ------------------------------------------------------------------
    # Hosts and module specifications
    # ------------------------------------------------------------------

    def add_host(self, name: str, profile: Optional[MachineProfile] = None):
        return self.hosts.add(name, profile)

    def register_module_spec(self, spec: ModuleSpec) -> None:
        self.module_specs[spec.name] = spec

    # ------------------------------------------------------------------
    # Application launch
    # ------------------------------------------------------------------

    def launch(self, config: Configuration, default_host: str = "local") -> None:
        """Instantiate and start an application from a parsed MIL config."""
        config.validate()
        if config.application is None:
            raise BusError("configuration has no application specification")
        for spec in config.modules.values():
            self.register_module_spec(spec)
        self.application_name = config.application.name
        for inst in config.application.instances:
            machine = inst.machine or default_host
            self.hosts.ensure(machine)
            self.add_module(
                config.modules[inst.module],
                instance=inst.instance,
                machine=machine,
                attributes=inst.attributes,
            )
        for binding in config.application.bindings:
            self.add_binding(binding)
        for inst in config.application.instances:
            self.start_module(inst.instance)

    # ------------------------------------------------------------------
    # Reconfiguration primitives: modules (paper [9]: mh_chg_obj)
    # ------------------------------------------------------------------

    def add_module(
        self,
        spec: ModuleSpec,
        instance: Optional[str] = None,
        machine: str = "local",
        status: str = "original",
        state_packet: Optional[bytes] = None,
        start: bool = False,
        attributes: Optional[Dict[str, str]] = None,
        placement: Optional[str] = None,
    ):
        """Create a module instance (the ``add`` half of ``mh_chg_obj``).

        ``attributes`` are per-*instance* attributes (from the
        application spec's instance line); they merge over the module
        spec's attributes and therefore survive replacement, since
        ``obj_cap`` reads the merged spec back.

        ``placement`` selects where the instance executes:
        ``None``/``"inproc"`` is today's thread-in-the-bus-process path;
        ``"<transport>"`` lets the named transport pick a slot
        (round-robin); ``"<transport>:<slot>"`` pins one (e.g.
        ``"worker:0"``, ``"tcp:tcphost-1"``).  A ``placement`` attribute
        on the (merged) spec supplies the default, so MIL instance lines
        can place modules declaratively.
        """
        name = instance or spec.name
        if attributes:
            spec = spec.with_attributes(**attributes)
        if placement is None:
            placement = spec.attributes.get("placement") or None
        if placement in (None, "", "inproc"):
            with self._lock:
                if name in self._instances:
                    raise BusError(f"instance {name!r} already exists")
                host = self.hosts.ensure(machine)
                module = self._inproc.add_module(
                    spec, name, host, status, state_packet, self._sleep_policy
                )
                self._instances[name] = module
                self._invalidate_routing_locked()
            self.trace.append(
                f"add module {name} on {machine} (status={status})"
            )
        else:
            tname, _, slot = placement.partition(":")
            transport = self.transport(tname)
            if transport is self._inproc:
                raise BusError(
                    f"placement {placement!r}: inproc takes no slot"
                )
            with self._lock:
                if name in self._instances:
                    raise BusError(f"instance {name!r} already exists")
            # The placement round-trip runs outside the bus lock: it can
            # block on a worker spawn, and tunneled deliveries from other
            # remote modules must keep routing meanwhile.
            module = transport.add_module(
                spec,
                instance=name,
                status=status,
                state_packet=state_packet,
                slot=slot or None,
            )
            with self._lock:
                if name in self._instances:
                    try:
                        module.discard()
                    except (BusError, TransportError):
                        pass
                    raise BusError(f"instance {name!r} already exists")
                self.hosts.adopt(module.host)
                self._instances[name] = module
                self._invalidate_routing_locked()
            self.trace.append(
                f"add module {name} on {module.host.name} "
                f"via {tname} (status={status})"
            )
        if start:
            self.start_module(name)
        return module

    def start_module(self, instance: str) -> None:
        self.get_module(instance).start()
        self.trace.append(f"start module {instance}")

    def remove_module(self, instance: str, timeout: float = 5.0) -> None:
        """Stop and delete an instance (the ``del`` half of ``mh_chg_obj``)."""
        with self._lock:
            module = self.get_module(instance)
            remaining = [b for b in self._bindings if b.involves(instance)]
        if remaining:
            raise BindingError(
                f"cannot remove {instance!r}: {len(remaining)} binding(s) "
                f"still attached — delete them first"
            )
        module.stop(timeout)
        with self._lock:
            module.state = ModuleState.REMOVED
            del self._instances[instance]
            self._invalidate_routing_locked()
        if getattr(module, "is_remote", False):
            # Free the slot on the remote host; the instance is already
            # unrouted, so late tunneled frames for it fall harmlessly.
            module.discard()
        self.trace.append(f"remove module {instance}")

    def rename_instance(self, old_name: str, new_name: str) -> None:
        """Rename an instance, rewriting every binding that mentions it.

        Used by replacement scripts so the clone takes over the replaced
        module's instance name once the original is gone.
        """
        with self._lock:
            module = self.get_module(old_name)
            if new_name in self._instances:
                raise BusError(f"instance {new_name!r} already exists")
        if getattr(module, "is_remote", False):
            # Round-trip to the remote host outside the bus lock; the
            # handle's name flips with it.
            module.transport.rename(module, new_name)
        with self._lock:
            if self._instances.get(old_name) is not module:
                raise BusError(
                    f"instance {old_name!r} changed during rename"
                )
            del self._instances[old_name]
            if not getattr(module, "is_remote", False):
                module.rename(new_name)
            self._instances[new_name] = module

            def rewrite(binding: BindingSpec) -> BindingSpec:
                return BindingSpec(
                    from_instance=new_name
                    if binding.from_instance == old_name
                    else binding.from_instance,
                    from_interface=binding.from_interface,
                    to_instance=new_name
                    if binding.to_instance == old_name
                    else binding.to_instance,
                    to_interface=binding.to_interface,
                )

            self._bindings = [rewrite(b) for b in self._bindings]
            self._invalidate_routing_locked()
        self.trace.append(f"rename {old_name} -> {new_name}")

    def get_module(self, instance: str) -> ModuleInstance:
        with self._lock:
            try:
                return self._instances[instance]
            except KeyError:
                raise UnknownModuleError(f"no module instance {instance!r}") from None

    def has_module(self, instance: str) -> bool:
        with self._lock:
            return instance in self._instances

    def instances(self) -> List[str]:
        with self._lock:
            return sorted(self._instances)

    # ------------------------------------------------------------------
    # Reconfiguration primitives: bindings
    # ------------------------------------------------------------------

    def add_binding(self, binding: BindingSpec) -> None:
        with self._lock:
            left = self.get_module(binding.from_instance)
            right = self.get_module(binding.to_instance)
            left_decl = left.spec.interface(binding.from_interface)
            right_decl = right.spec.interface(binding.to_interface)
            if not left_decl.compatible_with(right_decl):
                raise BindingError(
                    f"{binding.describe()}: incompatible interfaces "
                    f"({left_decl.describe()} vs {right_decl.describe()})"
                )
            if binding in self._bindings:
                raise BindingError(f"{binding.describe()}: already bound")
            self._bindings.append(binding)
            self._invalidate_routing_locked()
        self.trace.append(binding.describe())

    def remove_binding(self, binding: BindingSpec) -> None:
        with self._lock:
            # A binding is the same link regardless of endpoint order.
            for existing in list(self._bindings):
                if existing == binding or (
                    existing.from_instance == binding.to_instance
                    and existing.from_interface == binding.to_interface
                    and existing.to_instance == binding.from_instance
                    and existing.to_interface == binding.from_interface
                ):
                    self._bindings.remove(existing)
                    self._invalidate_routing_locked()
                    self.trace.append(f"unbind {existing.describe()[5:]}")
                    return
            raise BindingError(f"{binding.describe()}: no such binding")

    def bindings(self) -> List[BindingSpec]:
        with self._lock:
            return list(self._bindings)

    def restore_binding_order(self, order: List[BindingSpec]) -> None:
        """Reorder the binding table to match a prior snapshot.

        Rollback support: undoing a rebind batch re-adds deleted
        bindings at the end of the table, so after a rollback the
        topology is equal as a *set* but not as a *sequence* — and the
        all-or-nothing contract promises a byte-identical configuration
        snapshot.  Bindings absent from ``order`` keep their relative
        order after all known ones.
        """
        with self._lock:
            index = {binding: i for i, binding in enumerate(order)}
            self._bindings.sort(key=lambda b: index.get(b, len(index)))

    def bindings_of(self, instance: str) -> List[BindingSpec]:
        with self._lock:
            return [b for b in self._bindings if b.involves(instance)]

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------

    def _invalidate_routing_locked(self) -> None:
        """Drop the routing snapshot and every host-local route with it.

        Caller holds the bus lock.  The ``clear_routes`` broadcast is an
        event (non-blocking send), so issuing it under the lock is safe;
        per-link FIFO guarantees a remote host stops using its local
        routes before it sees any post-change command — which is what
        makes queue snapshots during a rebind exact.
        """
        self._routing_table = None
        for transport in self._transports.values():
            links = getattr(transport, "links", None)
            if links is None:
                continue
            for link in links():
                link.send_event(["clear_routes"])

    def _push_worker_routes(
        self, table: Dict[str, Dict[str, _RouteEntry]]
    ) -> None:
        """Ship host-local routes to each remote host.

        An endpoint qualifies when *all* its destinations live on the
        sender's own link: the host then delivers those writes directly
        (same-process queue put, no encoding, no bus hop) — the fast
        path that lets pinned producer/consumer pairs scale with cores.
        Skipped entirely while bus-side telemetry records, so the flight
        recorder keeps seeing every delivery.
        """
        routes_by_link: Dict[object, List[List[object]]] = {}
        for name, by_interface in table.items():
            sender = self._instances.get(name)
            link = getattr(sender, "link", None)
            if link is None:
                continue
            for ifname, entry in by_interface.items():
                if not entry.peers:
                    continue
                if all(
                    getattr(peer, "link", None) is link
                    for peer, _ in entry.peers
                ):
                    routes_by_link.setdefault(link, []).append(
                        [
                            name,
                            ifname,
                            [[peer.name, peer_if] for peer, peer_if in entry.peers],
                        ]
                    )
        for transport in self._transports.values():
            links = getattr(transport, "links", None)
            if links is None:
                continue
            for link in links():
                link.send_event(["set_routes", routes_by_link.get(link, [])])

    def _on_transport_write(
        self,
        instance: str,
        interface: str,
        wire: bytes,
        profile: MachineProfile,
    ) -> None:
        """A remotely hosted module wrote on an endpoint without a
        host-local route: decode under the sender host's profile and fan
        out through the ordinary routing table."""
        self.route(instance, interface, Message.from_wire(wire, profile))

    def _on_transport_write_to(
        self,
        instance: str,
        interface: str,
        destination: str,
        wire: bytes,
        profile: MachineProfile,
    ) -> None:
        message = Message.from_wire(wire, profile)
        try:
            self.route_to(instance, interface, destination, message)
        except (BindingError, UnknownModuleError) as exc:
            # Inproc raises into the writer; across a process boundary
            # there is no writer stack to raise into, so the error is
            # recorded instead (the DistributedBus drop semantics).
            self.trace.append(
                f"drop directed {instance}.{interface} -> {destination}: {exc}"
            )
            telemetry.event(
                "bus.directed_drop",
                instance=instance,
                interface=interface,
                destination=destination,
            )

    def _rebuild_routing(self) -> Dict[str, Dict[str, _RouteEntry]]:
        """Build a fresh routing snapshot from the current topology.

        Every declared interface of every instance gets an entry (so a
        bound-or-not lookup is one dict hit); receive-direction checks
        and host-profile comparisons happen here, once per topology
        change, never on the per-message path.  The finished table is
        published atomically; concurrent routes either see the previous
        snapshot or rebuild their own — both are complete tables.
        """
        with self._lock:
            table: Dict[str, Dict[str, _RouteEntry]] = {}
            for name, module in self._instances.items():
                profile = module.host.profile
                table[name] = {
                    decl.name: _RouteEntry(profile)
                    for decl in module.spec.interfaces
                }
            in_degree: Dict[Tuple[str, str], int] = {}
            for binding in self._bindings:
                (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
                for src, src_if, dst, dst_if in (
                    (a_inst, a_if, b_inst, b_if),
                    (b_inst, b_if, a_inst, a_if),
                ):
                    peer = self._instances[dst]
                    if peer.spec.interface(dst_if).direction.can_receive:
                        table[src][src_if].add(peer, dst_if)
                        key = (dst, dst_if)
                        in_degree[key] = in_degree.get(key, 0) + 1
            for by_interface in table.values():
                for entry in by_interface.values():
                    entry.finalize()
            rec = telemetry.recorder
            if rec is not None:
                # Routing-cache miss counter: every rebuild *is* a miss
                # (hits = bus.routed - bus.routing_rebuild).
                rec.count("bus.routing_rebuild")
                self._prepare_telemetry(rec)
                derived: Dict[str, object] = {}
                for name, by_interface in table.items():
                    for ifname, entry in by_interface.items():
                        entry.instrument(rec, f"{name}.{ifname}", in_degree, derived)
                self._freeze_derivation(derived)
                self._sync_remote_recorders()
            else:
                # Only when nothing records bus-side: endpoints whose
                # whole fan-out is host-local bypass the bus entirely.
                self._push_worker_routes(table)
            self._routing_table = table
            return table

    def _prepare_telemetry(self, rec: telemetry.FlightRecorder) -> None:
        """Start (or roll over) the routed-count derivation epoch.

        A fresh recorder starts from zero (the enable() hook reset every
        queue cell) and gets the bus's lazy sources registered; a rebuild
        under the *same* recorder freezes the current derived totals as
        bases first, so endpoints keep their history even when the new
        table maps them to different queues (or to a wrapper).
        """
        if rec is not self._telemetry_rec:
            self._telemetry_rec = rec
            self._routed_base = {}
            self._routed_epoch = {}
            rec.add_source(self._routed_source)
            if any(
                hasattr(t, "telemetry_snapshot")
                for t in self._transports.values()
            ):
                rec.add_source(self._remote_telemetry_source)
        else:
            self._routed_base = self._derived_routed()

    def _freeze_derivation(self, derived: Dict[str, object]) -> None:
        epoch: Dict[str, Tuple] = {}
        for endpoint, queue in derived.items():
            with queue._lock:  # consistent (_pushed, _directed) pair
                epoch[endpoint] = (queue, queue._pushed, queue._directed)
        self._routed_epoch = epoch

    def _derived_routed(self) -> Dict[str, int]:
        """Absolute bus.routed totals per endpoint: bases + live deltas."""
        totals = dict(self._routed_base)
        for endpoint, (queue, pushed0, directed0) in self._routed_epoch.items():
            with queue._lock:
                delta = (queue._pushed - pushed0) - (queue._directed - directed0)
            if delta:
                totals[endpoint] = totals.get(endpoint, 0) + delta
        return totals

    def _routed_source(self):
        """Recorder source: lazily derived ``bus.routed`` counters."""
        with self._lock:
            totals = self._derived_routed()
        return (
            {("bus.routed", ep): total for ep, total in totals.items() if total},
            {},
        )

    def _remote_telemetry_source(self):
        """Recorder source: counters aggregated back from remote hosts.

        Each transport reports absolute totals from its hosts'
        recorders, so worker/TCP placements don't under-count —
        ``bus.delivered`` for a remote module's queue is counted by the
        queue in *that* process and merged here on read.  A dead link
        loses nothing but its own contribution.
        """
        with self._lock:
            transports = [
                t
                for t in self._transports.values()
                if hasattr(t, "telemetry_snapshot")
            ]
        counters: Dict[Tuple[str, Optional[str]], int] = {}
        gauges: Dict[Tuple[str, Optional[str]], float] = {}
        for transport in transports:
            try:
                remote_counters, remote_gauges = transport.telemetry_snapshot()
            except Exception:
                continue
            for k, v in remote_counters.items():
                counters[k] = counters.get(k, 0) + v
            for k, v in remote_gauges.items():
                current = gauges.get(k)
                if current is None or v > current:
                    gauges[k] = v
        return counters, gauges

    def _sync_remote_recorders(self) -> None:
        """Install recorders in remote hosts (idempotent, every rebuild).

        Runs per rebuild rather than once so workers and daemons that
        spawn *after* enable() — lazily-created pool slots, migration
        targets — still record; ``telemetry_enable`` is enable-if-absent
        on the host side.  Failures (dead link, injected transport
        fault) are swallowed: losing remote counters must never break
        routing.
        """
        for transport in list(self._transports.values()):
            enable_remote = getattr(transport, "enable_telemetry", None)
            if enable_remote is None:
                continue
            try:
                enable_remote()
            except Exception:
                continue

    def flush_remote_telemetry(self) -> None:
        """Pull buffered trace records home from every remote host.

        The coordinator calls this at commit and at rollback so the
        merged span tree for a reconfiguration is complete the moment
        ``replace()`` returns; it is a no-op with telemetry disabled and
        best-effort per transport (a dead host has nothing left to say).
        """
        if telemetry.recorder is None:
            return
        with self._lock:
            transports = list(self._transports.values())
        for transport in transports:
            flush = getattr(transport, "flush_telemetry", None)
            if flush is None:
                continue
            try:
                flush()
            except Exception:  # noqa: BLE001 - flush must never break replace()
                continue

    # ------------------------------------------------------------------
    # Health plane
    # ------------------------------------------------------------------

    def enable_health(self, interval: float = 0.2, monitor=None, **thresholds):
        """Start heartbeats from every remote host into a HealthMonitor.

        Opt-in: heartbeats cost a timer thread per host plus one event
        per ``interval``, so benchmarks measure them explicitly instead
        of paying by default.  The monitor is also registered as the
        recorder's health provider, so ``telemetry.snapshot()["health"]``
        (and everything downstream: stats CLI, Prometheus exposition,
        chaos artifacts) carries the live verdicts.  Returns the monitor.
        """
        from repro.runtime.health import HealthMonitor

        if monitor is None:
            monitor = HealthMonitor(interval_hint=float(interval), **thresholds)
        with self._lock:
            self._health_monitor = monitor
            self._health_interval = float(interval)
            transports = list(self._transports.values())
        for transport in transports:
            enable = getattr(transport, "enable_health", None)
            if enable is None:
                continue
            try:
                enable(monitor, float(interval))
            except Exception:  # noqa: BLE001 - a sick host beats later or never
                continue
        rec = telemetry.recorder
        if rec is not None:
            rec.set_health_provider(monitor.snapshot)
        return monitor

    def disable_health(self) -> None:
        with self._lock:
            monitor, self._health_monitor = self._health_monitor, None
            transports = list(self._transports.values())
        if monitor is None:
            return
        for transport in transports:
            disable = getattr(transport, "disable_health", None)
            if disable is None:
                continue
            try:
                disable()
            except Exception:  # noqa: BLE001 - host may already be gone
                continue
        rec = telemetry.recorder
        if rec is not None:
            rec.set_health_provider(None)

    @property
    def health_monitor(self):
        return self._health_monitor

    def health_verdict(self, placement: Optional[str]) -> Optional[str]:
        """Monitor verdict for a placement target, ``None`` when ungated.

        Ungated cases: no monitor enabled, inproc placement (the module
        would share our own process — if we are dead nobody is asking),
        or an unknown transport.  An explicit slot resolves to its exact
        host; a bare transport name (round-robin) reports the *best*
        status across that transport's hosts, since any live slot can
        take the module.
        """
        monitor = self._health_monitor
        if monitor is None or placement is None:
            return None
        name, _, slot = placement.partition(":")
        if name in ("", "inproc"):
            return None
        with self._lock:
            transport = self._transports.get(name)
        if transport is None:
            return None
        peek = getattr(transport, "peek_host", None)
        if peek is not None and slot:
            host = peek(slot)
            if host is not None:
                return monitor.status_of(host)
        links = getattr(transport, "links", None)
        if links is None:
            return None
        statuses = [monitor.status_of(link.name) for link in links()]
        if not statuses:
            return None
        order = ["healthy", "unknown", "degraded", "suspect", "dead"]
        return min(statuses, key=order.index)

    def route(self, instance: str, interface: str, message: Message) -> None:
        """Deliver a message written on (instance, interface).

        Asynchronous: the message is enqueued at every bound peer whose
        interface can receive; cross-host deliveries round-trip through
        the canonical encoding, encoded once per send and decoded once
        per distinct receiver profile.  The hot path is two dict lookups
        against the routing snapshot — no binding scan, and no bus lock
        held while enqueuing at peers.
        """
        table = self._routing_table
        if table is None:
            table = self._rebuild_routing()
        by_interface = table.get(instance)
        if by_interface is None:
            # Stale snapshot or unknown instance: rebuild settles which.
            by_interface = self._rebuild_routing().get(instance)
            if by_interface is None:
                self.get_module(instance)  # raises UnknownModuleError
                return
        entry = by_interface.get(interface)
        if entry is None:
            return  # declared-interface misuse kept as the historical no-op
        local_puts = entry.local_puts
        if local_puts is not None:
            for put in local_puts:
                put(message)
            return
        plan = entry.plan
        if plan is not None:
            # Compiled fan-out: encode once, decode once per distinct
            # receiver profile, ship once per link (the batch entry list
            # carries every same-host target of this wire).
            locals_, xfers, links = plan
            for put in locals_:
                put(message)
            wire = None
            sender = entry.sender_profile
            for profile, puts in xfers:
                if wire is None:
                    wire = message.to_wire(sender)
                decoded = Message.from_wire(wire, profile)
                for put in puts:
                    put(decoded)
            for link, pairs in links:
                if wire is None:
                    wire = message.to_wire(sender)
                link.send_deliver_shared(pairs, wire)
            return
        fanout = FanoutTransfer(message, entry.sender_profile)
        for put, profile in entry.deliveries:
            put(fanout.for_profile(profile))

    def route_to(
        self, instance: str, interface: str, destination: str, message: Message
    ) -> None:
        """Directed delivery: only the named bound peer receives.

        Used for server replies on multi-client bindings.  The
        destination must actually be bound to (instance, interface) —
        an unbound directed send is a programming error, not a silent drop.
        """
        table = self._routing_table
        if table is None:
            table = self._rebuild_routing()
        by_interface = table.get(instance)
        if by_interface is None:
            by_interface = self._rebuild_routing().get(instance, {})
        entry = by_interface.get(interface)
        target = entry.by_dest.get(destination) if entry is not None else None
        if target is None:
            self.get_module(instance)  # unknown senders still raise
            raise BindingError(
                f"directed send from {instance}.{interface} to "
                f"{destination!r}: no such binding"
            )
        put, profile = target
        if profile is None:
            put(message)
        else:
            put(message.transferred(entry.sender_profile, profile))

    # ------------------------------------------------------------------
    # Configuration introspection (paper: "obtaining the current
    # configuration of the application")
    # ------------------------------------------------------------------

    def interface_names(self, instance: str) -> List[str]:
        return self.get_module(instance).spec.interface_names()

    def _bound_peers(
        self, instance: str, interface: str
    ) -> List[Tuple[ModuleInstance, str]]:
        """Resolve the peers bound to (instance, interface).

        Runs entirely under the lock: resolving a peer *after* releasing
        it raced with concurrent ``remove_module`` (the peer could be
        gone by the time it was looked up, turning an introspection call
        into a spurious ``UnknownModuleError``).
        """
        with self._lock:
            result = []
            for binding in self._bindings:
                (a_inst, a_if), (b_inst, b_if) = binding.endpoints()
                if (a_inst, a_if) == (instance, interface):
                    result.append((self._instances[b_inst], b_if))
                elif (b_inst, b_if) == (instance, interface):
                    result.append((self._instances[a_inst], a_if))
            return result

    def destinations_of(self, instance: str, interface: str) -> List[Tuple[str, str]]:
        """Peers reached by messages written on (instance, interface)."""
        return [
            (peer.name, peer_if)
            for peer, peer_if in self._bound_peers(instance, interface)
            if peer.spec.interface(peer_if).direction.can_receive
        ]

    def sources_of(self, instance: str, interface: str) -> List[Tuple[str, str]]:
        """Peers whose writes arrive at (instance, interface)."""
        return [
            (peer.name, peer_if)
            for peer, peer_if in self._bound_peers(instance, interface)
            if peer.spec.interface(peer_if).direction.can_send
        ]

    def snapshot_configuration(self) -> ApplicationSpec:
        """The *current* application specification, reconfigurations included."""
        with self._lock:
            app = ApplicationSpec(name=self.application_name or "current")
            for name, module in sorted(self._instances.items()):
                app.instances.append(
                    InstanceSpec(
                        instance=name,
                        module=module.spec.name,
                        machine=module.host.name,
                    )
                )
            app.bindings = list(self._bindings)
            return app

    # ------------------------------------------------------------------
    # Module participation plumbing (paper [9]: mh_objstate_move)
    # ------------------------------------------------------------------

    def signal_reconfig(self, instance: str) -> None:
        """Deliver the reconfiguration signal (the paper's SIGHUP)."""
        self.get_module(instance).mh.request_reconfig()
        self.trace.append(f"signal reconfig {instance}")

    def objstate_move(
        self, old: str, new: str, timeout: float = 10.0
    ) -> bytes:
        """Signal ``old`` to divulge its state, wait, install it in ``new``.

        The paper: "signals a module to divulge state information on a
        particular interface, then moves that state information to an
        interface of another module."  The divulged packet crosses the
        two hosts' machine profiles like any other message.
        """
        old_module = self.get_module(old)
        new_module = self.get_module(new)
        if new_module.state not in (ModuleState.CREATED, ModuleState.LOADED):
            raise BusError(
                f"objstate_move target {new!r} already started; state must "
                f"be installed before the clone runs"
            )
        self.signal_reconfig(old)
        packet = old_module.wait_divulged(timeout)
        new_module.mh.incoming_packet = packet
        self.trace.append(f"objstate_move {old} -> {new} ({len(packet)} bytes)")
        return packet

    def objstate_stream(self, old: str) -> "StateMoveStream":
        """Pipelined ``objstate_move``: signal now, deliver whenever.

        Returns immediately after the reconfiguration signal, opening the
        wait-for-point window for the caller to spend on useful work —
        building the clone, preparing the rebind batch.  The divulged
        packet is pushed into the clone from the old module's own thread
        the instant it is produced, so the handoff adds no coordinator
        wakeup to the critical path.  Call :meth:`StateMoveStream.wait`
        to close the window.
        """
        old_module = self.get_module(old)
        stream = StateMoveStream(self, old, old_module)
        old_module.mh.set_divulge_callback(stream._on_divulge, stream._on_failure)
        self.signal_reconfig(old)
        return stream

    # ------------------------------------------------------------------
    # Queue transfer (Figure 5's ``cq`` / ``rmq`` bind commands)
    # ------------------------------------------------------------------

    def copy_queue(self, old: str, interface: str, new: str) -> int:
        """Copy messages queued at old's interface to new's same interface."""
        old_module = self.get_module(old)
        new_module = self.get_module(new)
        if not old_module.has_queue(interface):
            return 0
        messages = old_module.queue(interface).snapshot()
        if messages:
            transferred = [
                m.transferred(old_module.host.profile, new_module.host.profile)
                for m in messages
            ]
            new_module.queue(interface).prepend(transferred)
        self.trace.append(f"cq {old}.{interface} -> {new} ({len(messages)} msgs)")
        return len(messages)

    def remove_queue(self, old: str, interface: str) -> int:
        old_module = self.get_module(old)
        if not old_module.has_queue(interface):
            return 0
        queue = old_module.queue(interface)
        # Remote queues expose discard(): drop server-side and return the
        # count instead of shipping every doomed wire back over the link.
        discard = getattr(queue, "discard", None)
        removed = discard() if discard is not None else len(queue.drain())
        self.trace.append(f"rmq {old}.{interface} ({removed} msgs)")
        return removed

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            modules = list(self._instances.values())
            monitor, self._health_monitor = self._health_monitor, None
        if monitor is not None:
            # Hosts are going away with their transports; just stop
            # exporting their (now meaningless) verdicts.
            rec = telemetry.recorder
            if rec is not None:
                rec.set_health_provider(None)
        for module in modules:
            try:
                module.mh.stop()
            except (BusError, TransportError):
                pass  # host already dead: nothing left to stop
        for module in modules:
            try:
                module.join(timeout)
            except (BusError, TransportError):
                pass
        for module in modules:
            if getattr(module, "is_remote", False):
                # Leave shared transports reusable: every handle this bus
                # placed is removed from its remote host.
                try:
                    module.discard()
                except (BusError, TransportError):
                    pass  # host already gone
        with self._lock:
            self._instances.clear()
            self._bindings.clear()
            self._invalidate_routing_locked()
            owned = self._owned_transports
            self._owned_transports = []
            for transport in owned:
                for key, value in list(self._transports.items()):
                    if value is transport:
                        del self._transports[key]
        for transport in owned:
            transport.close()

    def check_health(self) -> None:
        """Raise the first crash found among running modules."""
        with self._lock:
            modules = list(self._instances.values())
        for module in modules:
            module.check_alive()

    def statics_of(self, instance: str) -> Dict[str, object]:
        """A snapshot of an instance's statics, wherever it runs.

        For inproc modules this is a plain dict copy; for remote ones a
        live round-trip to the hosting process.  The convenience for
        tests and benchmarks that read results out of module state.
        """
        return dict(self.get_module(instance).mh.statics)


class StateMoveStream:
    """An in-flight state move whose wait-for-point window is open.

    Created by :meth:`SoftwareBus.objstate_stream` *after* the old module
    has been signalled but (possibly) *before* the receiving clone exists.
    The divulge callback runs on the old module's thread, inside
    ``mh_encode``; if the clone is already attached the packet lands in
    its mail slot right there, otherwise :meth:`attach_target` installs
    it as soon as the clone is named.

    Unlike the one-shot ``objstate_move``, :meth:`wait` does not join the
    old module's thread — its teardown overlaps with rebinding and clone
    start, and ``remove_module`` joins it at the end of the replacement.
    """

    def __init__(self, bus: SoftwareBus, old: str, old_module: ModuleInstance):
        self.bus = bus
        self.old = old
        self._old_module = old_module
        self._target: Optional[ModuleInstance] = None
        self._target_name: Optional[str] = None
        self._packet: Optional[bytes] = None
        self._failure: Optional[BaseException] = None
        self._delivered = threading.Event()
        self._lock = threading.Lock()

    def _on_divulge(self, packet: bytes) -> None:
        # Runs on the old module's thread, inside mh.encode().  A fault
        # here must not raise back into the module (it would crash it
        # unrecoverably): a crash is routed to the failure path, a drop
        # loses the hand-off and the waiter times out.
        try:
            if faults.fire("bus.stream_divulge"):
                telemetry.event("bus.divulge_dropped", instance=self.old)
                return
        except InjectedFault as exc:
            self._on_failure(exc)
            return
        with self._lock:
            self._packet = packet
            if self._target is not None:
                self._target.mh.incoming_packet = packet
        self._delivered.set()
        telemetry.event(
            "bus.stream_divulge", instance=self.old, bytes=len(packet)
        )

    def _on_failure(self, failure: BaseException) -> None:
        # Fast abort: the divulge failed on the module's thread; wake the
        # waiter now instead of letting it burn its full deadline.
        with self._lock:
            self._failure = failure
        self._delivered.set()
        telemetry.event(
            "bus.divulge_failed",
            instance=self.old,
            cause=type(failure).__name__,
        )

    def attach_target(self, new: str) -> None:
        """Name the clone that receives the state.

        The clone may have been built during the wait window, i.e. after
        the signal went out; if the old module has already divulged by
        the time it is attached, the packet is installed here instead of
        in the callback.
        """
        new_module = self.bus.get_module(new)
        if new_module.state not in (ModuleState.CREATED, ModuleState.LOADED):
            raise BusError(
                f"objstate_move target {new!r} already started; state must "
                f"be installed before the clone runs"
            )
        with self._lock:
            self._target = new_module
            self._target_name = new
            if self._packet is not None:
                new_module.mh.incoming_packet = self._packet

    def wait(self, timeout: float = 10.0) -> bytes:
        """Block until the packet has been handed to the clone."""
        if self._target_name is None:
            raise BusError(
                f"objstate_move from {self.old!r} has no target; call "
                f"attach_target() before wait()"
            )
        if not self._delivered.wait(timeout):
            self._old_module.check_alive()
            raise ReconfigTimeoutError(
                f"{self.old}: no reconfiguration point reached within "
                f"{timeout}s"
            )
        if self._failure is not None:
            raise self._failure
        packet = self._packet
        if packet is None:  # pragma: no cover - delivered implies packet
            raise BusError(f"{self.old}: divulged without packet")
        self.bus.trace.append(
            f"objstate_move {self.old} -> {self._target_name} "
            f"({len(packet)} bytes)"
        )
        return packet

    def cancel(self) -> None:
        """Withdraw the move: detach the callback and the signal.

        Abandoning (not merely detaching) the divulge closes the race
        where the module read the reconfig flag just before the
        withdrawal: if its capture completes anyway, the module's own
        thread reclaims the orphaned packet and resumes from it.
        """
        self._old_module.mh.abandon_divulge()
        self._old_module.mh.reconfig = False
