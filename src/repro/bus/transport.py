"""Pluggable transports: *where* a module executes, behind one interface.

POLYLITH's central claim is that composition is independent of where
code actually executes — the bus hides module location behind interface
bindings.  Until this layer existed, our reproduction only partially
honoured that: every module was a thread inside the bus process (GIL
bound), with the TCP machine daemons living off to the side as a
separate, incompatible API.  A :class:`Transport` now answers "where
does this instance run, and how do messages reach it" for three
placements:

``inproc``
    today's path — modules are threads in the bus process, delivery is
    a direct deque put with no encoding (kept allocation-free);
``worker`` (:mod:`repro.bus.procpool`)
    a pool of long-lived worker processes fed over ``multiprocessing``
    pipes, the wire format being the same canonical self-described
    encoding as state packets (the PR 2 compiled codecs);
``tcp``
    the existing machine-daemon processes rehomed behind the same
    interface (:class:`TcpTransport`).

The pieces shared by every out-of-process placement live here:

:class:`Link`
    the bus-side end of a remote host's control/data channel — seq'd
    request/reply with a pump thread, plus fire-and-forget events.
    Events are dispatched from a *separate* thread so a request issued
    while holding the bus lock can always see its reply (the pump never
    blocks on bus internals).
:class:`ModuleHost`
    the remote-side core hosting real :class:`ModuleInstance` threads
    and serving the command protocol; used verbatim by pipe workers and
    by the TCP machine daemon.
:class:`RemoteModuleHandle`
    the bus-side stand-in for a remotely hosted module.  It duck-types
    the slice of :class:`ModuleInstance` the bus, the coordinator, and
    the Figure-5 primitives consume — including a proxy ``mh`` whose
    divulge/restore events are pushed by the remote host, so ``replace()``
    works unchanged when old module and clone live in different
    processes (the state packet simply travels over the transport).

Worker-local fan-out: the bus pushes per-host route tables to each link
(``set_routes``) covering endpoints whose *every* destination lives on
that same host; such writes are delivered host-locally without touching
the bus process at all, which is what lets pinned producer/consumer
pairs scale with cores.  Any topology change broadcasts ``clear_routes``
first (per-link FIFO makes subsequent queue snapshots/drains exact), and
route pushes are suppressed while bus-side telemetry is recording so the
flight recorder keeps seeing every delivery.
"""

from __future__ import annotations

import threading
import time
from queue import SimpleQueue
from typing import Callable, Dict, List, Optional, Tuple

from repro.bus.batch import BatchPolicy, Coalescer, default_policy, unpack_batch
from repro.bus.machine import Host
from repro.bus.message import Message
from repro.bus.module import ModuleInstance, ModuleState, prepared_source_for
from repro.bus.queues import MessageQueue
from repro.bus.spec import ModuleSpec, spec_from_abstract
from repro.errors import (
    BindingError,
    BusError,
    InjectedFault,
    ModuleCrashedError,
    ModuleLifecycleError,
    ReconfigTimeoutError,
    TransportError,
    UnknownInterfaceError,
    UnknownModuleError,
)
from repro.runtime import faults, telemetry
from repro.runtime.faults import FaultPlan, RetryPolicy
from repro.runtime.mh import SleepPolicy
from repro.state.machine import MachineProfile, profile_from_abstract


class Transport:
    """Where a set of module instances executes.

    A transport is attached to one :class:`~repro.bus.bus.SoftwareBus`
    under a name; ``placement="<name>[:slot]"`` on ``add_module`` selects
    it.  ``close`` tears down whatever processes it owns.
    """

    name = "transport"

    def attach_bus(self, bus) -> None:
        self._bus = bus

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InprocTransport(Transport):
    """Today's path: modules are threads in the bus process.

    Delivery stays the direct ``deque.append`` behind a precompiled
    routing entry — attaching other transports adds nothing to this hot
    path (remote deliveries compile into the routing table exactly like
    local ones, as bound callables).
    """

    name = "inproc"

    def __init__(self):
        self._bus = None

    def add_module(
        self,
        spec: ModuleSpec,
        instance: str,
        host: Host,
        status: str,
        state_packet: Optional[bytes],
        sleep_policy: SleepPolicy,
    ) -> ModuleInstance:
        module = ModuleInstance(
            name=instance,
            spec=spec,
            host=host,
            bus=self._bus,
            status=status,
            sleep_policy=sleep_policy,
        )
        if state_packet is not None:
            module.mh.incoming_packet = state_packet
        module.load()
        return module


# ---------------------------------------------------------------------------
# Bus-side link plumbing
# ---------------------------------------------------------------------------


class _Waiter:
    """One pending request awaiting its reply frame."""

    __slots__ = ("event", "kind", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind = ""
        self.value: object = None

    def complete(self, kind: str, value: object) -> None:
        self.kind = kind
        self.value = value
        self.event.set()


#: Tag of the optional trace-context trailer a request frame may carry:
#: ``["tctx", recon_id, parent_span_id, lamport_tick]`` appended after
#: the command's own arguments.  Absence is the backward-compatible
#: default (events never carry one, old senders never append one).
TRACE_CONTEXT_TAG = "tctx"


def strip_trace_context(args: List[object]) -> List[object]:
    """Pop (and adopt) an optional trace-context trailer off request args.

    The receiving host calls this before dispatching a command: if the
    sender piggybacked a ``["tctx", recon, parent_sid, tick]`` trailer,
    spans opened while serving the command — and by module threads it
    wakes — record under that remote parent, and the local Lamport clock
    absorbs the sender's tick.  Without a trailer this is a pure
    pass-through, so hosts speaking the old frame shape are unaffected.
    """
    if args and isinstance(args[-1], (list, tuple)):
        trailer = args[-1]
        if len(trailer) == 4 and trailer[0] == TRACE_CONTEXT_TAG:
            recon = trailer[1]
            telemetry.adopt_trace_context(
                str(recon) if recon is not None else None,
                int(trailer[2]),  # type: ignore[arg-type]
                int(trailer[3]),  # type: ignore[arg-type]
            )
            return list(args[:-1])
    return list(args)


def _wire_safe(value: object) -> object:
    """Clamp a telemetry record value to canonically encodable types."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, dict):
        return {str(k): _wire_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_wire_safe(v) for v in value]
    return repr(value)


def _error_from(link_name: str, message: str) -> BusError:
    """Rehydrate a remote ``err`` reply into a useful exception type."""
    if "ReconfigTimeoutError" in message:
        return ReconfigTimeoutError(message)
    if "UnknownModuleError" in message:
        return UnknownModuleError(f"{link_name}: {message}")
    if "TransportError" in message or message == "link closed":
        return TransportError(f"{link_name}: {message}")
    return BusError(f"{link_name}: {message}")


class Link:
    """Bus-side end of one remote module host's channel.

    The frame protocol is the machine-daemon one: ``[kind, seq,
    command, args...]`` with ``kind`` in ``req``/``rep``/``err``/``evt``.
    The *pump* thread only ever completes request waiters and enqueues
    events; events are handled on a dedicated dispatcher thread.  That
    split is load-bearing: the rebind batch issues queue-transfer
    requests while holding the bus lock, and an event handler may block
    on that same lock (tunneled writes route through the bus) — with a
    single thread the reply behind a blocked event could never be read.

    ``retry`` enables the lossy-channel request policy (used over TCP,
    where the chaos suite drops frames); pipes are loss-free and run
    single-attempt.

    Deliveries do not ship frame-per-message: :meth:`send_deliver` hands
    the encoded wire to a per-link :class:`~repro.bus.batch.Coalescer`
    whose flusher drains opportunistically, so a busy link ships many
    messages per ``deliver_batch`` frame.  Per-link FIFO survives
    because every *other* frame (requests, non-delivery events) drains
    the pending batch under the send lock before going out.
    """

    def __init__(
        self,
        name: str,
        profile: MachineProfile,
        channel,
        on_event: Optional[Callable[[str, List[object]], None]] = None,
        retry: Optional[RetryPolicy] = None,
        batch: object = "default",
    ):
        self.name = name
        self.profile = profile
        self.channel = channel
        self.on_event = on_event
        self.retry = retry
        self.closed = threading.Event()
        self._seq = 0
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _Waiter] = {}
        self._events: SimpleQueue = SimpleQueue()
        self._send_failing = False
        policy = default_policy() if batch == "default" else batch
        self.batch_policy: Optional[BatchPolicy] = policy  # type: ignore[assignment]
        if policy is not None:
            self._coalescer: Optional[Coalescer] = Coalescer(
                name,
                "deliver_batch",
                ship=self._ship_event,
                send_lock=self._send_lock,
                policy=policy,  # type: ignore[arg-type]
                notify_drop=self._note_send_failed,
                notify_ok=self._note_send_ok,
            )
        else:
            self._coalescer = None
        self._pump = threading.Thread(
            target=self._read_loop, name=f"link-pump-{name}", daemon=True
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"link-evt-{name}", daemon=True
        )
        self._pump.start()
        self._dispatcher.start()

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    frame = self.channel.recv()
                except InjectedFault:
                    continue  # injected receive fault: frame lost; requests retry
                kind = frame[0]
                if kind in ("rep", "err"):
                    seq = int(frame[1])
                    with self._lock:
                        waiter = self._pending.pop(seq, None)
                    if waiter is not None:
                        waiter.complete(str(kind), frame[2])
                elif kind == "evt":
                    self._events.put((str(frame[2]), frame[3:]))
        except (TransportError, OSError, EOFError):
            pass
        finally:
            self.closed.set()
            if self._coalescer is not None:
                self._coalescer.close()
            with self._lock:
                pending = list(self._pending.values())
                self._pending.clear()
            for waiter in pending:
                waiter.complete("err", "link closed")
            self._events.put(None)

    def _dispatch_loop(self) -> None:
        while True:
            item = self._events.get()
            if item is None:
                return
            handler = self.on_event
            if handler is None:
                continue
            try:
                handler(item[0], list(item[1]))
            except Exception:  # noqa: BLE001 - a bad event must not kill the link
                pass

    def _ship_event(self, command: List[object]) -> None:
        """Raw event send — caller (coalescer flusher) holds the send lock."""
        self.channel.send(["evt", 0] + list(command))

    def _note_send_ok(self) -> None:
        if self._send_failing:
            self._send_failing = False

    def _note_send_failed(self, dropped: int, exc: BaseException) -> None:
        """Mark the link's send side as failing — one event per streak.

        Chaos-injected faults are deliberate single-frame losses, not an
        outage; they are counted (``link.events_dropped``) but do not
        raise the ``link.send_failed`` flare.
        """
        if isinstance(exc, InjectedFault):
            return
        if not self._send_failing:
            self._send_failing = True
            telemetry.event(
                "link.send_failed",
                host=self.name,
                error=f"{type(exc).__name__}: {exc}",
                dropped=int(dropped),
            )

    def send_event(self, command: List[object]) -> None:
        """Fire-and-forget frame (non-delivery events: route pushes, packets).

        Acts as a FIFO barrier: any coalesced deliveries pending on this
        link ship first, under the same send-lock hold, so the event is
        ordered behind every delivery appended before this call.  Failed
        sends are counted (``link.events_dropped``) instead of silently
        vanishing, and the first failure of a streak emits a
        ``link.send_failed`` event.
        """
        try:
            with self._send_lock:
                if self._coalescer is not None:
                    self._coalescer.drain_locked()
                self.channel.send(["evt", 0] + list(command))
        except (InjectedFault, TransportError, OSError) as exc:
            # A lost event is a lost frame; the host notices via FIFO
            # gaps — but the loss itself is now observable.
            rec = telemetry.recorder
            if rec is not None:
                rec.count("link.events_dropped", key=self.name)
            self._note_send_failed(1, exc)
        else:
            self._note_send_ok()

    def send_deliver(self, instance: str, interface: str, wire: bytes) -> None:
        """Queue one encoded message for coalesced delivery (hot path)."""
        coalescer = self._coalescer
        if coalescer is not None:
            coalescer.append(instance, interface, "", wire)
        else:
            self.send_event(["deliver", instance, interface, wire])

    def send_deliver_shared(self, pairs, wire: bytes) -> None:
        """Deliver one encoded wire to many ``(instance, interface)`` targets.

        The encode-once fan-out: the wire is embedded in the batch blob a
        single time and every entry references it by index.
        """
        coalescer = self._coalescer
        if coalescer is not None:
            coalescer.append_shared(
                [(instance, interface, "") for instance, interface in pairs], wire
            )
        else:
            for instance, interface in pairs:
                self.send_event(["deliver", instance, interface, wire])

    def request(self, command: List[object], timeout: float = 30.0) -> object:
        """Round-trip one request frame.

        With a retry policy, lost frames are retried with fresh sequence
        numbers (the daemon-link semantics: ``err`` replies never retry,
        re-executed commands must be idempotent).  Without one — pipes —
        a single attempt either answers or raises ``TransportError``.
        """
        attempts = self.retry.attempts if self.retry is not None else 1
        delays = self.retry.delays() if self.retry is not None else []
        failure: Optional[Exception] = None
        payload = list(command)
        tctx = telemetry.trace_context()
        if tctx is not None:
            payload.append([TRACE_CONTEXT_TAG, tctx[0], tctx[1], tctx[2]])
        for attempt in range(attempts):
            if self.closed.is_set():
                raise TransportError(f"link {self.name}: closed")
            waiter = _Waiter()
            with self._lock:
                self._seq += 1
                seq = self._seq
                self._pending[seq] = waiter
            try:
                with self._send_lock:
                    # FIFO barrier: requests (queue snapshots, drains,
                    # transfers) must observe every delivery appended
                    # before them, so pending batches ship first.
                    if self._coalescer is not None:
                        self._coalescer.drain_locked()
                    self.channel.send(["req", seq] + payload)
            except InjectedFault as exc:
                with self._lock:
                    self._pending.pop(seq, None)
                failure = exc
            except (TransportError, OSError) as exc:
                with self._lock:
                    self._pending.pop(seq, None)
                raise TransportError(
                    f"link {self.name}: send failed: {exc}"
                ) from exc
            else:
                if waiter.event.wait(timeout):
                    if waiter.kind == "err":
                        raise _error_from(self.name, str(waiter.value))
                    return waiter.value
                with self._lock:
                    self._pending.pop(seq, None)
                failure = TransportError(
                    f"link {self.name}: no reply to {command[0]!r} in {timeout}s"
                )
            if attempt < len(delays):
                time.sleep(delays[attempt])
        assert failure is not None
        raise failure

    def close(self) -> None:
        if self._coalescer is not None:
            self._coalescer.close()
        try:
            self.channel.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Remote-side core (shared by pipe workers and TCP machine daemons)
# ---------------------------------------------------------------------------


class _HostBusShim:
    """What remotely hosted ModuleInstances see as 'the bus'.

    Writes on endpoints with a pushed host-local route are delivered
    directly into the destination queue — same-process identity, no
    encoding, no bus involvement (this is the multi-core fast path).
    Everything else tunnels to the bus as a canonical ``write`` event.
    """

    __slots__ = ("core",)

    def __init__(self, core: "ModuleHost"):
        self.core = core

    def route(self, instance: str, interface: str, message: Message) -> None:
        core = self.core
        entry = core.routes.get((instance, interface))
        if entry is None:
            core.tunnel_write(instance, interface, message.to_wire(core.profile))
            return
        modules = core.modules
        for dest, dest_if in entry:
            module = modules.get(dest)
            if module is not None:
                module.queue(dest_if).put(message)

    def route_to(
        self, instance: str, interface: str, destination: str, message: Message
    ) -> None:
        core = self.core
        entry = core.routes.get((instance, interface))
        if entry is None:
            core.tunnel_write_to(
                instance, interface, destination, message.to_wire(core.profile)
            )
            return
        for dest, dest_if in entry:
            if dest == destination:
                module = core.modules.get(dest)
                if module is not None:
                    module.queue(dest_if).put(message)
                return
        raise BindingError(
            f"directed send from {instance}.{interface} to "
            f"{destination!r}: no such binding"
        )


class ModuleHost:
    """Hosts real module threads inside a remote process.

    One instance per worker process / machine daemon.  The surrounding
    serve loop feeds frames in; :meth:`handle` executes commands; pushes
    back to the bus go through the injected ``send_event`` callable.
    Lifecycle, divulge, and restore transitions are *pushed* as events,
    so the bus-side handles mirror them without polling.

    Tunneled writes (no host-local route) coalesce into ``write_batch``
    frames through a lazily created :class:`~repro.bus.batch.Coalescer`;
    every *other* outbound event drains that tunnel first so divulge,
    lifecycle, and heartbeat events stay FIFO-ordered behind the writes
    that preceded them.
    """

    def __init__(
        self,
        machine_name: str,
        host: Host,
        sleep_policy: SleepPolicy,
        send_event: Callable[[List[object]], None],
    ):
        self.machine_name = machine_name
        self.host = host
        self.profile = host.profile
        self.sleep_policy = sleep_policy
        self._raw_send_event = send_event
        self._send_gate = threading.Lock()
        self._tunnel: Optional[Coalescer] = None
        self._tunnel_lock = threading.Lock()
        self._batch_policy = default_policy()
        self.modules: Dict[str, ModuleInstance] = {}
        # Guards modules-dict mutations against concurrent deliveries
        # (events run inline in the serve loop while commands like swap
        # run on their own threads).
        self.modules_lock = threading.Lock()
        # (instance, interface) -> ((dest, dest_if), ...) for endpoints
        # whose whole fan-out lives on this host.  Replaced atomically.
        self.routes: Dict[Tuple[str, str], Tuple] = {}
        self.shim = _HostBusShim(self)
        #: instance -> monotonic time of the last delivery served through
        #: this host (host-local fast-path writes bypass it; the
        #: heartbeat reports the age as "last delivery the bus caused").
        self._last_delivery: Dict[str, float] = {}
        self._hb_lock = threading.Lock()
        self._hb_interval = 0.0
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None

    # -- plumbing ----------------------------------------------------------

    def handle(self, command: str, args: List[object]) -> object:
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise BusError(f"host {self.machine_name}: unknown command {command!r}")
        return handler(*strip_trace_context(args))

    def send_event(self, command: List[object]) -> None:
        """Push one event to the bus, FIFO-ordered behind tunneled writes.

        When the write tunnel has coalesced frames pending, they ship
        first under the same send-gate hold — a ``divulged`` event must
        never overtake the writes the module issued before divulging.
        """
        tunnel = self._tunnel
        if tunnel is None:
            self._raw_send_event(command)
            return
        with self._send_gate:
            tunnel.drain_locked()
            self._raw_send_event(command)

    def _tunnel_coalescer(self) -> Optional[Coalescer]:
        tunnel = self._tunnel
        if tunnel is None and self._batch_policy is not None:
            with self._tunnel_lock:
                tunnel = self._tunnel
                if tunnel is None:
                    tunnel = Coalescer(
                        self.machine_name,
                        "write_batch",
                        ship=self._raw_send_event,
                        send_lock=self._send_gate,
                        policy=self._batch_policy,
                    )
                    self._tunnel = tunnel
        return tunnel

    def tunnel_write(self, instance: str, interface: str, wire: bytes) -> None:
        """Coalesce one bus-bound write (the no-host-local-route path)."""
        tunnel = self._tunnel_coalescer()
        if tunnel is not None:
            tunnel.append(instance, interface, "", wire)
        else:
            self.send_event(["write", instance, interface, wire])

    def tunnel_write_to(
        self, instance: str, interface: str, destination: str, wire: bytes
    ) -> None:
        tunnel = self._tunnel_coalescer()
        if tunnel is not None:
            tunnel.append(instance, interface, destination, wire)
        else:
            self.send_event(["write_to", instance, interface, destination, wire])

    def stop_all(self) -> None:
        """Serve-loop teardown: ask every hosted module thread to exit."""
        with self._hb_lock:
            if self._hb_stop is not None:
                self._hb_stop.set()
        with self.modules_lock:
            modules = list(self.modules.values())
        for module in modules:
            module.mh.stop()
        tunnel = self._tunnel
        if tunnel is not None:
            # Flush what the modules wrote before their threads exited,
            # then stop accepting appends.
            with self._send_gate:
                tunnel.drain_locked()
            tunnel.close()

    def _module(self, instance) -> ModuleInstance:
        try:
            return self.modules[str(instance)]
        except KeyError:
            raise UnknownModuleError(
                f"host {self.machine_name}: no instance {instance!r}"
            ) from None

    def _arm(self, module: ModuleInstance) -> None:
        """Point the module's divulge at the bus (push, don't poll)."""
        module.mh.set_divulge_callback(
            lambda packet, m=module: self.send_event(["divulged", m.name, packet]),
            lambda failure, m=module: self.send_event(
                ["divulge_failed", m.name, f"{type(failure).__name__}: {failure}"]
            ),
        )

    def _watch(self, module: ModuleInstance) -> None:
        module.lifecycle_hook = self._push_lifecycle
        module.mh.on_restored = lambda m=module: self.send_event(
            ["restored", m.name]
        )

    def _push_lifecycle(self, module: ModuleInstance) -> None:
        crash = module.crash
        self.send_event(
            [
                "lifecycle",
                module.name,
                module.state.value,
                repr(crash) if crash is not None else "",
            ]
        )

    # -- module lifecycle commands -----------------------------------------

    def _cmd_add(self, instance, spec_raw, status, packet) -> bool:
        spec = spec_from_abstract(dict(spec_raw))
        module = ModuleInstance(
            name=str(instance),
            spec=spec,
            host=self.host,
            bus=self.shim,
            status=str(status),
            sleep_policy=self.sleep_policy,
        )
        if packet is not None:
            module.mh.incoming_packet = bytes(packet)
        module.load()
        self._watch(module)
        with self.modules_lock:
            if str(instance) in self.modules:
                raise BusError(
                    f"host {self.machine_name}: instance {instance!r} "
                    f"already present"
                )
            self.modules[str(instance)] = module
        return True

    def _cmd_swap(self, instance, temp) -> bool:
        """Atomically let the clone ``temp`` take over ``instance``.

        Used for same-host replacement: the old module's queued messages
        move to the front of the clone's queues, and the name mapping
        flips in one step, so no delivery lands in a gap.
        """
        with self.modules_lock:
            old = self.modules.pop(str(instance))
            clone = self.modules.pop(str(temp))
            for decl in old.spec.interfaces:
                if old.has_queue(decl.name) and clone.has_queue(decl.name):
                    clone.queue(decl.name).prepend(old.queue(decl.name).drain())
            clone.rename(str(instance))
            self.modules[str(instance)] = clone
        # The clone's deliveries were tracked under its temp name; fold
        # them into the surviving name so heartbeat ages stay truthful.
        stamp = self._last_delivery.pop(str(temp), None)
        if stamp is not None:
            self._last_delivery[str(instance)] = stamp
        old.stop()
        return True

    def _cmd_start(self, instance) -> bool:
        self._module(instance).start()
        return True

    def _cmd_signal(self, instance) -> bool:
        module = self._module(instance)
        self._arm(module)
        module.mh.request_reconfig()
        return True

    def _cmd_wait_divulged(self, instance, timeout) -> bytes:
        return self._module(instance).wait_divulged(float(timeout))

    def _cmd_stop(self, instance) -> str:
        module = self._module(instance)
        module.stop()
        return module.state.value

    def _cmd_remove(self, instance) -> bool:
        with self.modules_lock:
            module = self.modules.pop(str(instance))
        # Withdrawn/migrated modules must not leak delivery stamps (or
        # report stale ages if the name is ever reused).
        self._last_delivery.pop(str(instance), None)
        module.stop()
        module.state = ModuleState.REMOVED
        return True

    def _cmd_rename(self, old_name, new_name) -> bool:
        with self.modules_lock:
            module = self.modules.pop(str(old_name))
            module.rename(str(new_name))
            self.modules[str(new_name)] = module
        stamp = self._last_delivery.pop(str(old_name), None)
        if stamp is not None:
            self._last_delivery[str(new_name)] = stamp
        return True

    def _cmd_revive(self, instance, packet) -> str:
        module = self._module(instance)
        module.revive(bytes(packet))
        # revive() reset the divulge machinery; future captures must
        # push to the bus again.
        self._arm(module)
        return module.state.value

    # -- state move commands -----------------------------------------------

    def _cmd_install_packet(self, instance, packet) -> bool:
        self._module(instance).mh.incoming_packet = bytes(packet)
        return True

    def _cmd_abandon(self, instance) -> bool:
        self._module(instance).mh.abandon_divulge()
        return True

    def _cmd_clear_reconfig(self, instance) -> bool:
        self._module(instance).mh.reconfig = False
        return True

    # -- message delivery and queue transfer ---------------------------------

    def _cmd_deliver(self, instance, interface, wire) -> bool:
        # The span is sampled like any per-message span at steady state,
        # but inside a replace window the adopted trace context makes it
        # a recorded child of the bus-side span that caused the write —
        # so merged trees show the remote hop of every delivery.
        with telemetry.span(
            "host.deliver", instance=str(instance), interface=str(interface)
        ):
            message = Message.from_wire(bytes(wire), self.profile)
            with self.modules_lock:
                module = self._module(instance)
                module.deliver(str(interface), message)
        self._last_delivery[str(instance)] = time.monotonic()
        return True

    def _cmd_deliver_batch(self, blob) -> bool:
        """Deliver a coalesced batch: one lock acquire, one telemetry span.

        Each distinct wire decodes once; when it fans out to several
        modules the same :class:`Message` object is shared — delivered
        messages are treated as immutable (see ``FanoutTransfer``), so
        same-host sharing is safe.  Modules withdrawn between flush and
        dispatch are skipped and counted, not raised: a batch is a run
        of fire-and-forget deliveries, and a miss on one entry must not
        discard the rest.
        """
        wires, entries = unpack_batch(bytes(blob))
        profile = self.profile
        with telemetry.span(
            "host.deliver_batch", n=len(entries), wires=len(wires)
        ):
            # Decode and bucket outside the modules lock: one frame often
            # names the same few queues over and over (a fan-out repeats
            # its receiver set per group), so deliveries collapse to one
            # ``put_many`` — one queue-lock acquire — per distinct queue.
            # Per-queue FIFO holds (buckets keep entry order); cross-queue
            # order within one batch is not observable, since any snapshot
            # or transfer rides a request ordered behind the whole frame.
            decoded: List[Optional[Message]] = [None] * len(wires)
            buckets: Dict[Tuple[str, str], List[Message]] = {}
            for instance, interface, _unused, widx in entries:
                message = decoded[widx]
                if message is None:
                    message = Message.from_wire(wires[widx], profile)
                    decoded[widx] = message
                key = (instance, interface)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [message]
                else:
                    bucket.append(message)
            missed = 0
            touched = []
            with self.modules_lock:
                modules = self.modules
                for (instance, interface), run in buckets.items():
                    module = modules.get(instance)
                    if module is None:
                        missed += len(run)
                        continue
                    try:
                        module.queue(interface).put_many(run)
                    except BusError:  # no such queue, or closed mid-swap
                        missed += len(run)
                        continue
                    touched.append(instance)
        now = time.monotonic()
        for instance in touched:
            self._last_delivery[instance] = now
        if missed:
            rec = telemetry.recorder
            if rec is not None:
                rec.count("host.deliver_miss", n=missed, key=self.machine_name)
        return True

    def _cmd_deliver_front(self, instance, interface, wires) -> bool:
        """Prepend a batch of (older) messages — the ``cq`` transfer."""
        messages = [Message.from_wire(bytes(w), self.profile) for w in wires]
        with self.modules_lock:
            self._module(instance).queue(str(interface)).prepend(messages)
        self._last_delivery[str(instance)] = time.monotonic()
        return True

    def _cmd_counts(self, instance) -> Dict[str, int]:
        return self._module(instance).queued_counts()

    def _cmd_snapshot_queue(self, instance, interface) -> List[bytes]:
        messages = self._module(instance).queue(str(interface)).snapshot()
        return [m.to_wire(self.profile) for m in messages]

    def _cmd_drain_queue(self, instance, interface) -> List[bytes]:
        messages = self._module(instance).queue(str(interface)).drain()
        return [m.to_wire(self.profile) for m in messages]

    def _cmd_discard_queue(self, instance, interface) -> int:
        """Drain and *discard* — returns only the count.

        ``remove_queue`` on a remote module only needs how many messages
        died with the queue; shipping every wire back just to count them
        (the old ``drain_queue`` round-trip) wastes the whole batch win.
        """
        return len(self._module(instance).queue(str(interface)).drain())

    def _cmd_drain_queues(self, instance) -> Dict[str, List[bytes]]:
        module = self._module(instance)
        result: Dict[str, List[bytes]] = {}
        for decl in module.spec.interfaces:
            if module.has_queue(decl.name):
                drained = module.queue(decl.name).drain()
                result[decl.name] = [m.to_wire(self.profile) for m in drained]
        return result

    # -- host-local routing ---------------------------------------------------

    def _cmd_set_routes(self, routes_raw) -> bool:
        table: Dict[Tuple[str, str], Tuple] = {}
        for entry in routes_raw:
            instance, interface, pairs = entry[0], entry[1], entry[2]
            table[(str(instance), str(interface))] = tuple(
                (str(dest), str(dest_if)) for dest, dest_if in pairs
            )
        self.routes = table
        return True

    def _cmd_clear_routes(self) -> bool:
        self.routes = {}
        return True

    # -- introspection ---------------------------------------------------------

    def _cmd_statics(self, instance) -> Dict[str, object]:
        # Test/debug introspection: only canonical-encodable statics travel.
        statics = self._module(instance).mh.statics
        return {k: v for k, v in statics.items()}

    def _cmd_state(self, instance) -> str:
        return self._module(instance).state.value

    def _cmd_crash_info(self, instance) -> str:
        crash = self._module(instance).crash
        return repr(crash) if crash is not None else ""

    def _cmd_ping(self) -> str:
        return self.machine_name

    # -- chaos / telemetry parity across the boundary --------------------------

    def _cmd_install_faults(self, plan_raw) -> bool:
        faults.uninstall()  # retried installs must not trip the nesting guard
        faults.install(FaultPlan.from_abstract(dict(plan_raw)))
        return True

    def _cmd_clear_faults(self) -> bool:
        faults.uninstall()
        return True

    def _cmd_telemetry_enable(self) -> bool:
        if telemetry.recorder is None:
            telemetry.enable()
        return True

    def _cmd_telemetry_disable(self) -> bool:
        if telemetry.recorder is not None:
            telemetry.disable()
        return True

    def _cmd_telemetry_counters(self) -> Dict[str, int]:
        rec = telemetry.recorder
        if rec is None:
            return {}
        return {
            f"{name}|{key or ''}": int(value)
            for (name, key), value in rec.counters().items()
        }

    def _cmd_telemetry_snapshot(self) -> Dict[str, object]:
        """Counters, gauges, and buffered trace records, wire-keyed.

        Counters/gauges are absolute totals — the bus-side aggregation
        source re-reads them on every merge, so repeated reads are
        idempotent.  ``records`` is different: the host's span/event
        ring is *drained* (shipped exactly once) so the bus recorder can
        merge remote halves of replace trees — see
        ``FlightRecorder.ingest_remote``.
        """
        rec = telemetry.recorder
        if rec is None:
            return {"counters": {}, "gauges": {}, "records": []}
        return {
            "counters": {
                f"{name}|{key or ''}": int(value)
                for (name, key), value in rec.counters().items()
            },
            "gauges": {
                f"{name}|{key or ''}": float(value)
                for (name, key), value in rec.gauges().items()
            },
            "records": [_wire_safe(record) for record in rec.drain_records()],
        }

    def _cmd_clear_trace_context(self) -> bool:
        """Drop the adopted ambient root (sent at commit/rollback)."""
        telemetry.clear_trace_context()
        return True

    # -- health plane -----------------------------------------------------------

    def _cmd_health_enable(self, interval) -> bool:
        """Start (or retune) the periodic heartbeat publisher."""
        with self._hb_lock:
            self._hb_interval = max(0.005, float(interval))
            if self._hb_thread is None or not self._hb_thread.is_alive():
                self._hb_stop = threading.Event()
                self._hb_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    args=(self._hb_stop,),
                    name=f"heartbeat-{self.machine_name}",
                    daemon=True,
                )
                self._hb_thread.start()
        return True

    def _cmd_health_disable(self) -> bool:
        with self._hb_lock:
            if self._hb_stop is not None:
                self._hb_stop.set()
            self._hb_thread = None
            self._hb_stop = None
        return True

    def _heartbeat_loop(self, stop: threading.Event) -> None:
        seq = 0
        while not stop.wait(self._hb_interval):
            seq += 1
            try:
                self.send_event(
                    ["heartbeat", self.machine_name, seq, self._health_payload()]
                )
            except Exception:  # noqa: BLE001 - a sick link must not kill the beat
                pass

    def _health_payload(self) -> Dict[str, object]:
        """Per-module liveness detail riding on each heartbeat."""
        now = time.monotonic()
        with self.modules_lock:
            items = list(self.modules.items())
        modules: Dict[str, object] = {}
        for name, module in items:
            try:
                counts = module.queued_counts()
                hwm = 0
                for decl in module.spec.interfaces:
                    if module.has_queue(decl.name):
                        cell = getattr(module.queue(decl.name), "_hwm", 0)
                        if cell > hwm:
                            hwm = int(cell)
                last = self._last_delivery.get(name)
                mh = module.mh
                modules[name] = {
                    "state": module.state.value,
                    "queued": int(sum(counts.values())),
                    "queue_hwm": hwm,
                    "divulging": bool(mh.reconfig and not mh.divulged.is_set()),
                    "last_delivery_age": (
                        now - last if last is not None else None
                    ),
                }
            except Exception:  # noqa: BLE001 - a module mid-teardown is skippable
                continue
        return {"modules": modules}


# ---------------------------------------------------------------------------
# Bus-side stand-ins for remotely hosted modules
# ---------------------------------------------------------------------------


class ProxyQueue:
    """Bus-side view of a remote module's per-interface queue.

    Hot-path delivery never passes through here (routing entries bind a
    direct wire-put); this covers the reconfiguration-time queue
    operations — ``cq``/``rmq`` snapshots, drains, and prepends — which
    travel as requests so their effects are ordered against prior
    deliveries by per-link FIFO.
    """

    __slots__ = ("_handle", "interface")

    def __init__(self, handle: "RemoteModuleHandle", interface: str):
        self._handle = handle
        self.interface = interface

    @property
    def name(self) -> str:
        return f"{self._handle.name}.{self.interface}"

    def put(self, message: Message) -> None:
        handle = self._handle
        handle.link.send_deliver(
            handle.name, self.interface, message.to_wire(handle.host.profile)
        )

    def peek_count(self) -> int:
        return int(self._handle.queued_counts().get(self.interface, 0))

    def __len__(self) -> int:
        return self.peek_count()

    def snapshot(self) -> List[Message]:
        wires = self._handle.link.request(
            ["snapshot_queue", self._handle.name, self.interface]
        )
        profile = self._handle.host.profile
        return [Message.from_wire(bytes(w), profile) for w in wires]  # type: ignore[union-attr]

    def drain(self) -> List[Message]:
        wires = self._handle.link.request(
            ["drain_queue", self._handle.name, self.interface]
        )
        profile = self._handle.host.profile
        return [Message.from_wire(bytes(w), profile) for w in wires]  # type: ignore[union-attr]

    def discard(self) -> int:
        """Drain remotely, returning only the count (no wires shipped back)."""
        return int(
            self._handle.link.request(
                ["discard_queue", self._handle.name, self.interface]
            )  # type: ignore[arg-type]
        )

    def prepend(self, messages: List[Message]) -> None:
        profile = self._handle.host.profile
        self._handle.link.request(
            [
                "deliver_front",
                self._handle.name,
                self.interface,
                [m.to_wire(profile) for m in messages],
            ]
        )

    def extend(self, messages: List[Message]) -> None:
        for message in messages:  # FIFO events append behind prior deliveries
            self.put(message)


class _ProxyMH:
    """The platform-facing slice of a remote module's ``mh``.

    The real MH lives in the remote process; this proxy mirrors the
    divulge/restore events the host pushes and forwards the platform's
    control calls as requests.  Only the platform-side API is covered —
    module code never sees this object.
    """

    def __init__(self, handle: "RemoteModuleHandle"):
        self._handle = handle
        self.module = handle.spec.name
        self.machine = handle.host.profile
        self.divulged = threading.Event()
        self.restored = threading.Event()
        self.outgoing_packet: Optional[bytes] = None
        self.divulge_failed: Optional[BaseException] = None
        self._incoming: Optional[bytes] = None
        self._reconfig_mirror = False
        self._divulge_callback: Optional[Callable[[bytes], None]] = None
        self._failure_callback: Optional[Callable[[BaseException], None]] = None
        self._cb_lock = threading.Lock()

    # -- status -------------------------------------------------------------

    def getstatus(self) -> str:
        return self._handle.status

    @property
    def statics(self) -> Dict[str, object]:
        """Live snapshot of the remote module's statics (one request)."""
        return dict(
            self._handle.link.request(["statics", self._handle.name])  # type: ignore[call-overload]
        )

    def stop(self) -> None:
        self._handle.stop()

    # -- state packet hand-off ------------------------------------------------

    @property
    def incoming_packet(self) -> Optional[bytes]:
        return self._incoming

    @incoming_packet.setter
    def incoming_packet(self, packet: Optional[bytes]) -> None:
        # Fire-and-forget: per-link FIFO guarantees the packet is
        # installed before any subsequent "start" request is served.
        self._incoming = packet
        if packet is not None:
            self._handle.link.send_event(
                ["install_packet", self._handle.name, packet]
            )

    def set_divulge_callback(
        self,
        callback: Optional[Callable[[bytes], None]] = None,
        on_failure: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        # Stored bus-side only; the remote host always pushes, and the
        # "divulged" event fans into whatever is registered here.
        with self._cb_lock:
            self._divulge_callback = callback
            self._failure_callback = on_failure

    def request_reconfig(self) -> None:
        self._handle.link.request(["signal", self._handle.name])
        self._reconfig_mirror = True

    def abandon_divulge(self) -> None:
        with self._cb_lock:
            self._divulge_callback = None
            self._failure_callback = None
        self._handle.link.request(["abandon", self._handle.name])

    @property
    def reconfig(self) -> bool:
        return self._reconfig_mirror

    @reconfig.setter
    def reconfig(self, value: bool) -> None:
        self._reconfig_mirror = bool(value)
        command = "signal" if value else "clear_reconfig"
        self._handle.link.request([command, self._handle.name])

    # -- event sinks (called from the link dispatcher thread) -------------------

    def _on_divulged(self, packet: bytes) -> None:
        self.outgoing_packet = packet
        with self._cb_lock:
            callback = self._divulge_callback
        self.divulged.set()  # same order as MH.encode: event, then callback
        if callback is not None:
            callback(packet)

    def _on_divulge_failed(self, text: str) -> None:
        failure = TransportError(text)
        self.divulge_failed = failure
        with self._cb_lock:
            on_failure = self._failure_callback
        if on_failure is not None:
            on_failure(failure)


class RemoteModuleHandle:
    """Bus-side stand-in for a module hosted by a remote transport.

    Duck-types the platform-facing surface of
    :class:`~repro.bus.module.ModuleInstance`: the routing rebuild, the
    coordinator, the Figure-5 primitives, and the health checks all
    operate on it unchanged.  ``thread`` is always ``None`` (the real
    thread lives remotely); liveness is mirrored from pushed lifecycle
    events instead.
    """

    is_remote = True

    def __init__(
        self,
        name: str,
        spec: ModuleSpec,
        host: Host,
        link: Link,
        transport: "RemoteTransport",
        placement: str,
        status: str = "original",
    ):
        self.name = name
        self.spec = spec
        self.host = host
        self.link = link
        self.transport = transport
        self.placement = placement
        self.status = status
        self.state = ModuleState.LOADED
        self.crash: Optional[BaseException] = None
        self.thread = None
        self.mh = _ProxyMH(self)
        self._queues: Dict[str, ProxyQueue] = {
            decl.name: ProxyQueue(self, decl.name)
            for decl in spec.interfaces
            if decl.direction.can_receive
        }

    # -- queues --------------------------------------------------------------

    def queue(self, interface: str) -> ProxyQueue:
        try:
            return self._queues[interface]
        except KeyError:
            decl = self.spec.interface(interface)  # raises if undeclared
            raise UnknownInterfaceError(
                f"{self.name}: interface {interface!r} ({decl.role.value}) "
                f"has no receive queue"
            ) from None

    def has_queue(self, interface: str) -> bool:
        return interface in self._queues

    def deliver(self, interface: str, message: Message) -> None:
        self.queue(interface).put(message)

    def queued_counts(self) -> Dict[str, int]:
        raw = self.link.request(["counts", self.name])
        return {str(k): int(v) for k, v in dict(raw).items()}  # type: ignore[call-overload]

    def remote_put(self, interface: str, sender_profile: Optional[MachineProfile]):
        """A bound delivery callable for the routing table.

        Compiled once per topology change, like a local ``queue.put``:
        per message it encodes with the *sender's* profile and queues the
        wire on the link's coalescer (shipped in a ``deliver_batch``
        frame); the remote host decodes with its own profile — the same
        canonical-encoding contract as any cross-host delivery.
        """

        def put(
            message: Message,
            _link=self.link,
            _name=self.name,
            _interface=interface,
            _profile=sender_profile,
        ) -> None:
            _link.send_deliver(_name, _interface, message.to_wire(_profile))

        return put

    # -- lifecycle -----------------------------------------------------------

    def load(self) -> None:
        pass  # loaded remotely at add time

    def start(self) -> None:
        self.link.request(["start", self.name])
        self.state = ModuleState.RUNNING

    def stop(self, timeout: float = 5.0) -> None:
        value = self.link.request(["stop", self.name], timeout=timeout + 30.0)
        self.state = ModuleState(str(value))

    def join(self, timeout: float = 5.0) -> None:
        pass  # remote stop is synchronous; nothing to join here

    def revive(self, packet: Optional[bytes] = None, timeout: float = 5.0) -> None:
        pkt = packet if packet is not None else self.mh.outgoing_packet
        if pkt is None:
            raise ModuleLifecycleError(
                f"{self.name}: no captured state to revive from"
            )
        self.mh.divulged.clear()
        self.mh.restored.clear()
        self.mh.outgoing_packet = None
        value = self.link.request(
            ["revive", self.name, pkt], timeout=timeout + 30.0
        )
        self.crash = None
        self.state = ModuleState(str(value))

    def check_alive(self) -> None:
        if self.state is ModuleState.CRASHED and self.crash is not None:
            raise ModuleCrashedError(self.name, self.crash)

    def wait_divulged(self, timeout: float) -> bytes:
        if not self.mh.divulged.wait(timeout):
            self.check_alive()
            raise ReconfigTimeoutError(
                f"{self.name}: no reconfiguration point reached within "
                f"{timeout}s"
            )
        packet = self.mh.outgoing_packet
        if packet is None:  # pragma: no cover - divulged implies packet
            raise ModuleLifecycleError(f"{self.name}: divulged without packet")
        return packet

    def discard(self) -> None:
        """Remove the module from its remote host (bus-side bookkeeping too)."""
        self.transport._forget(self.name)
        self.link.request(["remove", self.name])
        self.state = ModuleState.REMOVED

    # -- event sink -----------------------------------------------------------

    def _on_lifecycle(self, state_value: str, crash_text: str) -> None:
        if crash_text:
            self.crash = BusError(crash_text)
        self.state = ModuleState(state_value)

    def describe(self) -> str:
        return (
            f"{self.name} [{self.spec.name}] on {self.host.name} "
            f"({self.state.value}, placement={self.placement})"
        )


# ---------------------------------------------------------------------------
# Remote transports
# ---------------------------------------------------------------------------


class RemoteTransport(Transport):
    """Shared bus-side logic for transports hosting modules out of process."""

    def __init__(self):
        self._bus = None
        self._handles: Dict[str, RemoteModuleHandle] = {}
        self._handles_lock = threading.Lock()
        #: host name -> last successfully read (counters, gauges): a
        #: link that dies mid-snapshot keeps contributing its last-known
        #: totals instead of raising into ``snapshot()``.
        self._last_link_totals: Dict[str, Tuple[Dict, Dict]] = {}
        #: hosts currently unreachable — used to emit
        #: ``telemetry.source_lost`` once per outage, not once per read.
        self._lost_links: set = set()
        self._health_monitor = None
        self._health_interval = 0.0

    def attach_bus(self, bus) -> None:
        self._bus = bus

    def links(self) -> List[Link]:  # pragma: no cover - overridden
        raise NotImplementedError

    def _place(self, slot: Optional[str]) -> Tuple[Link, Host, str]:
        raise NotImplementedError

    # -- remote telemetry ------------------------------------------------------

    def enable_telemetry(self) -> None:
        """Install a flight recorder in every live remote host.

        Enable-if-absent on the host side, so the bus may call this on
        every routing rebuild to catch hosts spawned after ``enable()``.
        """
        for link in self.links():
            link.request(["telemetry_enable"])

    def disable_telemetry(self) -> None:
        for link in self.links():
            link.request(["telemetry_disable"])

    def telemetry_snapshot(self):
        """Aggregate counters/gauges across this transport's hosts.

        Returns ``(counters, gauges)`` keyed ``(name, key)`` like
        :meth:`FlightRecorder.counters` — counters summed across hosts,
        gauges max-merged — for the bus's remote aggregation source.
        Buffered trace records riding on each reply are merged straight
        into the bus recorder (``ingest_remote``).

        A host that died (or is shutting down) mid-read must not poison
        ``snapshot()``: its last successfully read totals keep counting,
        and a ``telemetry.source_lost`` event marks the outage once.
        """
        counters: Dict[Tuple[str, Optional[str]], int] = {}
        gauges: Dict[Tuple[str, Optional[str]], float] = {}
        rec = telemetry.recorder
        for link in self.links():
            try:
                snap = link.request(["telemetry_snapshot"])
                link_counters: Dict[Tuple[str, Optional[str]], int] = {}
                link_gauges: Dict[Tuple[str, Optional[str]], float] = {}
                for flat, value in dict(snap.get("counters", {})).items():
                    name, _, key = str(flat).partition("|")
                    link_counters[(name, key or None)] = int(value)
                for flat, value in dict(snap.get("gauges", {})).items():
                    name, _, key = str(flat).partition("|")
                    link_gauges[(name, key or None)] = float(value)
                records = snap.get("records") or []
                if rec is not None and records:
                    rec.ingest_remote(
                        link.name, [dict(r) for r in records]
                    )
                self._last_link_totals[link.name] = (link_counters, link_gauges)
                self._lost_links.discard(link.name)
            except (BusError, OSError) as exc:
                cached = self._last_link_totals.get(link.name)
                if link.name not in self._lost_links:
                    self._lost_links.add(link.name)
                    telemetry.event(
                        "telemetry.source_lost",
                        host=link.name,
                        transport=self.name,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                monitor = self._health_monitor
                if monitor is not None:
                    # Self-healing condemnation: a later heartbeat
                    # un-condemns, so a transient fault costs nothing.
                    monitor.mark_dead(
                        link.name, f"telemetry_snapshot: {type(exc).__name__}"
                    )
                if cached is None:
                    continue
                link_counters, link_gauges = cached
            for k, v in link_counters.items():
                counters[k] = counters.get(k, 0) + v
            for k, v in link_gauges.items():
                current = gauges.get(k)
                if current is None or v > current:
                    gauges[k] = v
        return counters, gauges

    def flush_telemetry(self) -> None:
        """Pull buffered remote trace records home and drop contexts.

        Called by the coordinator after commit *and* after rollback so
        the merged tree for the reconfiguration is complete the moment
        ``replace()`` returns.  Best-effort per link: a dead host simply
        has nothing left to say.
        """
        self.telemetry_snapshot()
        for link in self.links():
            try:
                link.request(["clear_trace_context"], timeout=5)
            except (BusError, OSError):
                pass

    # -- health plane ----------------------------------------------------------

    def enable_health(self, monitor, interval: float) -> None:
        """Point heartbeats from every live host at ``monitor``."""
        self._health_monitor = monitor
        self._health_interval = float(interval)
        for link in self.links():
            monitor.register_host(link.name, transport=self.name)
            link.request(["health_enable", float(interval)])

    def disable_health(self) -> None:
        monitor, self._health_monitor = self._health_monitor, None
        for link in self.links():
            try:
                link.request(["health_disable"])
            except (BusError, OSError):
                pass

    def _sync_health(self, link: Link) -> None:
        """Arm heartbeats on a host spawned after ``enable_health``."""
        monitor = self._health_monitor
        if monitor is not None:
            monitor.register_host(link.name, transport=self.name)
            link.request(["health_enable", self._health_interval])

    # -- handle bookkeeping ----------------------------------------------------

    def _register(self, handle: RemoteModuleHandle) -> None:
        with self._handles_lock:
            self._handles[handle.name] = handle

    def _forget(self, name: str) -> None:
        with self._handles_lock:
            self._handles.pop(name, None)

    def rename(self, handle: RemoteModuleHandle, new_name: str) -> None:
        handle.link.request(["rename", handle.name, new_name])
        with self._handles_lock:
            self._handles.pop(handle.name, None)
            handle.name = new_name
            self._handles[new_name] = handle

    # -- module placement ------------------------------------------------------

    def add_module(
        self,
        spec: ModuleSpec,
        instance: str,
        status: str = "original",
        state_packet: Optional[bytes] = None,
        slot: Optional[str] = None,
    ) -> RemoteModuleHandle:
        link, host, placement = self._place(slot)
        prepared = prepared_source_for(spec)
        link.request(
            ["add", instance, spec.to_abstract(prepared), status, state_packet]
        )
        handle = RemoteModuleHandle(
            name=instance,
            spec=spec,
            host=host,
            link=link,
            transport=self,
            placement=placement,
            status=status,
        )
        if state_packet is not None:
            handle.mh._incoming = state_packet
        self._register(handle)
        return handle

    # -- event dispatch --------------------------------------------------------

    def _make_on_event(self, link: Link) -> Callable[[str, List[object]], None]:
        def on_event(command: str, args: List[object]) -> None:
            if command == "write_batch":
                bus = self._bus
                if bus is None:
                    return
                wires, entries = unpack_batch(bytes(args[0]))  # type: ignore[arg-type]
                for instance, interface, destination, widx in entries:
                    if destination:
                        bus._on_transport_write_to(
                            instance, interface, destination, wires[widx], link.profile
                        )
                    else:
                        bus._on_transport_write(
                            instance, interface, wires[widx], link.profile
                        )
            elif command == "write":
                bus = self._bus
                if bus is not None:
                    bus._on_transport_write(
                        str(args[0]), str(args[1]), bytes(args[2]), link.profile  # type: ignore[arg-type]
                    )
            elif command == "write_to":
                bus = self._bus
                if bus is not None:
                    bus._on_transport_write_to(
                        str(args[0]),
                        str(args[1]),
                        str(args[2]),
                        bytes(args[3]),  # type: ignore[arg-type]
                        link.profile,
                    )
            elif command == "divulged":
                handle = self._handles.get(str(args[0]))
                if handle is not None:
                    handle.mh._on_divulged(bytes(args[1]))  # type: ignore[arg-type]
            elif command == "divulge_failed":
                handle = self._handles.get(str(args[0]))
                if handle is not None:
                    handle.mh._on_divulge_failed(str(args[1]))
            elif command == "restored":
                handle = self._handles.get(str(args[0]))
                if handle is not None:
                    handle.mh.restored.set()
            elif command == "lifecycle":
                handle = self._handles.get(str(args[0]))
                if handle is not None:
                    handle._on_lifecycle(str(args[1]), str(args[2]))
            elif command == "heartbeat":
                monitor = self._health_monitor
                if monitor is not None:
                    monitor.record_heartbeat(
                        str(args[0]), int(args[1]), dict(args[2])  # type: ignore[call-overload]
                    )

        return on_event


class TcpTransport(RemoteTransport):
    """The machine-daemon escape hatch, rehomed as a first-class transport.

    Spawns ``python -m repro.bus.tcp`` daemon processes exactly as
    :class:`~repro.bus.tcp.DistributedBus` does, but speaks to them
    through the shared :class:`Link`/:class:`ModuleHost` protocol — so a
    module placed with ``placement="tcp"`` participates in the ordinary
    :class:`~repro.bus.bus.SoftwareBus` topology (mixed bindings with
    inproc and worker modules included) instead of living in a separate
    API.  TCP frames are lossy under the chaos suite, so requests run
    under the retrying policy.
    """

    name = "tcp"

    def __init__(
        self,
        machines=1,
        architecture: str = "modern-64",
        sleep_scale: float = 0.0,
        host_prefix: str = "tcphost-",
    ):
        super().__init__()
        import socket as socketlib
        import subprocess

        from repro.bus import tcp as tcpmod  # late: tcp.py imports this module
        from repro.state.machine import MACHINES

        self._tcp = tcpmod
        self._listener = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM)
        self._listener.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        address: Tuple[str, int] = self._listener.getsockname()
        names = (
            [f"{host_prefix}{i}" for i in range(machines)]
            if isinstance(machines, int)
            else list(machines)
        )
        base = MACHINES[architecture]
        self._processes: List = []
        self._machines: List[Tuple[str, Link, Host]] = []
        self._rr = 0
        self._rr_lock = threading.Lock()
        for name in names:
            profile = MachineProfile(
                name=name,
                endianness=base.endianness,
                int_bits=base.int_bits,
                long_bits=base.long_bits,
                float_bits=base.float_bits,
            )
            process = subprocess.Popen(
                tcpmod._daemon_argv(name, profile, address, sleep_scale)
            )
            self._processes.append(process)
            self._listener.settimeout(60)
            sock, _addr = self._listener.accept()
            sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
            hello = tcpmod.recv_frame(sock)
            if not (
                isinstance(hello, list) and len(hello) >= 5 and hello[2] == "hello"
            ):
                raise TransportError(f"unexpected first frame {hello!r}")
            daemon_name = str(hello[3])
            daemon_profile = profile_from_abstract(dict(hello[4]))
            link = Link(
                daemon_name,
                daemon_profile,
                tcpmod.SocketChannel(sock),
                retry=RetryPolicy(attempts=3, backoff=0.05),
            )
            link.on_event = self._make_on_event(link)
            self._machines.append(
                (daemon_name, link, Host(name=daemon_name, profile=daemon_profile))
            )

    def links(self) -> List[Link]:
        return [link for _, link, _ in self._machines]

    def peek_host(self, slot: Optional[str]) -> Optional[str]:
        """Resolve a slot to its daemon name without advancing round-robin."""
        if not slot:
            return None
        for name, _, _ in self._machines:
            if name == slot:
                return name
        try:
            index = int(slot)
        except ValueError:
            return None
        if 0 <= index < len(self._machines):
            return self._machines[index][0]
        return None

    def _place(self, slot: Optional[str]) -> Tuple[Link, Host, str]:
        if not slot:
            with self._rr_lock:
                index = self._rr % len(self._machines)
                self._rr += 1
        else:
            index = next(
                (i for i, (name, _, _) in enumerate(self._machines) if name == slot),
                -1,
            )
            if index < 0:
                try:
                    index = int(slot)
                except ValueError:
                    raise BusError(
                        f"tcp transport has no machine {slot!r}"
                    ) from None
                if not 0 <= index < len(self._machines):
                    raise BusError(f"tcp transport slot {slot!r} out of range")
        name, link, host = self._machines[index]
        return link, host, f"{self.name}:{name}"

    def close(self) -> None:
        for _, link, _ in self._machines:
            try:
                link.request(["shutdown"], timeout=5)
            except (BusError, TransportError):
                pass
            link.close()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except Exception:  # noqa: BLE001 - escalate to terminate
                process.terminate()
                try:
                    process.wait(timeout=5)
                except Exception:  # noqa: BLE001 - last resort
                    process.kill()
        self._listener.close()
