"""Send-side frame coalescing for cross-process delivery.

A frame-per-message link pays one canonical frame encode, one syscall,
and one reader wakeup **per delivered message** — measured at ~20 us on
the dev container, an order of magnitude more than the delivery itself.
This module makes busy links batch-cheap without adding latency to quiet
ones:

:class:`Coalescer`
    a per-channel pending buffer plus a flusher thread.  Deliveries
    *append* (cheap: a lock, a list append, a counter); the flusher
    drains opportunistically — the moment the channel is idle it ships
    whatever accumulated, so a sparse sender sees one thread wakeup of
    added latency, while a busy sender's messages pile up naturally
    during the previous ``send`` and ship many-per-frame.  A single
    flush is bounded by ``max_entries``/``max_bytes``; ``linger_s > 0``
    optionally trades latency for larger batches (the deadline cap).
    Pending bytes are bounded by ``pending_hwm``: appenders *block* when
    a slow receiver lets the backlog grow, so backpressure propagates to
    senders instead of OOMing the bus process.

Batch wire layout (one ``deliver_batch``/``write_batch`` event frame
carries one opaque ``bytes`` blob; already-encoded message wires are
embedded as raw bytes — nothing is re-encoded):

```
blob    := u32 group_count  group*
           u32 string_count string*
           u32 entry_count  entry*
group   := u32 wire_len wire_bytes             # one canonical message wire
string  := u16 len utf8_bytes                  # deduplicated name table
entry   := u16 a  u16 b  u16 c  u16 group_index   # 8 bytes, fixed
```

Entries are *dictionary-coded*: instance/interface names repeat heavily
inside a batch (a fan-out names the same eight receivers in every
group), so each distinct string is sent once in the table and entries
are four fixed-width indexes — the receiver decodes the whole entry
array with one ``Struct.iter_unpack`` instead of per-entry length
parsing, which measurably matters at millions of deliveries per second.
Entries reference their wire by group index, so a message fanning out to
several modules on the same host is encoded **once** and shipped once
(``append_shared``).  For ``deliver_batch`` an entry is ``(instance,
interface, "")``; for ``write_batch`` (host -> bus tunneled writes) it is
``(instance, interface, destination-or-"")``.

All integers are big-endian and length-prefixed, matching the TCP
framing convention (docs/tcp-protocol.md).  The u16 indexes cap one
blob at 65,535 distinct strings and wire groups — far above any flush
cap (``BatchPolicy.max_entries``); :func:`pack_batch` raises rather
than silently truncating if a caller exceeds them.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import InjectedFault, TransportError
from repro.runtime import telemetry

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_ENTRY = struct.Struct(">HHHH")

#: Fixed per-entry overhead charged against the pending-byte budget
#: (names + length prefixes + bookkeeping), besides the wire itself.
_ENTRY_COST = 32


# ---------------------------------------------------------------------------
# Batch blob codec
# ---------------------------------------------------------------------------


def pack_batch(groups: List[Tuple[bytes, List[Tuple[str, str, str]]]]) -> bytes:
    """Pack ``[(wire, [(a, b, c), ...]), ...]`` into one batch blob."""
    if len(groups) > 0xFFFF:
        raise TransportError(f"batch of {len(groups)} groups exceeds u16 index")
    buf = bytearray()
    buf += _U32.pack(len(groups))
    for wire, _pairs in groups:
        buf += _U32.pack(len(wire))
        buf += wire
    table: dict = {}
    entries = bytearray()
    total = 0
    for index, (_wire, pairs) in enumerate(groups):
        for a, b, c in pairs:
            ia = table.get(a)
            if ia is None:
                ia = table[a] = len(table)
            ib = table.get(b)
            if ib is None:
                ib = table[b] = len(table)
            ic = table.get(c)
            if ic is None:
                ic = table[c] = len(table)
            entries += _ENTRY.pack(ia, ib, ic, index)
            total += 1
    if len(table) > 0xFFFF:
        raise TransportError(
            f"batch names {len(table)} distinct strings, exceeds u16 index"
        )
    buf += _U32.pack(len(table))
    for text in table:  # dicts preserve insertion order == index order
        raw = text.encode("utf-8")
        buf += _U16.pack(len(raw))
        buf += raw
    buf += _U32.pack(total)
    buf += entries
    return bytes(buf)


def unpack_batch(
    blob: bytes,
) -> Tuple[List[bytes], List[Tuple[str, str, str, int]]]:
    """Decode a batch blob into ``(wires, [(a, b, c, wire_index), ...])``."""
    view = memoryview(blob)
    offset = 0
    (n_wires,) = _U32.unpack_from(view, offset)
    offset += 4
    wires: List[bytes] = []
    for _ in range(n_wires):
        (length,) = _U32.unpack_from(view, offset)
        offset += 4
        wires.append(bytes(view[offset : offset + length]))
        offset += length
    (n_strings,) = _U32.unpack_from(view, offset)
    offset += 4
    strings: List[str] = []
    for _ in range(n_strings):
        (length,) = _U16.unpack_from(view, offset)
        offset += 2
        strings.append(str(view[offset : offset + length], "utf-8"))
        offset += length
    (n_entries,) = _U32.unpack_from(view, offset)
    offset += 4
    end = offset + n_entries * _ENTRY.size
    if end > len(blob):
        raise TransportError(
            f"batch claims {n_entries} entries but blob is truncated"
        )
    try:
        entries = [
            (strings[ia], strings[ib], strings[ic], widx)
            for ia, ib, ic, widx in _ENTRY.iter_unpack(view[offset:end])
        ]
    except IndexError:
        raise TransportError(
            f"batch entry references a string past the {n_strings}-name table"
        ) from None
    if any(entry[3] >= n_wires for entry in entries):
        raise TransportError(f"batch entry references wire >= {n_wires}")
    return wires, entries


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


@dataclass
class BatchPolicy:
    """Flush and backpressure caps for one coalescing channel."""

    #: Most entries a single batch frame carries.
    max_entries: int = 128
    #: Most pending-budget bytes a single batch frame carries.
    max_bytes: int = 256 * 1024
    #: Pending-byte high-watermark: appenders block above this, so a
    #: slow receiver backpressures its senders instead of OOMing them.
    pending_hwm: int = 4 * 1024 * 1024
    #: Deadline cap: how long the flusher may linger after waking to let
    #: a batch grow.  0 (the default) flushes the moment the channel is
    #: idle — no Nagle-style delay on quiet links.
    linger_s: float = 0.0


#: Session-wide defaults, env-tunable (read at Link/host construction so
#: spawned worker processes inherit the same settings).
BATCH_MAX_ENTRIES = int(os.environ.get("REPRO_BATCH_MAX_ENTRIES", "128"))
BATCH_MAX_BYTES = int(os.environ.get("REPRO_BATCH_MAX_BYTES", str(256 * 1024)))
BATCH_PENDING_HWM = int(
    os.environ.get("REPRO_BATCH_PENDING_HWM", str(4 * 1024 * 1024))
)
BATCH_LINGER_S = float(os.environ.get("REPRO_BATCH_LINGER", "0"))

#: Process-local kill switch (benchmarks measure the frame-per-message
#: baseline through this; ``REPRO_BATCH=0`` disables for children too).
_disabled = os.environ.get("REPRO_BATCH", "1") in ("0", "false", "no")


def default_policy() -> Optional[BatchPolicy]:
    """The policy new links/hosts coalesce under; ``None`` = batching off."""
    if _disabled:
        return None
    return BatchPolicy(
        max_entries=BATCH_MAX_ENTRIES,
        max_bytes=BATCH_MAX_BYTES,
        pending_hwm=BATCH_PENDING_HWM,
        linger_s=BATCH_LINGER_S,
    )


def batch_settings() -> dict:
    """The effective settings, for bench meta blocks (see benchmarks/_meta.py)."""
    policy = default_policy()
    if policy is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "max_entries": policy.max_entries,
        "max_bytes": policy.max_bytes,
        "pending_hwm": policy.pending_hwm,
        "linger_s": policy.linger_s,
    }


@contextmanager
def batching_disabled():
    """Construct links with batching off (frame-per-message baseline).

    Affects links/hosts created *inside* the context; the env override
    makes worker processes spawned inside it inherit the setting.
    """
    global _disabled
    saved, saved_env = _disabled, os.environ.get("REPRO_BATCH")
    _disabled = True
    os.environ["REPRO_BATCH"] = "0"
    try:
        yield
    finally:
        _disabled = saved
        if saved_env is None:
            os.environ.pop("REPRO_BATCH", None)
        else:
            os.environ["REPRO_BATCH"] = saved_env


# ---------------------------------------------------------------------------
# The coalescer
# ---------------------------------------------------------------------------


class Coalescer:
    """Pending delivery buffer + flusher thread for one frame channel.

    ``ship([command, blob])`` sends one event frame and may raise
    transport errors; ``send_lock`` is the channel's frame send lock —
    the flusher takes it per flush, and owners call :meth:`drain_locked`
    *while holding it* just before any frame whose FIFO position matters
    (requests, non-delivery events), so batching never reorders a link.

    Appends never ship inline: even a lone message is handed to the
    flusher (one thread wakeup), which is what lets a single fast sender
    batch naturally — the messages it appends while the flusher is mid-
    ``send`` form the next batch.
    """

    def __init__(
        self,
        name: str,
        command: str,
        ship: Callable[[List[object]], None],
        send_lock: threading.Lock,
        policy: BatchPolicy,
        notify_drop: Optional[Callable[[int, BaseException], None]] = None,
        notify_ok: Optional[Callable[[], None]] = None,
    ):
        self.name = name
        self.command = command
        self.ship = ship
        self.send_lock = send_lock
        self.policy = policy
        self.notify_drop = notify_drop
        self.notify_ok = notify_ok
        self._lock = threading.Lock()
        self._data = threading.Condition(self._lock)  # flusher waits here
        self._space = threading.Condition(self._lock)  # HWM waiters
        self._groups: deque = deque()  # (wire, [(a, b, c), ...], cost)
        self._entries = 0
        self._bytes = 0
        self._space_waiters = 0
        self._closed = False
        self._flusher = threading.Thread(
            target=self._flush_loop, name=f"batch-flush-{name}", daemon=True
        )
        self._flusher.start()

    # -- producer side -------------------------------------------------------

    def append(self, a: str, b: str, c: str, wire: bytes) -> None:
        self.append_shared(((a, b, c),), wire)

    def append_shared(self, pairs, wire: bytes) -> None:
        """Queue one encoded wire for delivery to every ``(a, b, c)`` entry.

        Blocks while pending bytes sit at the high-watermark; on a closed
        channel the entries are dropped (counted like any lost event).
        """
        pairs = list(pairs)
        cost = len(wire) + _ENTRY_COST * len(pairs)
        hwm = self.policy.pending_hwm
        with self._lock:
            while not self._closed and self._bytes >= hwm:
                self._space_waiters += 1
                try:
                    self._space.wait()
                finally:
                    self._space_waiters -= 1
            if self._closed:
                dropped = len(pairs)
            else:
                dropped = 0
                self._groups.append((wire, pairs, cost))
                self._entries += len(pairs)
                self._bytes += cost
                self._data.notify()
        if dropped:
            self._count_drop(dropped)

    def pending_entries(self) -> int:
        with self._lock:
            return self._entries

    # -- consumer side -------------------------------------------------------

    def _pop_chunk(self) -> Tuple[List[Tuple[bytes, List]], int]:
        """Slice one batch off the buffer (caller holds ``self._lock``)."""
        policy = self.policy
        groups: List[Tuple[bytes, List]] = []
        entries = 0
        nbytes = 0
        while self._groups:
            wire, pairs, cost = self._groups[0]
            if groups and (
                entries + len(pairs) > policy.max_entries
                or nbytes + cost > policy.max_bytes
            ):
                break
            self._groups.popleft()
            groups.append((wire, pairs))
            entries += len(pairs)
            nbytes += cost
        if entries:
            self._entries -= entries
            self._bytes -= nbytes
            if self._space_waiters:
                self._space.notify_all()
        return groups, entries

    def drain_locked(self) -> None:
        """Ship everything pending.  Caller HOLDS the channel send lock.

        This is the FIFO barrier: a request (queue snapshot/transfer) or
        a non-delivery event sent right after it is ordered behind every
        delivery appended before the call.  Ship failures are swallowed
        into the drop accounting — lost events were always lost frames.
        """
        while True:
            with self._lock:
                groups, entries = self._pop_chunk()
            if not entries:
                return
            self._ship_chunk(groups, entries)

    def _ship_chunk(self, groups, entries: int) -> None:
        try:
            self.ship([self.command, pack_batch(groups)])
        except (InjectedFault, TransportError, OSError) as exc:
            self._count_drop(entries, exc)
        else:
            rec = telemetry.recorder
            if rec is not None:
                rec.count("link.batches", key=self.name)
                rec.count("link.batched_messages", n=entries, key=self.name)
            notify_ok = self.notify_ok
            if notify_ok is not None:
                notify_ok()

    def _flush_loop(self) -> None:
        linger = self.policy.linger_s
        while True:
            with self._lock:
                while not self._groups and not self._closed:
                    self._data.wait()
                if self._closed:
                    return  # pending entries die with the channel
            if linger > 0:
                # Deadline cap: trade up to ``linger`` of latency for a
                # fuller batch.  The default (0) ships immediately.
                time.sleep(linger)
            with self.send_lock:
                with self._lock:
                    groups, entries = self._pop_chunk()
                if entries:
                    self._ship_chunk(groups, entries)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._data.notify_all()
            self._space.notify_all()

    def _count_drop(self, n: int, exc: Optional[BaseException] = None) -> None:
        rec = telemetry.recorder
        if rec is not None:
            rec.count("link.events_dropped", n=n, key=self.name)
        if exc is not None and self.notify_drop is not None:
            self.notify_drop(n, exc)
