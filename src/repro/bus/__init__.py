"""POLYLITH-style software bus (the paper's platform substrate, [8]).

"A heterogeneous distributed software application consists of software
modules and bindings between them, where a module is a software process
with its own memory and its own thread of control.  Modules can
communicate with each other via named interfaces ... message passing is
asynchronous.  Bindings connect the interfaces of modules."

- :mod:`repro.bus.message`    — messages and their canonical wire form
- :mod:`repro.bus.interfaces` — named, directional interface declarations
- :mod:`repro.bus.queues`     — per-interface FIFO queues (copyable for
  the reconfiguration ``cq`` command)
- :mod:`repro.bus.spec`       — module and application specifications
- :mod:`repro.bus.mil`        — the configuration language of Figure 2
- :mod:`repro.bus.machine`    — simulated hosts with architecture profiles
- :mod:`repro.bus.module`     — module instances (thread of control + namespace)
- :mod:`repro.bus.bus`        — the bus itself: routing, lifecycle, introspection
- :mod:`repro.bus.tcp`        — genuine multi-process operation over TCP
"""

from repro.bus.message import Message
from repro.bus.interfaces import Direction, InterfaceDecl, Role
from repro.bus.queues import MessageQueue
from repro.bus.spec import ApplicationSpec, BindingSpec, InstanceSpec, ModuleSpec
from repro.bus.mil import parse_mil, parse_module_spec
from repro.bus.machine import Host
from repro.bus.module import ModuleInstance, ModuleState
from repro.bus.bus import SoftwareBus

__all__ = [
    "Message",
    "Direction",
    "InterfaceDecl",
    "Role",
    "MessageQueue",
    "ApplicationSpec",
    "BindingSpec",
    "InstanceSpec",
    "ModuleSpec",
    "parse_mil",
    "parse_module_spec",
    "Host",
    "ModuleInstance",
    "ModuleState",
    "SoftwareBus",
]
