"""Thread-safe per-interface message queues.

The reconfiguration script of Figure 5 issues ``cq`` (copy queue) and
``rmq`` (remove queue) bind commands so messages queued at the old
module's interfaces are not lost during a replacement.  The queue type
therefore supports an atomic snapshot-copy and a drain, in addition to
the usual blocking get.

Wakeup protocol (see ``docs/bus-internals.md``): ``get`` parks on a
condition variable with a ``time.monotonic()`` deadline — there is no
polling loop.  Waiters are woken by ``put``/``extend``/``prepend`` (only
when someone is actually waiting), by ``close``, and by stop requests:
a stop event that supports ``subscribe``/``unsubscribe`` (see
:class:`repro.runtime.events.InterruptibleEvent`, which every module's
``mh`` stop flag is) has the waiter's condition registered for the
duration of the wait, so ``set()`` interrupts the read immediately.

Telemetry
---------

Delivery accounting lives *in the queue class*, not in wrappers around
``put``: while a flight recorder is installed, every live queue's
``__class__`` is swapped to :class:`RecordingMessageQueue`, whose ``put``
bumps plain integer cells (``_pushed``, ``_hwm``) inside the lock it
already holds — exact under concurrency, no extra lock, no tuple
hashing, no wrapper call.  ``disable()`` swaps the class back, so the
disabled ``put`` is byte-identical to the uninstrumented one (both
classes use ``__slots__``, which also keeps the swapped instances'
attribute access on the fast path).  A lazily-read aggregation source
registered on the recorder turns the cells into ``bus.delivered{queue}``
counters and ``queue.hwm{queue}`` gauges; ``bus.routed`` is *derived*
from the same cells by the routing table (see ``bus.py``).

While recording, queues are held strongly (``_tracked``) so a queue
destroyed mid-session — e.g. a replaced module's — keeps contributing
its delivery counts until the recorder is uninstalled.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.bus.message import Message
from repro.errors import TransportError
from repro.runtime import telemetry


class MessageQueue:
    """Unbounded FIFO of :class:`Message` with stop-aware blocking get."""

    __slots__ = (
        "name",
        "_items",
        "_lock",
        "_not_empty",
        "_closed",
        "_waiters",
        "_pushed",
        "_directed",
        "_hwm",
        "__weakref__",
    )

    def __init__(self, name: str = ""):
        self.name = name
        self._items: Deque[Message] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._waiters = 0
        # Telemetry cells: total puts, puts via route_to, sampled depth
        # high-water mark.  Written only by RecordingMessageQueue (under
        # the queue lock), read lock-free by the aggregation source.
        self._pushed = 0
        self._directed = 0
        self._hwm = 0
        with _registry_lock:
            _queues.add(self)
            if telemetry.recorder is not None:
                _tracked.add(self)
                self.__class__ = RecordingMessageQueue

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, message: Message) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.append(message)
            if self._waiters:
                self._not_empty.notify()

    def put_directed(self, message: Message) -> None:
        """``route_to`` delivery — identical to ``put`` when disabled.

        The recording subclass additionally tags the delivery in its
        ``_directed`` cell so directed traffic is excluded from the
        routed-count derivation in ``bus.py``.
        """
        self.put(message)

    def put_many(self, messages: List[Message]) -> None:
        """The bulk arm of ``put``: one lock acquire for a whole run.

        Used by coalesced ``deliver_batch`` dispatch, where one frame
        often carries many messages for the same queue.  Unlike
        ``extend``/``prepend`` (queue *copies* during reconfiguration)
        these are fresh deliveries, so the recording subclass counts
        them in ``_pushed``.
        """
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.extend(messages)
            if self._waiters:
                self._not_empty.notify_all()

    def get(
        self,
        timeout: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> Message:
        """Block for the next message.

        Raises :class:`TransportError` on timeout, close, or stop (a
        stopping module must not stay parked on an empty queue).  The
        deadline is computed from ``time.monotonic()``, so notify-heavy
        queues neither overshoot nor undershoot the timeout.
        """
        deadline = None
        if timeout is not None and timeout >= 0:
            deadline = time.monotonic() + timeout
        with self._not_empty:
            items = self._items
            if items:
                return items.popleft()
            subscribe = getattr(stop_event, "subscribe", None)
            if subscribe is not None:
                subscribe(self._not_empty)
            self._waiters += 1
            try:
                while not items:
                    if stop_event is not None and stop_event.is_set():
                        raise TransportError(
                            f"queue {self.name!r}: read interrupted by stop"
                        )
                    if self._closed:
                        raise TransportError(f"queue {self.name!r} is closed")
                    if deadline is None:
                        self._not_empty.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportError(
                                f"queue {self.name!r}: read timed out "
                                f"after {timeout}s"
                            )
                        self._not_empty.wait(remaining)
                return items.popleft()
            finally:
                self._waiters -= 1
                if subscribe is not None:
                    stop_event.unsubscribe(self._not_empty)  # type: ignore[union-attr]

    def peek_count(self) -> int:
        return len(self)

    def rename(self, name: str) -> None:
        """Rebrand the queue when its owning instance is renamed.

        Replacement commits rename the clone to the replaced module's
        instance name; without this the queue kept reporting the
        temporary ``<instance>.new.<interface>`` name in errors and in
        the ``queue.hwm`` telemetry key.  Accumulated delivery cells
        move with the queue: after a commit they report under the final
        instance name, matching the old wrapper-counter behaviour.
        """
        self.name = name

    def snapshot(self) -> List[Message]:
        """Atomic copy of the queued messages (the ``cq`` command)."""
        with self._lock:
            return list(self._items)

    def drain(self) -> List[Message]:
        """Atomically remove and return everything (the ``rmq`` command)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        rec = telemetry.recorder
        if rec is not None and items:
            rec.count("queue.drained", n=len(items), key=self.name)
        return items

    def extend(self, messages: List[Message]) -> None:
        """Append copied messages at the back."""
        with self._lock:
            self._items.extend(messages)
            depth = len(self._items)
            if self._waiters:
                self._not_empty.notify_all()
        rec = telemetry.recorder
        if rec is not None and messages:
            rec.count("queue.copied_in", n=len(messages), key=self.name)
            rec.gauge_max("queue.hwm", depth, key=self.name)

    def prepend(self, messages: List[Message]) -> None:
        """Insert copied messages at the *front*, preserving their order.

        The ``cq`` command runs after the new module's bindings are live,
        so fresh messages may already sit in its queue; the old module's
        messages are strictly older and must be consumed first.
        """
        with self._lock:
            self._items.extendleft(reversed(messages))
            depth = len(self._items)
            if self._waiters:
                self._not_empty.notify_all()
        rec = telemetry.recorder
        if rec is not None and messages:
            rec.count("queue.copied_in", n=len(messages), key=self.name)
            rec.gauge_max("queue.hwm", depth, key=self.name)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()


class RecordingMessageQueue(MessageQueue):
    """A :class:`MessageQueue` whose ``put`` keeps delivery counts.

    Installed by swapping ``__class__`` on live instances at telemetry
    enable time (and back at disable): the object's state is untouched,
    only the method table changes.  Counting happens inside the lock
    ``put`` already takes, so the cells are exact under any number of
    producer threads.  ``put`` itself pays for exactly one extra
    increment — the depth high-water mark comes from the read-time
    probe in the aggregation source (plus exact updates on the rare
    paths: directed puts, ``extend``/``prepend``), so it is a *sampled*
    gauge: a queue drained between reads may under-report its peak.
    """

    __slots__ = ()

    def put(self, message: Message) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.append(message)
            self._pushed += 1
            if self._waiters:
                self._not_empty.notify()

    def put_directed(self, message: Message) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            items = self._items
            items.append(message)
            self._pushed += 1
            self._directed += 1
            depth = len(items)
            if depth > self._hwm:
                self._hwm = depth
            if self._waiters:
                self._not_empty.notify()

    def put_many(self, messages: List[Message]) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.extend(messages)
            self._pushed += len(messages)
            if self._waiters:
                self._not_empty.notify_all()


#: All live queues (weak — discovery only) and, while a recorder is
#: installed, strong references so destroyed queues keep contributing
#: their counts until disable().  Guarded by ``_registry_lock`` because
#: queues are created from module/worker threads while the aggregation
#: source iterates.
_queues: "weakref.WeakSet[MessageQueue]" = weakref.WeakSet()
_tracked: Set[MessageQueue] = set()
_registry_lock = threading.Lock()


def _cell_source(tracked: Set[MessageQueue]) -> Tuple[Dict[Tuple[str, Optional[str]], int], Dict[Tuple[str, Optional[str]], float]]:
    """Aggregate queue cells into ``bus.delivered`` / ``queue.hwm``.

    Absolute totals re-read on every merge (idempotent).  The read-time
    ``len(_items)`` probe catches high-water marks the every-64th-put
    sampling missed on lightly-loaded queues.  ``tracked`` is the set
    captured for one recorder: ``disable()`` freezes rather than clears
    it, so a detached recorder still exports its final totals (the
    cells stop moving once the classes swap back).
    """
    counters: Dict[Tuple[str, Optional[str]], int] = {}
    gauges: Dict[Tuple[str, Optional[str]], float] = {}
    with _registry_lock:
        queues = list(tracked)
    for q in queues:
        name = q.name
        pushed = q._pushed
        # A queue with no puts this session reports nothing — stale
        # pre-enable queues (e.g. left over from a finished bus) must
        # not surface their old backlog as fresh gauges.
        if not name or not pushed:
            continue
        k = ("bus.delivered", name)
        counters[k] = counters.get(k, 0) + pushed
        hwm = q._hwm
        depth = len(q._items)
        if depth > hwm:
            hwm = depth
        if hwm:
            k = ("queue.hwm", name)
            current = gauges.get(k)
            if current is None or hwm > current:
                gauges[k] = hwm
    return counters, gauges


@telemetry.on_activation
def _on_telemetry_activation(rec: Optional[telemetry.FlightRecorder]) -> None:
    """Swap live queues to/from the recording class at enable/disable.

    Each enable captures a *fresh* tracked set (published as the global
    so ``MessageQueue.__init__`` keeps feeding it) and registers a
    source bound to that set on the new recorder.  Disable swaps the
    classes back but leaves the set with the old recorder's source:
    its cells are frozen, so post-disable exports stay correct, and the
    strong references die with the recorder.
    """
    global _tracked
    if rec is not None:
        tracked: Set[MessageQueue] = set()
        with _registry_lock:
            for q in list(_queues):
                q._pushed = 0
                q._directed = 0
                q._hwm = 0
                q.__class__ = RecordingMessageQueue
                tracked.add(q)
            _tracked = tracked
        rec.add_source(lambda: _cell_source(tracked))
    else:
        with _registry_lock:
            for q in list(_queues):
                q.__class__ = MessageQueue
