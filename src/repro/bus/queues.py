"""Thread-safe per-interface message queues.

The reconfiguration script of Figure 5 issues ``cq`` (copy queue) and
``rmq`` (remove queue) bind commands so messages queued at the old
module's interfaces are not lost during a replacement.  The queue type
therefore supports an atomic snapshot-copy and a drain, in addition to
the usual blocking get.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.bus.message import Message
from repro.errors import TransportError


class MessageQueue:
    """Unbounded FIFO of :class:`Message` with stop-aware blocking get."""

    def __init__(self, name: str = ""):
        self.name = name
        self._items: List[Message] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, message: Message) -> None:
        with self._not_empty:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.append(message)
            self._not_empty.notify()

    def get(
        self,
        timeout: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> Message:
        """Block for the next message.

        Wakes periodically to honour ``stop_event`` (a stopping module
        must not stay parked on an empty queue) and raises
        :class:`TransportError` on timeout or stop.
        """
        deadline = None
        if timeout is not None:
            deadline = threading.TIMEOUT_MAX if timeout < 0 else timeout
        waited = 0.0
        slice_ = 0.05
        with self._not_empty:
            while not self._items:
                if stop_event is not None and stop_event.is_set():
                    raise TransportError(
                        f"queue {self.name!r}: read interrupted by stop"
                    )
                if deadline is not None and waited >= deadline:
                    raise TransportError(
                        f"queue {self.name!r}: read timed out after {timeout}s"
                    )
                self._not_empty.wait(slice_)
                waited += slice_
            return self._items.pop(0)

    def peek_count(self) -> int:
        return len(self)

    def snapshot(self) -> List[Message]:
        """Atomic copy of the queued messages (the ``cq`` command)."""
        with self._lock:
            return list(self._items)

    def drain(self) -> List[Message]:
        """Atomically remove and return everything (the ``rmq`` command)."""
        with self._lock:
            items, self._items = self._items, []
            return items

    def extend(self, messages: List[Message]) -> None:
        """Append copied messages at the back."""
        with self._not_empty:
            self._items.extend(messages)
            self._not_empty.notify_all()

    def prepend(self, messages: List[Message]) -> None:
        """Insert copied messages at the *front*, preserving their order.

        The ``cq`` command runs after the new module's bindings are live,
        so fresh messages may already sit in its queue; the old module's
        messages are strictly older and must be consumed first.
        """
        with self._not_empty:
            self._items[:0] = messages
            self._not_empty.notify_all()

    def close(self) -> None:
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
