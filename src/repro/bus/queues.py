"""Thread-safe per-interface message queues.

The reconfiguration script of Figure 5 issues ``cq`` (copy queue) and
``rmq`` (remove queue) bind commands so messages queued at the old
module's interfaces are not lost during a replacement.  The queue type
therefore supports an atomic snapshot-copy and a drain, in addition to
the usual blocking get.

Wakeup protocol (see ``docs/bus-internals.md``): ``get`` parks on a
condition variable with a ``time.monotonic()`` deadline — there is no
polling loop.  Waiters are woken by ``put``/``extend``/``prepend`` (only
when someone is actually waiting), by ``close``, and by stop requests:
a stop event that supports ``subscribe``/``unsubscribe`` (see
:class:`repro.runtime.events.InterruptibleEvent`, which every module's
``mh`` stop flag is) has the waiter's condition registered for the
duration of the wait, so ``set()`` interrupts the read immediately.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from repro.bus.message import Message
from repro.errors import TransportError
from repro.runtime import telemetry


class MessageQueue:
    """Unbounded FIFO of :class:`Message` with stop-aware blocking get."""

    def __init__(self, name: str = ""):
        self.name = name
        self._items: Deque[Message] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._waiters = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, message: Message) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(f"queue {self.name!r} is closed")
            self._items.append(message)
            if self._waiters:
                self._not_empty.notify()

    def get(
        self,
        timeout: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> Message:
        """Block for the next message.

        Raises :class:`TransportError` on timeout, close, or stop (a
        stopping module must not stay parked on an empty queue).  The
        deadline is computed from ``time.monotonic()``, so notify-heavy
        queues neither overshoot nor undershoot the timeout.
        """
        deadline = None
        if timeout is not None and timeout >= 0:
            deadline = time.monotonic() + timeout
        with self._not_empty:
            items = self._items
            if items:
                return items.popleft()
            subscribe = getattr(stop_event, "subscribe", None)
            if subscribe is not None:
                subscribe(self._not_empty)
            self._waiters += 1
            try:
                while not items:
                    if stop_event is not None and stop_event.is_set():
                        raise TransportError(
                            f"queue {self.name!r}: read interrupted by stop"
                        )
                    if self._closed:
                        raise TransportError(f"queue {self.name!r} is closed")
                    if deadline is None:
                        self._not_empty.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportError(
                                f"queue {self.name!r}: read timed out "
                                f"after {timeout}s"
                            )
                        self._not_empty.wait(remaining)
                return items.popleft()
            finally:
                self._waiters -= 1
                if subscribe is not None:
                    stop_event.unsubscribe(self._not_empty)  # type: ignore[union-attr]

    def peek_count(self) -> int:
        return len(self)

    def rename(self, name: str) -> None:
        """Rebrand the queue when its owning instance is renamed.

        Replacement commits rename the clone to the replaced module's
        instance name; without this the queue kept reporting the
        temporary ``<instance>.new.<interface>`` name in errors and in
        the ``queue.hwm`` telemetry key.
        """
        self.name = name

    def snapshot(self) -> List[Message]:
        """Atomic copy of the queued messages (the ``cq`` command)."""
        with self._lock:
            return list(self._items)

    def drain(self) -> List[Message]:
        """Atomically remove and return everything (the ``rmq`` command)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        rec = telemetry.recorder
        if rec is not None and items:
            rec.count("queue.drained", n=len(items), key=self.name)
        return items

    def extend(self, messages: List[Message]) -> None:
        """Append copied messages at the back."""
        with self._lock:
            self._items.extend(messages)
            depth = len(self._items)
            if self._waiters:
                self._not_empty.notify_all()
        rec = telemetry.recorder
        if rec is not None and messages:
            rec.count("queue.copied_in", n=len(messages), key=self.name)
            rec.gauge_max("queue.hwm", depth, key=self.name)

    def prepend(self, messages: List[Message]) -> None:
        """Insert copied messages at the *front*, preserving their order.

        The ``cq`` command runs after the new module's bindings are live,
        so fresh messages may already sit in its queue; the old module's
        messages are strictly older and must be consumed first.
        """
        with self._lock:
            self._items.extendleft(reversed(messages))
            depth = len(self._items)
            if self._waiters:
                self._not_empty.notify_all()
        rec = telemetry.recorder
        if rec is not None and messages:
            rec.count("queue.copied_in", n=len(messages), key=self.name)
            rec.gauge_max("queue.hwm", depth, key=self.name)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
